//! DRF baseline: instantaneous Dominant Resource Fairness.
//!
//! DRF (Ghodsi et al., NSDI 2011) is the canonical instantaneous-fairness
//! policy the paper's motivation section argues against (§2.2): whenever
//! resources free up, the task of the app with the smallest dominant share
//! is served next. In a GPU-only cluster the dominant share reduces to the
//! fraction of cluster GPUs the app currently holds. DRF is neither
//! placement-sensitive nor aware of long task durations, which is exactly
//! why it violates sharing incentive for ML apps.

use std::collections::BTreeMap;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, GpuId};
use themis_cluster::time::Time;
use themis_cluster::view::ClusterState;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{
    free_gpus_fastest_first, split_among_jobs, AllocationDecision, Scheduler,
};

/// The instantaneous dominant-resource-fairness scheduler.
#[derive(Debug, Default, Clone, Copy)]
pub struct Drf;

impl Drf {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Drf
    }
}

impl Scheduler for Drf {
    fn name(&self) -> &'static str {
        "drf"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let total_gpus = cluster.total_gpus().max(1) as f64;
        let mut remaining = cluster.free_gpu_count();
        if remaining == 0 {
            return Vec::new();
        }
        let mut shadow = cluster.view();
        // Dominant share per schedulable app (fraction of cluster GPUs held,
        // including what we tentatively grant this round).
        let mut shares: BTreeMap<AppId, f64> = apps
            .iter()
            .filter(|a| a.is_schedulable(now))
            .map(|a| (a.id(), shadow.gpus_held_by(a.id()) as f64 / total_gpus))
            .collect();
        let mut granted: BTreeMap<AppId, usize> = BTreeMap::new();

        // Serve one GPU at a time (a plain countdown — concrete ids are
        // picked at materialization) to the app with the smallest dominant
        // share that still has unmet demand.
        while remaining > 0 {
            let candidate = shares
                .iter()
                .filter(|(id, _)| {
                    apps[**id].unmet_demand(&shadow) > granted.get(*id).copied().unwrap_or(0)
                })
                .min_by(|a, b| {
                    a.1.partial_cmp(b.1)
                        .expect("finite shares")
                        .then(a.0.cmp(b.0))
                })
                .map(|(id, _)| *id);
            let Some(app_id) = candidate else { break };
            remaining -= 1;
            *granted.entry(app_id).or_insert(0) += 1;
            *shares.get_mut(&app_id).expect("share present") += 1.0 / total_gpus;
        }

        // Materialize grants: DRF is placement-unaware, so GPUs are assigned
        // fastest-first (id order on a uniform-speed cluster).
        let mut free: Vec<GpuId> = free_gpus_fastest_first(cluster);
        let mut decisions = Vec::new();
        for (app_id, count) in granted {
            let app = &apps[app_id];
            for (job, n) in split_among_jobs(app, &shadow, count) {
                let gpus: Vec<GpuId> = free.drain(..n.min(free.len())).collect();
                for gpu in &gpus {
                    // Keep the shadow consistent for split_among_jobs calls.
                    let _ = shadow.allocate(*gpu, app_id, job);
                }
                if !gpus.is_empty() {
                    decisions.push(AllocationDecision {
                        app: app_id,
                        job,
                        gpus,
                    });
                }
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::topology::ClusterSpec;
    use themis_sim::app_runtime::AppRuntime;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn app(id: u32, gpus: usize) -> AppRuntime {
        let job = JobSpec::new(
            JobId(0),
            ModelArch::ResNet50,
            1000.0,
            Time::minutes(0.1),
            gpus,
        );
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(id), Time::ZERO, job))
    }

    #[test]
    fn equal_demand_gets_equal_share() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps = AppArena::from_runtimes([app(0, 4), app(1, 4)]);
        let decisions = Drf::new().schedule(Time::ZERO, &cluster, &apps);
        let per_app: BTreeMap<AppId, usize> = decisions.iter().fold(BTreeMap::new(), |mut m, d| {
            *m.entry(d.app).or_insert(0) += d.gpus.len();
            m
        });
        assert_eq!(per_app[&AppId(0)], 4);
        assert_eq!(per_app[&AppId(1)], 4);
    }

    #[test]
    fn app_holding_gpus_has_larger_share_and_waits() {
        let mut cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        // App 0 already holds 4 GPUs.
        for gpu in cluster.free_gpus().into_iter().take(4) {
            cluster
                .allocate(gpu, AppId(0), JobId(0), Time::ZERO, Time::minutes(20.0))
                .unwrap();
        }
        let mut a0 = app(0, 8);
        a0.max_par_override.insert(JobId(0), 8);
        let apps = AppArena::from_runtimes([a0, app(1, 4)]);
        let decisions = Drf::new().schedule(Time::ZERO, &cluster, &apps);
        let to_app1: usize = decisions
            .iter()
            .filter(|d| d.app == AppId(1))
            .map(|d| d.gpus.len())
            .sum();
        assert_eq!(
            to_app1, 4,
            "the app with the smaller dominant share is served first"
        );
    }

    #[test]
    fn smallest_share_app_gets_the_fastest_gpus() {
        use themis_cluster::topology::{ClusterSpec, GpuGeneration};
        let cluster = Cluster::new(ClusterSpec::synthetic_mixed(
            1,
            2,
            4,
            &[GpuGeneration::Kepler, GpuGeneration::Volta],
        ));
        let apps = AppArena::from_runtimes([app(0, 4)]);
        let decisions = Drf::new().schedule(Time::ZERO, &cluster, &apps);
        let gpus: Vec<_> = decisions.iter().flat_map(|d| d.gpus.clone()).collect();
        assert_eq!(gpus.len(), 4);
        assert!(
            gpus.iter().all(|g| g.0 >= 4),
            "DRF hands out the Volta GPUs first, got {gpus:?}"
        );
    }

    #[test]
    fn respects_demand_limits() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps = AppArena::from_runtimes([app(0, 2)]);
        let decisions = Drf::new().schedule(Time::ZERO, &cluster, &apps);
        let total: usize = decisions.iter().map(|d| d.gpus.len()).sum();
        assert_eq!(total, 2);
    }
}

//! # themis-baselines
//!
//! The baseline GPU-cluster schedulers Themis is evaluated against
//! (NSDI 2020, §8). None of the original systems is open source, so — like
//! the paper itself — we implement the *emulations* the paper describes:
//!
//! * [`gandiva::Gandiva`] — introspective packing: apps report placement
//!   scores for offered resources and a greedy algorithm maximizes
//!   aggregate placement score at every lease boundary, with no fairness
//!   objective.
//! * [`tiresias::Tiresias`] — Least Attained Service: free GPUs go to the
//!   apps that have received the least total GPU service so far,
//!   placement-insensitively.
//! * [`slaq::Slaq`] — quality-driven scheduling: free GPUs go wherever they
//!   buy the largest aggregate decrease in training loss over the next
//!   lease interval.
//! * [`drf::Drf`] — instantaneous Dominant Resource Fairness (the
//!   motivation-section strawman): GPUs go to the app with the smallest
//!   current dominant share.
//!
//! Every baseline implements the [`themis_sim::scheduler::Scheduler`] trait,
//! so all of them (and Themis itself) run in exactly the same simulation
//! harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drf;
pub mod gandiva;
pub mod slaq;
pub mod tiresias;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::drf::Drf;
    pub use crate::gandiva::Gandiva;
    pub use crate::slaq::Slaq;
    pub use crate::tiresias::Tiresias;
}

pub use prelude::*;

//! SLAQ baseline: quality-driven scheduling.
//!
//! SLAQ (Zhang et al., SoCC 2017) allocates resources to maximize the
//! aggregate improvement in model quality (decrease in training loss) across
//! all jobs. The paper emulates it by having every app report the decrease
//! in loss it would obtain from a candidate allocation and assigning
//! resources to maximize the total decrease (§8, "SLAQ"). Old, slowly
//! converging jobs are naturally demoted — which is exactly why SLAQ fares
//! poorly on finish-time fairness in Figure 5. Grants materialize through
//! the speed-aware [`pick_gpus_packed`], so on a mixed-generation cluster
//! the quality-greedy winner lands on the fastest equally-local machines.

use std::collections::BTreeMap;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::placement::Locality;
use themis_cluster::time::Time;
use themis_cluster::view::ClusterState;
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{pick_gpus_packed, AllocationDecision, Scheduler};

/// The quality-driven SLAQ emulation.
#[derive(Debug, Clone, Copy)]
pub struct Slaq {
    /// The horizon over which loss improvement is evaluated; the lease
    /// duration is the natural choice and is what the evaluation uses.
    pub horizon: Time,
}

impl Default for Slaq {
    fn default() -> Self {
        Slaq {
            horizon: Time::minutes(20.0),
        }
    }
}

impl Slaq {
    /// Creates the scheduler with the default (20-minute) horizon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the scheduler with an explicit evaluation horizon.
    pub fn with_horizon(horizon: Time) -> Self {
        Slaq { horizon }
    }

    /// Marginal loss reduction for one job of going from `gpus` to
    /// `gpus + 1` GPUs over the horizon. Placement is assumed machine-local
    /// for the estimate (SLAQ is placement-unaware).
    fn marginal_loss_reduction(app: &AppRuntime, job: JobId, gpus: usize, horizon: Time) -> f64 {
        let Some(spec) = app.job_spec(job) else {
            return 0.0;
        };
        let progress = &app.progress[&job];
        if progress.is_finished(spec) {
            return 0.0;
        }
        let iters_with = |g: usize| -> f64 {
            let rate = spec.iterations_per_minute(g, Locality::Machine);
            (progress.iterations_done + rate * horizon.as_minutes()).min(spec.total_iterations)
        };
        let from = progress.iterations_done;
        let without = spec.loss_curve.loss_reduction(from, iters_with(gpus));
        let with = spec.loss_curve.loss_reduction(from, iters_with(gpus + 1));
        (with - without).max(0.0)
    }
}

impl Scheduler for Slaq {
    fn name(&self) -> &'static str {
        "slaq"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let mut shadow = cluster.view();
        // Tentative GPU counts handed to each (app, job) this round.
        let mut granted: BTreeMap<(AppId, JobId), usize> = BTreeMap::new();
        let free_total = shadow.free_gpu_count();

        // Hand out GPUs one at a time to the job with the largest marginal
        // loss reduction, mirroring SLAQ's quality-maximizing allocation.
        for _ in 0..free_total {
            let mut best: Option<(AppId, JobId, f64)> = None;
            for app in apps.iter().filter(|a| a.is_schedulable(now)) {
                for job in app.active_jobs() {
                    // The shadow cluster already tracks this round's
                    // tentative grants (placeholder allocations below).
                    let held = shadow.gpus_of_job(app.id(), job).len();
                    if held >= app.effective_max_parallelism(job) {
                        continue;
                    }
                    let gain = Self::marginal_loss_reduction(app, job, held, self.horizon);
                    let candidate = (app.id(), job, gain);
                    best = match best {
                        None => Some(candidate),
                        Some((_, _, best_gain)) if gain > best_gain + 1e-15 => Some(candidate),
                        Some(current) => Some(current),
                    };
                }
            }
            let Some((app_id, job, gain)) = best else {
                break;
            };
            if gain <= 0.0 {
                break;
            }
            *granted.entry((app_id, job)).or_insert(0) += 1;
            // Reserve a placeholder GPU in the shadow so held counts update.
            let next_free = shadow.free_gpus().into_iter().next();
            if let Some(gpu) = next_free {
                shadow.allocate(gpu, app_id, job).expect("gpu is free");
            } else {
                break;
            }
        }

        // Materialize the grants into concrete GPUs (packed per job) against
        // the real cluster state.
        let mut shadow = cluster.view();
        let mut decisions = Vec::new();
        for ((app_id, job), count) in granted {
            let prefer = shadow.gpus_of_job(app_id, job).machines(shadow.spec());
            let gpus = pick_gpus_packed(&shadow, count, &prefer);
            for gpu in &gpus {
                shadow.allocate(*gpu, app_id, job).expect("gpu is free");
            }
            if !gpus.is_empty() {
                decisions.push(AllocationDecision {
                    app: app_id,
                    job,
                    gpus,
                });
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::loss::LossCurve;
    use themis_workload::models::ModelArch;

    fn app_with_curve(id: u32, exponent: f64, iterations_done: f64) -> AppRuntime {
        let mut job = JobSpec::new(JobId(0), ModelArch::ResNet50, 5000.0, Time::minutes(0.1), 4);
        job.loss_curve = LossCurve::PowerLaw {
            floor: 0.0,
            scale: 2.0,
            exponent,
        };
        let mut rt = AppRuntime::with_default_hpo(AppSpec::single_job(AppId(id), Time::ZERO, job));
        rt.progress.get_mut(&JobId(0)).unwrap().iterations_done = iterations_done;
        rt
    }

    #[test]
    fn prefers_jobs_with_steeper_loss_curves() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        // App 0 is brand new (steep part of the curve); app 1 is far along
        // (flat part of the curve) — SLAQ should strongly favour app 0.
        let apps =
            AppArena::from_runtimes([app_with_curve(0, 0.5, 0.0), app_with_curve(1, 0.5, 4000.0)]);
        let decisions = Slaq::new().schedule(Time::ZERO, &cluster, &apps);
        let to_app0: usize = decisions
            .iter()
            .filter(|d| d.app == AppId(0))
            .map(|d| d.gpus.len())
            .sum();
        let to_app1: usize = decisions
            .iter()
            .filter(|d| d.app == AppId(1))
            .map(|d| d.gpus.len())
            .sum();
        assert!(
            to_app0 > to_app1,
            "new app should receive more GPUs ({to_app0} vs {to_app1})"
        );
    }

    #[test]
    fn respects_max_parallelism() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps = AppArena::from_runtimes([app_with_curve(0, 0.5, 0.0)]);
        let decisions = Slaq::new().schedule(Time::ZERO, &cluster, &apps);
        let total: usize = decisions.iter().map(|d| d.gpus.len()).sum();
        assert!(total <= 4, "cannot exceed the app's max parallelism");
    }

    #[test]
    fn finished_jobs_get_nothing() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let mut rt = app_with_curve(0, 0.5, 0.0);
        rt.progress.get_mut(&JobId(0)).unwrap().kill(Time::ZERO);
        let apps = AppArena::from_runtimes([rt]);
        assert!(Slaq::new().schedule(Time::ZERO, &cluster, &apps).is_empty());
    }
}

//! Gandiva baseline: introspective, placement-greedy packing.
//!
//! Gandiva (Xiao et al., OSDI 2018) profiles jobs introspectively and
//! migrates them to better placements. The paper emulates it by having all
//! apps report the placement score they would obtain from the offered
//! resources and running a greedy algorithm that maximizes aggregate
//! placement score at the end of every lease (§8, "Gandiva"). There is no
//! fairness objective: a well-placed app can keep winning indefinitely.
//! On a mixed-generation cluster the packing inherits
//! [`pick_gpus_packed`]'s fastest-machine tie-break, so at equal locality
//! Gandiva packs jobs onto the faster silicon.

use std::collections::BTreeSet;
use themis_cluster::alloc::GpuAlloc;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::AppId;
use themis_cluster::time::Time;
use themis_cluster::view::ClusterState;
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{pick_gpus_packed, split_among_jobs, AllocationDecision, Scheduler};

/// The placement-greedy Gandiva emulation.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gandiva;

impl Gandiva {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Gandiva
    }

    /// The placement score an app would report for receiving `count` GPUs,
    /// given the current (shadow) cluster state: the score of the best
    /// packed pick of that size, preferring machines the app already uses.
    fn prospective_score<C: ClusterState>(cluster: &C, app: &AppRuntime, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let prefer = cluster.gpus_of_app(app.id()).machines(cluster.spec());
        let gpus = pick_gpus_packed(cluster, count, &prefer);
        if gpus.is_empty() {
            return 0.0;
        }
        let alloc = GpuAlloc::from_gpus(gpus);
        cluster.scorer().score(&alloc, cluster.spec())
    }
}

impl Scheduler for Gandiva {
    fn name(&self) -> &'static str {
        "gandiva"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let mut shadow = cluster.view();
        let mut decisions = Vec::new();

        // Greedy loop: repeatedly grant the (app → packed GPUs) assignment
        // with the best achievable placement score until demand or supply is
        // exhausted. Chunk size is one job's worth of GPUs at a time so that
        // gang-scheduled jobs stay tightly packed.
        loop {
            if shadow.free_gpu_count() == 0 {
                break;
            }
            let mut best: Option<(AppId, usize, f64)> = None;
            for app in apps.iter().filter(|a| a.is_schedulable(now)) {
                let unmet = app.unmet_demand(&shadow);
                if unmet == 0 {
                    continue;
                }
                // The next chunk this app would place: its largest unmet
                // single-job demand (capped by supply).
                let chunk = split_among_jobs(app, &shadow, unmet)
                    .into_iter()
                    .map(|(_, c)| c)
                    .max()
                    .unwrap_or(0)
                    .min(shadow.free_gpu_count());
                if chunk == 0 {
                    continue;
                }
                let score = Self::prospective_score(&shadow, app, chunk);
                let candidate = (app.id(), chunk, score);
                best = match best {
                    None => Some(candidate),
                    Some((_, _, best_score)) if score > best_score + 1e-12 => Some(candidate),
                    Some(current) => Some(current),
                };
            }
            let Some((app_id, chunk, _)) = best else {
                break;
            };
            let app = &apps[app_id];
            // Give the chunk to the job with the largest unmet demand.
            let Some((job, count)) = split_among_jobs(app, &shadow, chunk)
                .into_iter()
                .max_by_key(|(job, c)| (*c, std::cmp::Reverse(*job)))
            else {
                break;
            };
            let prefer: BTreeSet<_> = shadow.gpus_of_job(app_id, job).machines(shadow.spec());
            let gpus = pick_gpus_packed(&shadow, count, &prefer);
            if gpus.is_empty() {
                break;
            }
            for gpu in &gpus {
                shadow
                    .allocate(*gpu, app_id, job)
                    .expect("gpu is free in shadow cluster");
            }
            decisions.push(AllocationDecision {
                app: app_id,
                job,
                gpus,
            });
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::{JobId, MachineId};
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn app(id: u32, gpus: usize, model: ModelArch) -> AppRuntime {
        let mut job = JobSpec::new(
            JobId(0),
            ModelArch::ResNet50,
            1000.0,
            Time::minutes(0.1),
            gpus,
        );
        job.model = model;
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(id), Time::ZERO, job))
    }

    #[test]
    fn packs_each_app_onto_one_machine_when_possible() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps =
            AppArena::from_runtimes([app(0, 4, ModelArch::Vgg16), app(1, 4, ModelArch::Vgg16)]);
        let decisions = Gandiva::new().schedule(Time::ZERO, &cluster, &apps);
        let total: usize = decisions.iter().map(|d| d.gpus.len()).sum();
        assert_eq!(total, 8);
        for d in &decisions {
            let machines: BTreeSet<MachineId> = d
                .gpus
                .iter()
                .filter_map(|g| cluster.spec().machine_of(*g))
                .collect();
            assert_eq!(machines.len(), 1, "each 4-GPU job fits one machine");
        }
    }

    #[test]
    fn is_work_conserving() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(2, 2, 2));
        let apps =
            AppArena::from_runtimes([app(0, 4, ModelArch::ResNet50), app(1, 2, ModelArch::Vgg16)]);
        let decisions = Gandiva::new().schedule(Time::ZERO, &cluster, &apps);
        let total: usize = decisions.iter().map(|d| d.gpus.len()).sum();
        assert_eq!(total, 6, "all demanded GPUs are allocated");
    }

    #[test]
    fn no_demand_means_no_decisions() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let apps = AppArena::new();
        assert!(Gandiva::new()
            .schedule(Time::ZERO, &cluster, &apps)
            .is_empty());
    }
}

//! Tiresias baseline: Least Attained Service (LAS).
//!
//! Tiresias (Gu et al., NSDI 2019) targets average job completion time with
//! priority-based placement. The paper emulates it by having every app
//! report its total GPU service and assigning free resources to the apps
//! with the *least attained service* (§8, "Tiresias"). The emulation is
//! placement-insensitive: GPUs are handed out in id order regardless of
//! locality, which is exactly the behaviour the paper's Figure 7 attributes
//! to it.

use themis_cluster::cluster::Cluster;
use themis_cluster::ids::GpuId;
use themis_cluster::time::Time;
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{
    free_gpus_fastest_first, split_among_jobs, AllocationDecision, Scheduler,
};

/// The Least-Attained-Service scheduler.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tiresias;

impl Tiresias {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Tiresias
    }
}

impl Scheduler for Tiresias {
    fn name(&self) -> &'static str {
        "tiresias"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        // Fastest GPUs first: LAS stays placement-insensitive, but on a
        // mixed-generation cluster the least-served app is handed the
        // fastest available silicon (id order at uniform speed).
        let mut free: Vec<GpuId> = free_gpus_fastest_first(cluster);
        if free.is_empty() {
            return Vec::new();
        }
        // Apps ordered by least attained GPU service; ties broken by
        // arrival then id for determinism.
        let mut order: Vec<&AppRuntime> = apps.iter().filter(|a| a.is_schedulable(now)).collect();
        order.sort_by(|a, b| {
            a.attained_service
                .cmp(&b.attained_service)
                .then(a.spec.arrival.cmp(&b.spec.arrival))
                .then(a.id().cmp(&b.id()))
        });

        let mut shadow = cluster.view();
        let mut decisions = Vec::new();
        for app in order {
            if free.is_empty() {
                break;
            }
            let want = app.unmet_demand(&shadow);
            if want == 0 {
                continue;
            }
            let budget = want.min(free.len());
            for (job, count) in split_among_jobs(app, &shadow, budget) {
                // Placement-insensitive: take the first `count` free GPUs
                // in fastest-first order, wherever they are.
                let gpus: Vec<GpuId> = free.drain(..count.min(free.len())).collect();
                for gpu in &gpus {
                    shadow
                        .allocate(*gpu, app.id(), job)
                        .expect("gpu taken from the free list");
                }
                if !gpus.is_empty() {
                    decisions.push(AllocationDecision {
                        app: app.id(),
                        job,
                        gpus,
                    });
                }
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::{AppId, JobId};
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn app(id: u32, gpus: usize) -> AppRuntime {
        let job = JobSpec::new(
            JobId(0),
            ModelArch::ResNet50,
            1000.0,
            Time::minutes(0.1),
            gpus,
        );
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(id), Time::ZERO, job))
    }

    #[test]
    fn least_served_app_gets_gpus_first() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let mut a0 = app(0, 4);
        a0.attained_service = Time::minutes(100.0);
        let a1 = app(1, 4); // zero service so far
        let apps = AppArena::from_runtimes([a0, a1]);
        let decisions = Tiresias::new().schedule(Time::ZERO, &cluster, &apps);
        // All 4 GPUs go to app 1 (least attained service).
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].app, AppId(1));
        assert_eq!(decisions[0].gpus.len(), 4);
    }

    #[test]
    fn spills_leftovers_to_other_apps() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let a0 = app(0, 4);
        let a1 = app(1, 4);
        let apps = AppArena::from_runtimes([a0, a1]);
        let decisions = Tiresias::new().schedule(Time::ZERO, &cluster, &apps);
        let total: usize = decisions.iter().map(|d| d.gpus.len()).sum();
        assert_eq!(total, 8, "work conserving: all 8 GPUs are handed out");
        let apps_served: std::collections::BTreeSet<AppId> =
            decisions.iter().map(|d| d.app).collect();
        assert_eq!(apps_served.len(), 2);
    }

    #[test]
    fn least_served_app_gets_the_fastest_gpus() {
        use themis_cluster::topology::{ClusterSpec, GpuGeneration};
        // Machine 0 Kepler (0.5), machine 1 Volta (2.0); two contending
        // apps of 4 each on 8 GPUs: the least-served app is handed the
        // Volta GPUs (4..8) first.
        let cluster = Cluster::new(ClusterSpec::synthetic_mixed(
            1,
            2,
            4,
            &[GpuGeneration::Kepler, GpuGeneration::Volta],
        ));
        let mut a0 = app(0, 4);
        a0.attained_service = Time::minutes(100.0);
        let apps = AppArena::from_runtimes([a0, app(1, 4)]);
        let decisions = Tiresias::new().schedule(Time::ZERO, &cluster, &apps);
        let first = decisions.iter().find(|d| d.app == AppId(1)).unwrap();
        assert!(
            first.gpus.iter().all(|g| g.0 >= 4),
            "least-served app should get the Volta machine, got {:?}",
            first.gpus
        );
    }

    #[test]
    fn no_decisions_without_free_gpus() {
        let mut cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 2));
        for gpu in cluster.free_gpus() {
            cluster
                .allocate(gpu, AppId(9), JobId(0), Time::ZERO, Time::minutes(20.0))
                .unwrap();
        }
        let apps = AppArena::from_runtimes([app(0, 2)]);
        assert!(Tiresias::new()
            .schedule(Time::ZERO, &cluster, &apps)
            .is_empty());
    }

    #[test]
    fn ignores_unarrived_and_finished_apps() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let job = JobSpec::new(JobId(0), ModelArch::ResNet50, 1000.0, Time::minutes(0.1), 4);
        let late =
            AppRuntime::with_default_hpo(AppSpec::single_job(AppId(0), Time::minutes(100.0), job));
        let apps = AppArena::from_runtimes([late]);
        assert!(Tiresias::new()
            .schedule(Time::ZERO, &cluster, &apps)
            .is_empty());
    }
}

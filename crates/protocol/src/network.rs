//! The simulated network that owns every Arbiter↔Agent link.
//!
//! Unlike the legacy per-pair [`InMemoryLink`](crate::transport::InMemoryLink)
//! (where a whole auction round resolves at one instant), the [`Network`]
//! is *causal*: a message sent at `t` is delivered at
//! `t' = max(t, link busy) + size/bandwidth + delay + jitter`, and the
//! caller drives deliveries from a discrete-event loop via
//! [`Network::pop_due`] / [`Network::next_event_time`]. Rounds therefore
//! overlap in simulated time and a slow Agent's Bid genuinely races the
//! bid deadline.
//!
//! With [`FaultConfig::arbiter_service_time`] set, the Arbiter itself
//! becomes a congestion point: every message it sends or receives passes
//! through one shared single-server queue (`max(arrival, server busy) +
//! service_time`, the same serialization shape as the per-link bandwidth
//! model), so a broadcast to N Agents costs N egress slots and an
//! all-agent reply storm drains one service time at a time.
//! [`Network::send_multi`] is the coalescing escape hatch: one service
//! slot for a whole destination group.
//!
//! Every decision the network makes — each send with its fate (delivery
//! time or drop), each delivery — is appended to a
//! [`MessageLog`] when recording, and *taken from*
//! the log (bypassing the RNG) when replaying. See [`LogMode`].
//!
//! ```
//! use themis_cluster::time::Time;
//! use themis_protocol::actor::ActorId;
//! use themis_protocol::network::{LogMode, NetMsg, Network};
//! use themis_protocol::transport::FaultConfig;
//!
//! struct Ping;
//! impl NetMsg for Ping {
//!     fn log_tag(&self) -> String {
//!         "ping".to_string()
//!     }
//! }
//!
//! let fault = FaultConfig::reliable().with_delay(Time::seconds(5.0));
//! let mut net: Network<Ping> = Network::new(fault, LogMode::Off);
//! net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Ping);
//!
//! // Nothing is visible before the latency elapses…
//! assert_eq!(net.next_event_time(), Some(Time::seconds(5.0)));
//! assert!(net.pop_due(Time::seconds(4.0)).is_none());
//! // …then the delivery pops in (time, send-order) order.
//! let (at, _seq, src, dst, _msg) = net.pop_due(Time::seconds(5.0)).unwrap();
//! assert_eq!((at, src, dst), (Time::seconds(5.0), ActorId::ARBITER, ActorId(0)));
//! ```

use crate::actor::ActorId;
use crate::log::{LogRecord, MessageLog, ReplayCursor, SendFate};
use crate::transport::FaultConfig;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use themis_cluster::time::Time;

/// A message that can travel through the [`Network`].
pub trait NetMsg {
    /// Stable, whitespace-free tag identifying the message in the log
    /// (e.g. `offer:r3`). Two runs of the same scenario must produce the
    /// same tags in the same order.
    fn log_tag(&self) -> String;

    /// Message size in abstract units, charged against the link bandwidth
    /// ([`FaultConfig::bandwidth`] units per minute). Defaults to 1.
    fn size_units(&self) -> u64 {
        1
    }
}

/// Whether (and how) the network transcribes its decisions.
#[derive(Clone, Default)]
pub enum LogMode {
    /// No transcript.
    #[default]
    Off,
    /// Append every decision to the shared log.
    Record(Arc<Mutex<MessageLog>>),
    /// Take every decision from the log, validating each against the run.
    Replay(ReplayCursor),
}

impl LogMode {
    /// Record mode writing into `log`.
    pub fn record(log: Arc<Mutex<MessageLog>>) -> Self {
        LogMode::Record(log)
    }

    /// Replay mode reading from `log`.
    pub fn replay(log: Arc<MessageLog>) -> Self {
        LogMode::Replay(ReplayCursor::new(log))
    }
}

impl fmt::Debug for LogMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogMode::Off => write!(f, "Off"),
            LogMode::Record(_) => write!(f, "Record(..)"),
            LogMode::Replay(cursor) => write!(f, "Replay(pos={})", cursor.position()),
        }
    }
}

/// Counters kept by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages handed to their destination actor.
    pub delivered: u64,
    /// Messages dropped by random fault injection.
    pub dropped_fault: u64,
    /// Messages dropped at an active partition boundary.
    pub dropped_partition: u64,
}

/// The event-driven message fabric between the Arbiter and its Agents.
///
/// See the module docs for the delivery model. All randomness (drop
/// decisions, jitter) comes from one RNG seeded by
/// [`FaultConfig::seed`], so identical scenarios produce identical
/// message histories.
pub struct Network<M> {
    fault: FaultConfig,
    rng: SmallRng,
    /// In-flight messages keyed by `(delivery time, send seq)` — the
    /// deterministic delivery order.
    in_flight: BTreeMap<(Time, u64), (ActorId, ActorId, M)>,
    next_seq: u64,
    /// Per directed link: when the link finishes transferring the last
    /// message it accepted (bandwidth modelling).
    busy_until: BTreeMap<(ActorId, ActorId), Time>,
    /// When the Arbiter's single-server mailbox frees up again
    /// ([`FaultConfig::arbiter_service_time`]). One shared server for both
    /// directions: egress serialization and ingress absorption queue on
    /// the same Arbiter CPU, which is what makes an all-agent reply storm
    /// take `N × service_time` to drain. Only consulted live — replay
    /// takes delivery times from the log.
    arbiter_busy_until: Time,
    /// Actors currently cut off by a partition. A message is dropped when
    /// exactly one of `{src, dst}` is isolated.
    isolated: BTreeSet<ActorId>,
    mode: LogMode,
    stats: NetStats,
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("in_flight", &self.in_flight.len())
            .field("isolated", &self.isolated)
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<M: NetMsg> Network<M> {
    /// Creates a network with the given fault model and log mode.
    pub fn new(fault: FaultConfig, mode: LogMode) -> Self {
        Network {
            fault,
            rng: SmallRng::seed_from_u64(fault.seed),
            in_flight: BTreeMap::new(),
            next_seq: 0,
            busy_until: BTreeMap::new(),
            arbiter_busy_until: Time::ZERO,
            isolated: BTreeSet::new(),
            mode,
            stats: NetStats::default(),
        }
    }

    /// Sends `msg` from `src` to `dst` at time `now` and returns its fate.
    ///
    /// In [`LogMode::Replay`] the fate (drop or delivery time) is taken
    /// from the log instead of the RNG; a mismatch with what the log
    /// recorded panics with a replay-divergence diagnostic.
    pub fn send(&mut self, now: Time, src: ActorId, dst: ActorId, msg: M) -> SendFate {
        self.send_leg(now, None, src, dst, msg)
    }

    /// Sends one broadcast message to every destination: the Arbiter
    /// serializes it **once** (one [`FaultConfig::arbiter_service_time`]
    /// slot for the whole group), then every destination gets an
    /// independent wire leg — its own drop draw, jitter draw, seq and log
    /// record, exactly as if sent individually. This is the fan-out side
    /// of message coalescing: `⌈N/B⌉` `send_multi` calls charge the
    /// Arbiter `⌈N/B⌉` service slots where `N` individual [`Network::send`]
    /// calls would charge `N`.
    ///
    /// Returns the per-destination fates in `dsts` order.
    pub fn send_multi(&mut self, now: Time, src: ActorId, dsts: &[ActorId], msg: M) -> Vec<SendFate>
    where
        M: Clone,
    {
        if dsts.is_empty() {
            return Vec::new();
        }
        // The one shared service slot. Skipped in replay — delivery times
        // there come from the log, so the live server model is never
        // consulted and must not mutate state.
        let floor = match self.mode {
            LogMode::Replay(_) => now,
            _ => self.arbiter_egress_floor(now, src),
        };
        dsts.iter()
            .map(|&dst| self.send_leg(now, Some(floor), src, dst, msg.clone()))
            .collect()
    }

    /// One point-to-point send. `wire_floor` is the earliest time the wire
    /// leg may start: `None` charges the sender's own Arbiter egress
    /// service slot (the plain [`Network::send`] path), `Some(t)` reuses a
    /// slot already charged by [`Network::send_multi`].
    fn send_leg(
        &mut self,
        now: Time,
        wire_floor: Option<Time>,
        src: ActorId,
        dst: ActorId,
        msg: M,
    ) -> SendFate {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tag = msg.log_tag();
        let fate = match &mut self.mode {
            LogMode::Replay(cursor) => cursor.expect_send(seq, now, src, dst, &tag),
            _ => {
                let floor = match wire_floor {
                    Some(t) => t,
                    None => self.arbiter_egress_floor(now, src),
                };
                let fate = self.decide_fate(now, floor, src, dst, &msg);
                if let LogMode::Record(log) = &self.mode {
                    log.lock().push(LogRecord::Send {
                        seq,
                        at: now,
                        src,
                        dst,
                        tag,
                        fate,
                    });
                }
                fate
            }
        };
        match fate {
            SendFate::Deliver { at } => {
                self.stats.sent += 1;
                self.in_flight.insert((at, seq), (src, dst, msg));
            }
            SendFate::DropFault => self.stats.dropped_fault += 1,
            SendFate::DropPartition => self.stats.dropped_partition += 1,
        }
        fate
    }

    /// Charges one Arbiter service slot starting no earlier than `t` and
    /// returns when it completes: `max(t, server busy) + service_time`.
    fn arbiter_service(&mut self, t: Time) -> Time {
        let start = t.max(self.arbiter_busy_until);
        self.arbiter_busy_until = start + self.fault.arbiter_service_time;
        self.arbiter_busy_until
    }

    /// Egress side of the service model: a message the Arbiter sends must
    /// first be serialized by its single-threaded server, so the wire leg
    /// cannot start before the service slot completes. Dropped messages
    /// still paid for serialization — the wire lost them afterwards.
    fn arbiter_egress_floor(&mut self, now: Time, src: ActorId) -> Time {
        if src == ActorId::ARBITER && self.fault.arbiter_service_time > Time::ZERO {
            self.arbiter_service(now)
        } else {
            now
        }
    }

    /// The live (non-replay) fate decision: partition check, drop draw,
    /// then the causal delivery time
    /// `max(wire_floor, link busy) + size/bandwidth + delay + jitter`,
    /// plus — for messages addressed to the Arbiter — the inbox queue
    /// delay `max(arrival, server busy) + service_time`.
    fn decide_fate(
        &mut self,
        _now: Time,
        wire_floor: Time,
        src: ActorId,
        dst: ActorId,
        msg: &M,
    ) -> SendFate {
        if self.isolated.contains(&src) != self.isolated.contains(&dst) {
            return SendFate::DropPartition;
        }
        let p = self.fault.drop_probability;
        if p > 0.0 && self.rng.gen::<f64>() < p {
            return SendFate::DropFault;
        }
        let busy = self
            .busy_until
            .get(&(src, dst))
            .copied()
            .unwrap_or(Time::ZERO);
        let start = wire_floor.max(busy);
        let transfer = if self.fault.bandwidth > 0.0 {
            Time::minutes(msg.size_units() as f64 / self.fault.bandwidth)
        } else {
            Time::ZERO
        };
        if self.fault.bandwidth > 0.0 {
            self.busy_until.insert((src, dst), start + transfer);
        }
        let jitter = if self.fault.jitter > Time::ZERO {
            self.fault.jitter * self.rng.gen::<f64>()
        } else {
            Time::ZERO
        };
        let arrival = start + transfer + self.fault.delay + jitter;
        // Ingress side of the service model: the Arbiter's mailbox is an
        // M/D/1-style queue — a message is only *delivered* (visible to
        // the Arbiter actor) once the server has absorbed it.
        let at = if dst == ActorId::ARBITER && self.fault.arbiter_service_time > Time::ZERO {
            self.arbiter_service(arrival)
        } else {
            arrival
        };
        SendFate::Deliver { at }
    }

    /// The earliest pending delivery time, if any — the network's
    /// contribution to the scheduler's next-wakeup request.
    pub fn next_event_time(&self) -> Option<Time> {
        self.in_flight.keys().next().map(|(t, _)| *t)
    }

    /// Pops the earliest in-flight message due at or before `now`, as
    /// `(delivery time, seq, src, dst, msg)`. Deliveries pop in
    /// `(delivery time, send order)` order, which keeps jittered
    /// reorderings deterministic.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, u64, ActorId, ActorId, M)> {
        let key = *self.in_flight.keys().next().filter(|(t, _)| *t <= now)?;
        let (src, dst, msg) = self.in_flight.remove(&key).expect("key just observed");
        let (at, seq) = key;
        match &mut self.mode {
            LogMode::Record(log) => log.lock().push(LogRecord::Deliver { seq, at }),
            LogMode::Replay(cursor) => cursor.expect_deliver(seq, at),
            LogMode::Off => {}
        }
        self.stats.delivered += 1;
        Some((at, seq, src, dst, msg))
    }

    /// Transcribes a timer armed by the actor runtime (`tag` must be
    /// stable and whitespace-free). Timers are part of the log so a replay
    /// validates deadline decisions, not just message fates.
    pub fn note_timer(&mut self, now: Time, fire_at: Time, tag: &str) {
        match &mut self.mode {
            LogMode::Record(log) => log.lock().push(LogRecord::Timer {
                at: now,
                fire_at,
                tag: tag.to_string(),
            }),
            LogMode::Replay(cursor) => cursor.expect_timer(now, fire_at, tag),
            LogMode::Off => {}
        }
    }

    /// Cuts `isolated` off from everyone else: messages crossing the
    /// boundary (in either direction) are dropped at send time with
    /// [`SendFate::DropPartition`]. Messages already in flight are *not*
    /// killed — they were on the wire before the cut.
    pub fn set_partition(&mut self, isolated: BTreeSet<ActorId>) {
        self.isolated = isolated;
    }

    /// Heals any active partition.
    pub fn heal_partition(&mut self) {
        self.isolated.clear();
    }

    /// Actors currently isolated by a partition.
    pub fn isolated(&self) -> &BTreeSet<ActorId> {
        &self.isolated
    }

    /// Number of in-flight messages.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Delivery/drop counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(&'static str, u64);

    impl NetMsg for Msg {
        fn log_tag(&self) -> String {
            self.0.to_string()
        }

        fn size_units(&self) -> u64 {
            self.1
        }
    }

    fn drain(net: &mut Network<Msg>, now: Time) -> Vec<(Time, &'static str)> {
        std::iter::from_fn(|| net.pop_due(now))
            .map(|(at, _, _, _, m)| (at, m.0))
            .collect()
    }

    #[test]
    fn reliable_network_delivers_instantly_in_send_order() {
        let mut net = Network::new(FaultConfig::reliable(), LogMode::Off);
        net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("a", 1));
        net.send(Time::ZERO, ActorId::ARBITER, ActorId(1), Msg("b", 1));
        assert_eq!(
            drain(&mut net, Time::ZERO),
            vec![(Time::ZERO, "a"), (Time::ZERO, "b")]
        );
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn bandwidth_serializes_messages_on_a_link() {
        // 2 units/minute; each message is 4 units => 2 minutes on the wire.
        let fault = FaultConfig::reliable().with_bandwidth(2.0);
        let mut net = Network::new(fault, LogMode::Off);
        let a = ActorId::ARBITER;
        net.send(Time::ZERO, a, ActorId(0), Msg("first", 4));
        net.send(Time::ZERO, a, ActorId(0), Msg("second", 4));
        // A different link is not affected by this link's backlog.
        net.send(Time::ZERO, a, ActorId(1), Msg("other", 4));
        assert_eq!(
            drain(&mut net, Time::minutes(10.0)),
            vec![
                (Time::minutes(2.0), "first"),
                (Time::minutes(2.0), "other"),
                (Time::minutes(4.0), "second"),
            ]
        );
    }

    #[test]
    fn jitter_can_reorder_messages_deterministically() {
        let fault = FaultConfig::reliable()
            .with_jitter(Time::minutes(5.0))
            .with_seed(3);
        let history = |seed: u64| {
            let mut net = Network::new(fault.with_seed(seed), LogMode::Off);
            for i in 0..20 {
                net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("m", i));
            }
            std::iter::from_fn(|| net.pop_due(Time::INFINITY))
                .map(|(at, seq, ..)| (at, seq))
                .collect::<Vec<_>>()
        };
        let h = history(3);
        assert_eq!(h, history(3), "jitter is deterministic per seed");
        assert_ne!(h, history(4));
        // With 20 draws over a 5-minute window, at least one pair must
        // have popped out of send order.
        assert!(
            h.windows(2).any(|w| w[1].1 < w[0].1),
            "expected a reordering in {h:?}"
        );
        // Yet delivery times pop monotonically.
        assert!(h.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn partition_drops_crossing_messages_until_healed() {
        let mut net = Network::new(FaultConfig::reliable(), LogMode::Off);
        net.set_partition([ActorId(1)].into_iter().collect());
        let fate = net.send(Time::ZERO, ActorId::ARBITER, ActorId(1), Msg("cut", 1));
        assert_eq!(fate, SendFate::DropPartition);
        // Isolated-to-isolated and healthy-to-healthy both still flow.
        assert!(matches!(
            net.send(Time::ZERO, ActorId(1), ActorId(1), Msg("self", 1)),
            SendFate::Deliver { .. }
        ));
        assert!(matches!(
            net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("ok", 1)),
            SendFate::Deliver { .. }
        ));
        net.heal_partition();
        assert!(matches!(
            net.send(Time::ZERO, ActorId::ARBITER, ActorId(1), Msg("back", 1)),
            SendFate::Deliver { .. }
        ));
        assert_eq!(net.stats().dropped_partition, 1);
    }

    #[test]
    fn record_then_replay_reproduces_fates_without_rng() {
        let fault = FaultConfig::reliable()
            .with_drop_probability(0.5)
            .with_jitter(Time::seconds(30.0))
            .with_seed(11);
        let log = Arc::new(Mutex::new(MessageLog::new()));
        let mut recorded = Vec::new();
        {
            let mut net = Network::new(fault, LogMode::record(Arc::clone(&log)));
            for i in 0..50 {
                recorded.push(net.send(
                    Time::minutes(i as f64),
                    ActorId::ARBITER,
                    ActorId(0),
                    Msg("m", 1),
                ));
            }
            while net.pop_due(Time::INFINITY).is_some() {}
        }
        let log = Arc::new(Arc::try_unwrap(log).unwrap().into_inner());
        // Replay with a *different* seed: fates must still match, because
        // they come from the log, not the RNG.
        let mut net = Network::new(fault.with_seed(999), LogMode::replay(Arc::clone(&log)));
        for (i, expected) in recorded.iter().enumerate() {
            let fate = net.send(
                Time::minutes(i as f64),
                ActorId::ARBITER,
                ActorId(0),
                Msg("m", 1),
            );
            assert_eq!(fate, *expected);
        }
        while net.pop_due(Time::INFINITY).is_some() {}
    }

    #[test]
    fn arbiter_inbox_serializes_fan_in() {
        // Three agents answer at the same instant; the Arbiter's server
        // absorbs one message per minute, so deliveries queue at 1, 2, 3.
        let fault = FaultConfig::reliable().with_arbiter_service_time(Time::minutes(1.0));
        let mut net = Network::new(fault, LogMode::Off);
        for i in 0..3 {
            net.send(Time::ZERO, ActorId(i), ActorId::ARBITER, Msg("rho", 1));
        }
        assert_eq!(
            drain(&mut net, Time::minutes(10.0)),
            vec![
                (Time::minutes(1.0), "rho"),
                (Time::minutes(2.0), "rho"),
                (Time::minutes(3.0), "rho"),
            ]
        );
        // Agent-to-agent traffic never touches the Arbiter's server.
        let mut net = Network::new(fault, LogMode::Off);
        net.send(Time::ZERO, ActorId(0), ActorId(1), Msg("peer", 1));
        assert_eq!(
            drain(&mut net, Time::minutes(10.0)),
            vec![(Time::ZERO, "peer")]
        );
    }

    #[test]
    fn arbiter_egress_charges_per_send_but_once_per_multi() {
        let fault = FaultConfig::reliable().with_arbiter_service_time(Time::minutes(1.0));
        // Individual sends: the broadcast costs N service slots.
        let mut net = Network::new(fault, LogMode::Off);
        for i in 0..3 {
            net.send(Time::ZERO, ActorId::ARBITER, ActorId(i), Msg("q", 1));
        }
        assert_eq!(
            drain(&mut net, Time::minutes(10.0))
                .into_iter()
                .map(|(at, _)| at)
                .collect::<Vec<_>>(),
            vec![Time::minutes(1.0), Time::minutes(2.0), Time::minutes(3.0)]
        );
        // One send_multi: one slot, every destination hears it together.
        let mut net = Network::new(fault, LogMode::Off);
        let dsts: Vec<ActorId> = (0..3).map(ActorId).collect();
        let fates = net.send_multi(Time::ZERO, ActorId::ARBITER, &dsts, Msg("q", 1));
        assert_eq!(fates.len(), 3);
        assert_eq!(
            drain(&mut net, Time::minutes(10.0))
                .into_iter()
                .map(|(at, _)| at)
                .collect::<Vec<_>>(),
            vec![Time::minutes(1.0); 3]
        );
        // Egress and ingress share the server: a reply arriving while the
        // Arbiter is still serializing its broadcast waits its turn.
        let mut net = Network::new(fault, LogMode::Off);
        net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("q", 1));
        net.send(Time::ZERO, ActorId(1), ActorId::ARBITER, Msg("rho", 1));
        assert_eq!(
            drain(&mut net, Time::minutes(10.0)),
            vec![(Time::minutes(1.0), "q"), (Time::minutes(2.0), "rho")]
        );
    }

    #[test]
    fn send_multi_records_and_replays_per_destination_fates() {
        let fault = FaultConfig::reliable()
            .with_drop_probability(0.4)
            .with_arbiter_service_time(Time::seconds(2.0))
            .with_seed(17);
        let dsts: Vec<ActorId> = (0..8).map(ActorId).collect();
        let log = Arc::new(Mutex::new(MessageLog::new()));
        let recorded;
        {
            let mut net = Network::new(fault, LogMode::record(Arc::clone(&log)));
            recorded = net.send_multi(Time::ZERO, ActorId::ARBITER, &dsts, Msg("q", 1));
            while net.pop_due(Time::INFINITY).is_some() {}
        }
        let log = Arc::new(Arc::try_unwrap(log).unwrap().into_inner());
        // A different seed cannot change replayed fates: they come from the
        // log, and the live server model is never consulted.
        let mut net = Network::new(fault.with_seed(4242), LogMode::replay(log));
        let replayed = net.send_multi(Time::ZERO, ActorId::ARBITER, &dsts, Msg("q", 1));
        assert_eq!(replayed, recorded);
        while net.pop_due(Time::INFINITY).is_some() {}
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn replay_with_diverging_traffic_panics() {
        let log = Arc::new(Mutex::new(MessageLog::new()));
        {
            let mut net = Network::new(FaultConfig::reliable(), LogMode::record(Arc::clone(&log)));
            net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("real", 1));
        }
        let log = Arc::new(Arc::try_unwrap(log).unwrap().into_inner());
        let mut net = Network::new(FaultConfig::reliable(), LogMode::replay(log));
        net.send(Time::ZERO, ActorId::ARBITER, ActorId(0), Msg("imposter", 1));
    }
}

//! The message log: a byte-exact transcript of every transport decision.
//!
//! Every send (with its fate: delivered at a time, dropped by fault
//! injection, or dropped by a partition), every delivery and every timer
//! armed by the actor runtime is appended to a [`MessageLog`]. The log has
//! a stable text serialization in which times are encoded as the hex bits
//! of their `f64` minute value, so a round trip through text is *exact* —
//! no decimal rounding.
//!
//! Replaying a log (see [`ReplayCursor`] and
//! [`LogMode::Replay`](crate::network::LogMode)) re-executes a run taking
//! every drop/latency decision from the log instead of the RNG, and
//! validates each decision against the recorded one: any divergence —
//! including a truncated or corrupted log — fails loudly with a
//! diagnostic naming the first diverging record, never silently.
//!
//! ```
//! use themis_cluster::time::Time;
//! use themis_protocol::actor::ActorId;
//! use themis_protocol::log::{LogRecord, MessageLog, SendFate};
//!
//! let mut log = MessageLog::new();
//! log.push(LogRecord::Send {
//!     seq: 0,
//!     at: Time::ZERO,
//!     src: ActorId::ARBITER,
//!     dst: ActorId(3),
//!     tag: "offer".to_string(),
//!     fate: SendFate::Deliver {
//!         at: Time::seconds(5.0),
//!     },
//! });
//! log.push(LogRecord::Deliver {
//!     seq: 0,
//!     at: Time::seconds(5.0),
//! });
//!
//! // The text form round-trips exactly, bit for bit.
//! let text = log.to_text();
//! assert_eq!(MessageLog::parse(&text).unwrap(), log);
//!
//! // A truncated log is a parse error, not a silent prefix.
//! let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
//! assert!(MessageLog::parse(&truncated).unwrap_err().to_string().contains("truncated"));
//! ```

use crate::actor::ActorId;
use std::fmt;
use themis_cluster::time::Time;

/// Magic first line of the text serialization.
const HEADER: &str = "themis-msglog v1";

/// What happened to a sent message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendFate {
    /// The message will be delivered at this (simulated) time.
    Deliver {
        /// Delivery time: send time + bandwidth transfer + delay + jitter.
        at: Time,
    },
    /// Dropped by random fault injection (the `drop_probability` axis).
    DropFault,
    /// Dropped because the link crossed an active network partition.
    DropPartition,
}

/// One transport decision.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A message was handed to the network.
    Send {
        /// Globally unique, monotonically increasing message id.
        seq: u64,
        /// Simulated time of the send.
        at: Time,
        /// Sending actor.
        src: ActorId,
        /// Receiving actor.
        dst: ActorId,
        /// Stable, whitespace-free message tag (e.g. `offer:r3`).
        tag: String,
        /// What the network decided to do with it.
        fate: SendFate,
    },
    /// A previously sent message was delivered to its destination.
    Deliver {
        /// Message id of the corresponding `Send` record.
        seq: u64,
        /// The scheduled delivery time.
        at: Time,
    },
    /// The actor runtime armed a timer.
    Timer {
        /// Simulated time the timer was armed.
        at: Time,
        /// Simulated time the timer fires.
        fire_at: Time,
        /// Stable, whitespace-free timer tag (e.g. `bid-deadline:r3`).
        tag: String,
    },
}

/// Error produced when parsing a textual message log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogParseError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "message log: {}", self.message)
        } else {
            write!(f, "message log line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for LogParseError {}

/// The append-only transcript of one distributed-mode run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageLog {
    records: Vec<LogRecord>,
}

/// Encodes a time as the hex bits of its `f64` minute value (exact).
fn time_to_hex(t: Time) -> String {
    format!("{:016x}", t.as_minutes().to_bits())
}

/// Decodes a [`time_to_hex`]-encoded time.
fn time_from_hex(s: &str) -> Option<Time> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16)
        .ok()
        .map(|bits| Time::minutes(f64::from_bits(bits)))
}

impl MessageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// The recorded decisions, in order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to the stable text form (see module docs). Times are
    /// hex-encoded `f64` bits, so `parse(to_text(log)) == log` exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("records {}\n", self.records.len()));
        for record in &self.records {
            match record {
                LogRecord::Send {
                    seq,
                    at,
                    src,
                    dst,
                    tag,
                    fate,
                } => {
                    debug_assert!(
                        !tag.contains(char::is_whitespace),
                        "message tags must be whitespace-free: {tag:?}"
                    );
                    out.push_str(&format!(
                        "send {seq} {} {src} {dst} {tag} ",
                        time_to_hex(*at)
                    ));
                    match fate {
                        SendFate::Deliver { at } => {
                            out.push_str(&format!("deliver {}", time_to_hex(*at)));
                        }
                        SendFate::DropFault => out.push_str("drop-fault"),
                        SendFate::DropPartition => out.push_str("drop-partition"),
                    }
                    out.push('\n');
                }
                LogRecord::Deliver { seq, at } => {
                    out.push_str(&format!("deliver {seq} {}\n", time_to_hex(*at)));
                }
                LogRecord::Timer { at, fire_at, tag } => {
                    debug_assert!(
                        !tag.contains(char::is_whitespace),
                        "timer tags must be whitespace-free: {tag:?}"
                    );
                    out.push_str(&format!(
                        "timer {} {} {tag}\n",
                        time_to_hex(*at),
                        time_to_hex(*fire_at)
                    ));
                }
            }
        }
        out
    }

    /// Parses the text form. Truncated logs (fewer records than the header
    /// promises), trailing garbage and corrupted lines are all rejected
    /// with a diagnostic naming the line — never silently accepted.
    pub fn parse(text: &str) -> Result<Self, LogParseError> {
        let err = |line: usize, message: String| LogParseError { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l == HEADER => {}
            Some((_, l)) => {
                return Err(err(1, format!("bad header {l:?}, expected {HEADER:?}")));
            }
            None => return Err(err(0, "empty input".to_string())),
        }
        let expected: usize = match lines.next() {
            Some((_, l)) => match l.strip_prefix("records ") {
                Some(n) => n
                    .parse()
                    .map_err(|_| err(2, format!("bad record count {n:?}")))?,
                None => return Err(err(2, format!("expected `records N`, got {l:?}"))),
            },
            None => return Err(err(0, "log truncated: missing record count".to_string())),
        };
        let mut records = Vec::with_capacity(expected);
        for (idx, line) in lines {
            let lineno = idx + 1;
            if records.len() == expected {
                return Err(err(
                    lineno,
                    format!("trailing garbage after {expected} records: {line:?}"),
                ));
            }
            let fields: Vec<&str> = line.split(' ').collect();
            let time_field = |pos: usize| {
                fields
                    .get(pos)
                    .and_then(|s| time_from_hex(s))
                    .ok_or_else(|| err(lineno, format!("bad time field in {line:?}")))
            };
            let seq_field = |pos: usize| {
                fields
                    .get(pos)
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err(lineno, format!("bad seq field in {line:?}")))
            };
            let actor_field = |pos: usize| {
                fields
                    .get(pos)
                    .and_then(|s| s.parse::<ActorId>().ok())
                    .ok_or_else(|| err(lineno, format!("bad actor field in {line:?}")))
            };
            let record = match fields.first().copied() {
                Some("send") => {
                    let fate = match fields.get(6).copied() {
                        Some("deliver") if fields.len() == 8 => {
                            SendFate::Deliver { at: time_field(7)? }
                        }
                        Some("drop-fault") if fields.len() == 7 => SendFate::DropFault,
                        Some("drop-partition") if fields.len() == 7 => SendFate::DropPartition,
                        _ => return Err(err(lineno, format!("bad send fate in {line:?}"))),
                    };
                    LogRecord::Send {
                        seq: seq_field(1)?,
                        at: time_field(2)?,
                        src: actor_field(3)?,
                        dst: actor_field(4)?,
                        tag: fields[5].to_string(),
                        fate,
                    }
                }
                Some("deliver") if fields.len() == 3 => LogRecord::Deliver {
                    seq: seq_field(1)?,
                    at: time_field(2)?,
                },
                Some("timer") if fields.len() == 4 => LogRecord::Timer {
                    at: time_field(1)?,
                    fire_at: time_field(2)?,
                    tag: fields[3].to_string(),
                },
                _ => return Err(err(lineno, format!("unrecognized record {line:?}"))),
            };
            records.push(record);
        }
        if records.len() != expected {
            return Err(err(
                0,
                format!(
                    "log truncated: header promises {expected} records, found {}",
                    records.len()
                ),
            ));
        }
        Ok(MessageLog { records })
    }
}

/// A read head over a [`MessageLog`] used by replay mode: every transport
/// decision the re-executed run makes is matched against the next record,
/// and the recorded fate is returned in place of a fresh RNG draw.
///
/// Divergence is a **panic**, by design: a replay that does not match its
/// log byte for byte is a broken invariant, not a recoverable condition.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    log: std::sync::Arc<MessageLog>,
    pos: usize,
}

impl ReplayCursor {
    /// Creates a cursor at the start of the log.
    pub fn new(log: std::sync::Arc<MessageLog>) -> Self {
        ReplayCursor { log, pos: 0 }
    }

    /// Records consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn next(&mut self, what: &str) -> &LogRecord {
        let record = self.log.records.get(self.pos).unwrap_or_else(|| {
            panic!(
                "replay log exhausted at record {}: the run performed `{what}` \
                 but the log has no more records (truncated log?)",
                self.pos
            )
        });
        self.pos += 1;
        record
    }

    /// Matches a send against the log and returns its recorded fate.
    pub fn expect_send(
        &mut self,
        seq: u64,
        at: Time,
        src: ActorId,
        dst: ActorId,
        tag: &str,
    ) -> SendFate {
        let pos = self.pos;
        let record = self.next("send").clone();
        match record {
            LogRecord::Send {
                seq: lseq,
                at: lat,
                src: lsrc,
                dst: ldst,
                tag: ltag,
                fate,
            } if lseq == seq && lat == at && lsrc == src && ldst == dst && ltag == tag => fate,
            other => panic!(
                "replay divergence at record {pos}: run sent \
                 seq={seq} at={at:?} {src}->{dst} tag={tag}, log has {other:?}"
            ),
        }
    }

    /// Matches a delivery against the log.
    pub fn expect_deliver(&mut self, seq: u64, at: Time) {
        let pos = self.pos;
        let record = self.next("deliver");
        match record {
            LogRecord::Deliver { seq: lseq, at: lat } if *lseq == seq && *lat == at => {}
            other => panic!(
                "replay divergence at record {pos}: run delivered \
                 seq={seq} at={at:?}, log has {other:?}"
            ),
        }
    }

    /// Matches an armed timer against the log.
    pub fn expect_timer(&mut self, at: Time, fire_at: Time, tag: &str) {
        let pos = self.pos;
        let record = self.next("timer");
        match record {
            LogRecord::Timer {
                at: lat,
                fire_at: lfire,
                tag: ltag,
            } if *lat == at && *lfire == fire_at && ltag == tag => {}
            other => panic!(
                "replay divergence at record {pos}: run armed timer \
                 at={at:?} fire_at={fire_at:?} tag={tag}, log has {other:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample() -> MessageLog {
        let mut log = MessageLog::new();
        log.push(LogRecord::Send {
            seq: 0,
            at: Time::minutes(1.5),
            src: ActorId::ARBITER,
            dst: ActorId(2),
            tag: "query-rho:r1".to_string(),
            fate: SendFate::Deliver {
                at: Time::minutes(1.75),
            },
        });
        log.push(LogRecord::Send {
            seq: 1,
            at: Time::minutes(1.5),
            src: ActorId::ARBITER,
            dst: ActorId(3),
            tag: "query-rho:r1".to_string(),
            fate: SendFate::DropFault,
        });
        log.push(LogRecord::Timer {
            at: Time::minutes(1.5),
            fire_at: Time::minutes(1.75),
            tag: "rho-deadline:r1".to_string(),
        });
        log.push(LogRecord::Deliver {
            seq: 0,
            at: Time::minutes(1.75),
        });
        log.push(LogRecord::Send {
            seq: 2,
            at: Time::minutes(2.0),
            src: ActorId(2),
            dst: ActorId::ARBITER,
            tag: "rho:r1".to_string(),
            fate: SendFate::DropPartition,
        });
        log
    }

    #[test]
    fn text_round_trip_is_exact() {
        let log = sample();
        let text = log.to_text();
        assert_eq!(MessageLog::parse(&text).unwrap(), log);
        // Including awkward float times that decimal formatting would lose.
        let mut odd = MessageLog::new();
        odd.push(LogRecord::Deliver {
            seq: 7,
            at: Time::minutes(0.1 + 0.2),
        });
        assert_eq!(MessageLog::parse(&odd.to_text()).unwrap(), odd);
    }

    #[test]
    fn truncated_log_is_rejected_with_diagnostic() {
        let text = sample().to_text();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        let e = MessageLog::parse(&truncated).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");
    }

    #[test]
    fn corrupted_lines_are_rejected_with_line_numbers() {
        let text = sample().to_text();
        // Flip a record line into garbage.
        let corrupted = text.replace("drop-fault", "drop-gremlin");
        let e = MessageLog::parse(&corrupted).unwrap_err();
        assert!(e.line > 0, "line-level error expected, got {e}");
        assert!(e.to_string().contains("line"), "{e}");
        // Bad header.
        assert!(MessageLog::parse("themis-msglog v9\nrecords 0\n").is_err());
        // Trailing garbage after the promised record count.
        let extra = format!("{text}deliver 9 {}\n", super::time_to_hex(Time::ZERO));
        let e = MessageLog::parse(&extra).unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        // Empty input.
        assert!(MessageLog::parse("").is_err());
    }

    #[test]
    fn replay_cursor_returns_recorded_fates() {
        let log = sample();
        let mut cursor = ReplayCursor::new(Arc::new(log));
        let fate = cursor.expect_send(
            0,
            Time::minutes(1.5),
            ActorId::ARBITER,
            ActorId(2),
            "query-rho:r1",
        );
        assert_eq!(
            fate,
            SendFate::Deliver {
                at: Time::minutes(1.75)
            }
        );
        let fate = cursor.expect_send(
            1,
            Time::minutes(1.5),
            ActorId::ARBITER,
            ActorId(3),
            "query-rho:r1",
        );
        assert_eq!(fate, SendFate::DropFault);
        cursor.expect_timer(Time::minutes(1.5), Time::minutes(1.75), "rho-deadline:r1");
        cursor.expect_deliver(0, Time::minutes(1.75));
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    #[should_panic(expected = "replay divergence at record 0")]
    fn replay_divergence_panics_loudly() {
        let mut cursor = ReplayCursor::new(Arc::new(sample()));
        let _ = cursor.expect_send(0, Time::minutes(9.9), ActorId(5), ActorId(6), "bogus");
    }

    #[test]
    #[should_panic(expected = "replay log exhausted")]
    fn replay_past_the_end_panics_loudly() {
        let mut cursor = ReplayCursor::new(Arc::new(MessageLog::new()));
        cursor.expect_deliver(0, Time::ZERO);
    }
}

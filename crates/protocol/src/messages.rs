//! Protocol messages exchanged between the Arbiter and the per-app Agents.
//!
//! The five steps of a Themis scheduling round (§3.1, Figure 3a) map to the
//! message types below:
//!
//! 1. Arbiter → all Agents: [`ArbiterToAgent::QueryRho`]
//! 2. Agents → Arbiter: [`AgentToArbiter::Rho`]
//! 3. Arbiter → worst-off 1−f Agents: [`ArbiterToAgent::Offer`]
//! 4. Agents → Arbiter: [`AgentToArbiter::Bid`]
//! 5. Arbiter → winning Agents: [`ArbiterToAgent::Win`]
//!
//! Lease expiry notifications round out the lifecycle.
//!
//! ## Coalesced (batch) messages
//!
//! Under Arbiter congestion ([`FaultConfig::arbiter_service_time`]) every
//! message pays a service-time slot at the Arbiter's inbox, so an
//! O(apps) storm of individual ρ replies or Win notices queues for
//! O(apps) service slots. The batch variants — [`AgentToArbiter::RhoBatch`],
//! [`ArbiterToAgent::OfferBatch`] and [`ArbiterToAgent::WinBatch`] — carry
//! the same payloads coalesced into one message per agent chunk, dropping
//! the per-round message count to O(batches). They are pure containers:
//! receivers unpack them into the exact per-app messages they coalesce, so
//! enabling batching changes delivery *timing*, never auction semantics.
//!
//! [`FaultConfig::arbiter_service_time`]: crate::transport::FaultConfig::arbiter_service_time

use crate::bid::BidTable;
use serde::{Deserialize, Serialize};
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::{AppId, GpuId, JobId};
use themis_cluster::time::Time;

/// A resource offer from the Arbiter: the per-machine free-GPU vector that
/// is being auctioned, together with the auction round it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfferMsg {
    /// Monotonically increasing auction round number.
    pub round: u64,
    /// Time at which the auction is run.
    pub now: Time,
    /// The free resources being auctioned.
    pub resources: FreeVector,
    /// Deadline by which the Agent must reply with a bid.
    pub reply_by: Time,
}

/// An Agent's report of its app's current finish-time fairness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RhoReport {
    /// The auction round whose [`ArbiterToAgent::QueryRho`] this answers.
    /// Lets the Arbiter discard reports that arrive after their round's bid
    /// deadline (a delayed reply must not masquerade as a current one).
    pub round: u64,
    /// The reporting app.
    pub app: AppId,
    /// Current estimate of ρ = T_sh / T_id.
    pub rho: f64,
}

/// A winning-allocation notification: concrete GPUs granted to one job of
/// the winning app, valid until the lease expires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WinNotification {
    /// Auction round this allocation was decided in.
    pub round: u64,
    /// The winning app.
    pub app: AppId,
    /// The job within the app the Arbiter assigned the GPUs to (the app's
    /// own scheduler may redistribute among its jobs).
    pub job: JobId,
    /// The concrete GPUs granted.
    pub gpus: Vec<GpuId>,
    /// Expiry time of the lease on these GPUs.
    pub lease_expires_at: Time,
}

/// Messages flowing from the Arbiter to an Agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArbiterToAgent {
    /// Step 1: ask the Agent for its app's current ρ estimate.
    QueryRho {
        /// Auction round the query belongs to.
        round: u64,
    },
    /// Step 3: offer available resources for bidding.
    Offer(OfferMsg),
    /// Step 5: notify the Agent of a winning allocation.
    Win(WinNotification),
    /// A lease held by the app has expired; the GPUs have been reclaimed.
    LeaseExpired {
        /// The GPUs that were reclaimed.
        gpus: Vec<GpuId>,
        /// When the reclamation happened.
        at: Time,
    },
    /// Step 3, coalesced: one offer addressed to a chunk of participants.
    /// Each recipient listed in `apps` treats it exactly as an
    /// [`Offer`](Self::Offer) to itself.
    OfferBatch {
        /// The shared offer (round, resources, reply-by).
        offer: OfferMsg,
        /// The participants this chunk addresses.
        apps: Vec<AppId>,
    },
    /// Step 5, coalesced: every win notification of the round bound for a
    /// chunk of winners. Each recipient applies only the entries whose
    /// `app` is its own.
    WinBatch {
        /// Auction round these allocations were decided in.
        round: u64,
        /// The coalesced win notifications, in decision order.
        wins: Vec<WinNotification>,
    },
}

/// Messages flowing from an Agent to the Arbiter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentToArbiter {
    /// Step 2: report the app's current ρ.
    Rho(RhoReport),
    /// Step 4: submit the bid table for the current offer.
    Bid {
        /// Auction round the bid responds to.
        round: u64,
        /// The valuation table.
        table: BidTable,
    },
    /// Decline to bid in this round (e.g. the app has no runnable work).
    Pass {
        /// Auction round being passed on.
        round: u64,
        /// The passing app.
        app: AppId,
    },
    /// Step 2, coalesced: the ρ reports of one agent chunk, forwarded in
    /// a single message by the chunk member that completed the set. Never
    /// sent empty.
    RhoBatch {
        /// The auction round all coalesced reports answer.
        round: u64,
        /// The chunk's reports, in app-id order.
        reports: Vec<RhoReport>,
    },
}

impl ArbiterToAgent {
    /// The auction round this message belongs to, if any.
    pub fn round(&self) -> Option<u64> {
        match self {
            ArbiterToAgent::QueryRho { round } => Some(*round),
            ArbiterToAgent::Offer(o) => Some(o.round),
            ArbiterToAgent::Win(w) => Some(w.round),
            ArbiterToAgent::LeaseExpired { .. } => None,
            ArbiterToAgent::OfferBatch { offer, .. } => Some(offer.round),
            ArbiterToAgent::WinBatch { round, .. } => Some(*round),
        }
    }
}

impl AgentToArbiter {
    /// The app that sent this message. For a [`RhoBatch`](Self::RhoBatch)
    /// (which carries several apps' reports) this is the first coalesced
    /// report's app; batches are never sent empty.
    pub fn app(&self) -> AppId {
        match self {
            AgentToArbiter::Rho(r) => r.app,
            AgentToArbiter::Bid { table, .. } => table.app,
            AgentToArbiter::Pass { app, .. } => *app,
            AgentToArbiter::RhoBatch { reports, .. } => {
                reports.first().expect("batches are never empty").app
            }
        }
    }

    /// The auction round this message belongs to.
    pub fn round(&self) -> Option<u64> {
        match self {
            AgentToArbiter::Rho(r) => Some(r.round),
            AgentToArbiter::Bid { round, .. } => Some(*round),
            AgentToArbiter::Pass { round, .. } => Some(*round),
            AgentToArbiter::RhoBatch { round, .. } => Some(*round),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::MachineId;

    #[test]
    fn rounds_are_extracted() {
        let offer = ArbiterToAgent::Offer(OfferMsg {
            round: 3,
            now: Time::minutes(10.0),
            resources: FreeVector::from_counts([(MachineId(0), 2)]),
            reply_by: Time::minutes(10.5),
        });
        assert_eq!(offer.round(), Some(3));
        assert_eq!(ArbiterToAgent::QueryRho { round: 9 }.round(), Some(9));
        assert_eq!(
            ArbiterToAgent::LeaseExpired {
                gpus: vec![GpuId(0)],
                at: Time::ZERO
            }
            .round(),
            None
        );
    }

    #[test]
    fn agent_messages_know_their_app() {
        let rho = AgentToArbiter::Rho(RhoReport {
            round: 6,
            app: AppId(4),
            rho: 2.5,
        });
        assert_eq!(rho.app(), AppId(4));
        assert_eq!(rho.round(), Some(6));

        let bid = AgentToArbiter::Bid {
            round: 1,
            table: BidTable::empty(AppId(7), 3.0),
        };
        assert_eq!(bid.app(), AppId(7));
        assert_eq!(bid.round(), Some(1));

        let pass = AgentToArbiter::Pass {
            round: 2,
            app: AppId(9),
        };
        assert_eq!(pass.app(), AppId(9));
        assert_eq!(pass.round(), Some(2));
    }

    #[test]
    fn batch_messages_know_their_round_and_app() {
        let offer = OfferMsg {
            round: 11,
            now: Time::minutes(1.0),
            resources: FreeVector::from_counts([(MachineId(0), 2)]),
            reply_by: Time::minutes(1.5),
        };
        let batch = ArbiterToAgent::OfferBatch {
            offer,
            apps: vec![AppId(0), AppId(3)],
        };
        assert_eq!(batch.round(), Some(11));

        let wins = ArbiterToAgent::WinBatch {
            round: 12,
            wins: Vec::new(),
        };
        assert_eq!(wins.round(), Some(12));

        let rhos = AgentToArbiter::RhoBatch {
            round: 13,
            reports: vec![
                RhoReport {
                    round: 13,
                    app: AppId(2),
                    rho: 1.5,
                },
                RhoReport {
                    round: 13,
                    app: AppId(5),
                    rho: 0.5,
                },
            ],
        };
        assert_eq!(rhos.round(), Some(13));
        assert_eq!(rhos.app(), AppId(2));
    }

    #[test]
    fn win_notification_round_trips_fields() {
        let win = WinNotification {
            round: 5,
            app: AppId(1),
            job: JobId(2),
            gpus: vec![GpuId(3), GpuId(4)],
            lease_expires_at: Time::minutes(60.0),
        };
        let msg = ArbiterToAgent::Win(win.clone());
        match msg {
            ArbiterToAgent::Win(w) => assert_eq!(w, win),
            _ => panic!("wrong variant"),
        }
    }
}

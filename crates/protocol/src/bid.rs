//! Bid tables.
//!
//! In response to a resource offer, each Agent prepares a single bid: a
//! valuation function `V` that maps every resource subset it is interested
//! in to the new finish-time-fairness metric ρ the app would achieve with
//! that subset (§3.1, Figure 3b; §5.1 "Inputs"). Because the resource
//! subsets are discrete, `V` is represented as a table with one row per
//! candidate subset; one row always covers the empty allocation with the
//! app's *current* ρ.

use serde::{Deserialize, Serialize};
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::AppId;

/// One row of a bid table: a candidate resource subset and the ρ the app
/// estimates it would achieve if granted that subset (in addition to the
/// GPUs it already holds) until completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidEntry {
    /// The requested subset of the offer, as per-machine GPU counts.
    pub resources: FreeVector,
    /// Estimated finish-time fairness ρ with this subset added.
    pub rho: f64,
}

impl BidEntry {
    /// The bid's *value* to the partial-allocation auction. ρ is a
    /// lower-is-better metric, so the auction maximizes `1/ρ` (see
    /// DESIGN.md, "Valuation convention"). An unbounded ρ (an app with no
    /// allocation and no prospects) has value 0.
    pub fn value(&self) -> f64 {
        if self.rho.is_finite() && self.rho > 0.0 {
            1.0 / self.rho
        } else {
            0.0
        }
    }
}

/// A complete bid from one app: its current ρ plus a valuation table over
/// candidate subsets of the offered resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidTable {
    /// The app submitting the bid.
    pub app: AppId,
    /// The app's finish-time fairness with *no* additional allocation
    /// (the table row with an all-zeros subset).
    pub current_rho: f64,
    /// Candidate subsets and their estimated ρ values.
    pub entries: Vec<BidEntry>,
}

impl BidTable {
    /// Creates a bid table with no candidate entries.
    pub fn empty(app: AppId, current_rho: f64) -> Self {
        BidTable {
            app,
            current_rho,
            entries: Vec::new(),
        }
    }

    /// Adds a candidate entry.
    pub fn push(&mut self, resources: FreeVector, rho: f64) {
        self.entries.push(BidEntry { resources, rho });
    }

    /// Number of candidate entries (excluding the implicit empty row).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table has no candidate entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value of receiving nothing (the implicit empty row).
    pub fn baseline_value(&self) -> f64 {
        BidEntry {
            resources: FreeVector::empty(),
            rho: self.current_rho,
        }
        .value()
    }

    /// The best (lowest-ρ) entry, if any.
    pub fn best_entry(&self) -> Option<&BidEntry> {
        self.entries
            .iter()
            .min_by(|a, b| a.rho.partial_cmp(&b.rho).expect("rho is never NaN"))
    }

    /// The entry exactly matching a resource subset, if present.
    pub fn entry_for(&self, resources: &FreeVector) -> Option<&BidEntry> {
        self.entries.iter().find(|e| &e.resources == resources)
    }

    /// Applies a multiplicative error to every ρ in the table (used by the
    /// paper's §8.4.3 sensitivity experiment on bid-valuation error).
    pub fn with_rho_error(mut self, relative_error: f64) -> Self {
        let factor = 1.0 + relative_error;
        self.current_rho *= factor;
        for e in &mut self.entries {
            e.rho *= factor;
        }
        self
    }

    /// Checks the paper's homogeneity assumption on one pair of entries:
    /// scaling an allocation by `k` should scale its value by `k` (i.e.
    /// divide ρ by `k`). Returns the relative deviation.
    pub fn homogeneity_deviation(small: &BidEntry, large: &BidEntry, k: f64) -> f64 {
        let expected = small.rho / k;
        if expected == 0.0 {
            return 0.0;
        }
        ((large.rho - expected) / expected).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::MachineId;

    fn fv(pairs: &[(u32, usize)]) -> FreeVector {
        FreeVector::from_counts(pairs.iter().map(|(m, c)| (MachineId(*m), *c)))
    }

    #[test]
    fn value_is_inverse_rho() {
        let e = BidEntry {
            resources: fv(&[(0, 2)]),
            rho: 4.0,
        };
        assert!((e.value() - 0.25).abs() < 1e-12);
        let unbounded = BidEntry {
            resources: FreeVector::empty(),
            rho: f64::INFINITY,
        };
        assert_eq!(unbounded.value(), 0.0);
    }

    #[test]
    fn best_entry_has_lowest_rho() {
        let mut table = BidTable::empty(AppId(1), 8.0);
        table.push(fv(&[(0, 1)]), 6.0);
        table.push(fv(&[(0, 2)]), 3.0);
        table.push(fv(&[(1, 2)]), 5.0);
        assert_eq!(table.len(), 3);
        assert_eq!(table.best_entry().unwrap().rho, 3.0);
        assert!(table.baseline_value() < table.best_entry().unwrap().value());
    }

    #[test]
    fn entry_lookup_by_resources() {
        let mut table = BidTable::empty(AppId(1), 8.0);
        table.push(fv(&[(0, 1)]), 6.0);
        assert!(table.entry_for(&fv(&[(0, 1)])).is_some());
        assert!(table.entry_for(&fv(&[(0, 2)])).is_none());
    }

    #[test]
    fn rho_error_scales_all_entries() {
        let mut table = BidTable::empty(AppId(1), 4.0);
        table.push(fv(&[(0, 1)]), 2.0);
        let noisy = table.clone().with_rho_error(0.1);
        assert!((noisy.current_rho - 4.4).abs() < 1e-12);
        assert!((noisy.entries[0].rho - 2.2).abs() < 1e-12);
        // Zero error is the identity.
        assert_eq!(table.clone().with_rho_error(0.0), table);
    }

    #[test]
    fn homogeneity_check() {
        // Doubling the allocation should halve rho.
        let small = BidEntry {
            resources: fv(&[(0, 1)]),
            rho: 6.0,
        };
        let large = BidEntry {
            resources: fv(&[(0, 2)]),
            rho: 3.0,
        };
        assert!(BidTable::homogeneity_deviation(&small, &large, 2.0) < 1e-12);
        let bad = BidEntry {
            resources: fv(&[(0, 2)]),
            rho: 5.0,
        };
        assert!(BidTable::homogeneity_deviation(&small, &bad, 2.0) > 0.5);
    }
}

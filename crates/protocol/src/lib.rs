//! # themis-protocol
//!
//! Message types and transport for the Arbiter ↔ Agent interface of the
//! Themis reproduction (NSDI 2020).
//!
//! The paper's prototype adds gRPC interfaces between the per-app **Agent**
//! (co-located with the app's hyper-parameter tuning framework) and the
//! central **Arbiter** inside the YARN resource manager (§7): the Arbiter
//! probes agents for their finish-time-fairness estimates, sends resource
//! offers to the worst-off fraction of apps, receives bid tables back, and
//! finally notifies winners of their allocations.
//!
//! This crate reproduces that interface as plain Rust types:
//!
//! * [`messages`] — the typed protocol messages (ρ query/report, offer, bid
//!   table, allocation, lease notifications), all serializable with serde,
//! * [`bid`] — the bid-table representation shared with the auction in
//!   `themis-core`,
//! * [`transport`] — a [`transport::Transport`] trait plus an in-memory
//!   duplex channel implementation with optional fault injection (message
//!   drop and delay), in the spirit of the fault-injection hooks the
//!   networking guides recommend for protocol testing,
//! * [`actor`] / [`network`] / [`log`] — the event-driven actor runtime:
//!   actor identities and deterministic timers, a causal [`network::Network`]
//!   with per-link latency/jitter/bandwidth and partition modelling, and the
//!   [`log::MessageLog`] record/replay transcript that makes every
//!   distributed run byte-reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actor;
pub mod bid;
pub mod log;
pub mod messages;
pub mod network;
pub mod transport;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::actor::{ActorId, TimerWheel};
    pub use crate::bid::{BidEntry, BidTable};
    pub use crate::log::{LogRecord, MessageLog, ReplayCursor, SendFate};
    pub use crate::messages::{
        AgentToArbiter, ArbiterToAgent, OfferMsg, RhoReport, WinNotification,
    };
    pub use crate::network::{LogMode, NetMsg, NetStats, Network};
    pub use crate::transport::{Endpoint, FaultConfig, InMemoryLink, Transport, TransportError};
}

pub use prelude::*;

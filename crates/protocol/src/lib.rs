//! # themis-protocol
//!
//! Message types and transport for the Arbiter ↔ Agent interface of the
//! Themis reproduction (NSDI 2020).
//!
//! The paper's prototype adds gRPC interfaces between the per-app **Agent**
//! (co-located with the app's hyper-parameter tuning framework) and the
//! central **Arbiter** inside the YARN resource manager (§7): the Arbiter
//! probes agents for their finish-time-fairness estimates, sends resource
//! offers to the worst-off fraction of apps, receives bid tables back, and
//! finally notifies winners of their allocations.
//!
//! This crate reproduces that interface as plain Rust types:
//!
//! * [`messages`] — the typed protocol messages (ρ query/report, offer, bid
//!   table, allocation, lease notifications), all serializable with serde,
//! * [`bid`] — the bid-table representation shared with the auction in
//!   `themis-core`,
//! * [`transport`] — a [`transport::Transport`] trait plus an in-memory
//!   duplex channel implementation with optional fault injection (message
//!   drop and delay), in the spirit of the fault-injection hooks the
//!   networking guides recommend for protocol testing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bid;
pub mod messages;
pub mod transport;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bid::{BidEntry, BidTable};
    pub use crate::messages::{
        AgentToArbiter, ArbiterToAgent, OfferMsg, RhoReport, WinNotification,
    };
    pub use crate::transport::{Endpoint, FaultConfig, InMemoryLink, Transport, TransportError};
}

pub use prelude::*;

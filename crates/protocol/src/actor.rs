//! Actor identities and the deterministic timer wheel.
//!
//! The actor runtime addresses every protocol participant — the Arbiter
//! and one Agent per app — by an [`ActorId`]. Messages between actors
//! travel through the [`Network`](crate::network::Network); local
//! deadlines (rho-report deadline, bid deadline, Win-confirmation
//! deadline) are armed on a [`TimerWheel`] and fire in deterministic
//! `(time, insertion)` order.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use themis_cluster::ids::AppId;
use themis_cluster::time::Time;

/// Identity of a protocol actor.
///
/// Agents use their app id directly; the Arbiter is the reserved id
/// [`ActorId::ARBITER`]. The `Display`/`FromStr` forms (`arb`, `n<k>`)
/// are what appears in [`MessageLog`](crate::log::MessageLog) text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The Arbiter's reserved actor id.
    pub const ARBITER: ActorId = ActorId(u32::MAX);

    /// The actor id of the Agent managing `app`.
    pub fn agent(app: AppId) -> ActorId {
        assert!(app.0 != u32::MAX, "app id {} collides with ARBITER", app.0);
        ActorId(app.0)
    }

    /// The app this Agent actor manages, or `None` for the Arbiter.
    pub fn app(self) -> Option<AppId> {
        (self != Self::ARBITER).then_some(AppId(self.0))
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::ARBITER {
            write!(f, "arb")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl FromStr for ActorId {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "arb" {
            return Ok(Self::ARBITER);
        }
        let n = s.strip_prefix('n').ok_or(())?;
        // Reject non-canonical spellings ("n007") so parse(display(x)) is
        // the only accepted form.
        let id: u32 = n.parse().map_err(|_| ())?;
        if id == u32::MAX || n != id.to_string() {
            return Err(());
        }
        Ok(ActorId(id))
    }
}

/// A deterministic set of pending timers.
///
/// Timers fire in `(fire time, insertion order)` order; `pop_due` hands
/// them out one at a time so the caller can interleave timer firings with
/// network deliveries in global time order.
#[derive(Debug, Clone, Default)]
pub struct TimerWheel<T> {
    timers: BTreeMap<(Time, u64), T>,
    next_seq: u64,
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            timers: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Arms a timer to fire at `fire_at`.
    pub fn schedule(&mut self, fire_at: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.timers.insert((fire_at, seq), item);
    }

    /// The earliest pending fire time.
    pub fn next_time(&self) -> Option<Time> {
        self.timers.keys().next().map(|(t, _)| *t)
    }

    /// Pops the earliest timer with `fire_at <= now`, if any.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, T)> {
        let key = *self.timers.keys().next().filter(|(t, _)| *t <= now)?;
        let item = self.timers.remove(&key).expect("key just observed");
        Some((key.0, item))
    }

    /// Cancels every timer for which `keep` returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.timers.retain(|_, item| keep(item));
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// `true` when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_ids_round_trip_through_display() {
        for id in [ActorId::ARBITER, ActorId(0), ActorId(42)] {
            assert_eq!(id.to_string().parse::<ActorId>(), Ok(id));
        }
        assert_eq!(ActorId::agent(AppId(7)), ActorId(7));
        assert_eq!(ActorId(7).app(), Some(AppId(7)));
        assert_eq!(ActorId::ARBITER.app(), None);
        assert!("n007".parse::<ActorId>().is_err());
        assert!("x3".parse::<ActorId>().is_err());
        assert!("n4294967295".parse::<ActorId>().is_err());
    }

    #[test]
    fn timers_fire_in_time_then_insertion_order() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(Time::minutes(2.0), "b");
        wheel.schedule(Time::minutes(1.0), "a");
        wheel.schedule(Time::minutes(2.0), "c");
        assert_eq!(wheel.next_time(), Some(Time::minutes(1.0)));
        assert_eq!(wheel.pop_due(Time::minutes(0.5)), None);
        assert_eq!(
            wheel.pop_due(Time::minutes(5.0)),
            Some((Time::minutes(1.0), "a"))
        );
        assert_eq!(
            wheel.pop_due(Time::minutes(5.0)),
            Some((Time::minutes(2.0), "b"))
        );
        assert_eq!(
            wheel.pop_due(Time::minutes(5.0)),
            Some((Time::minutes(2.0), "c"))
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn retain_cancels_matching_timers() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(Time::minutes(1.0), 1u32);
        wheel.schedule(Time::minutes(2.0), 2u32);
        wheel.schedule(Time::minutes(3.0), 1u32);
        wheel.retain(|t| *t != 1);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop_due(Time::INFINITY), Some((Time::minutes(2.0), 2)));
    }
}

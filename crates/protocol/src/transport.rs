//! In-memory transport between the Arbiter and Agents.
//!
//! The paper's prototype uses gRPC over the cluster network and reports the
//! network overhead as negligible (§8.3.2). For the reproduction the
//! interesting behaviour is the *protocol*, not the wire format, so the
//! transport here is an in-memory duplex link built on `crossbeam` channels.
//! To exercise the Arbiter's robustness (a slow or silent Agent must not
//! stall an auction), the link supports fault injection: a configurable
//! probability of dropping a message and a fixed delivery delay that the
//! receiver observes through timestamps.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use themis_cluster::time::Time;

/// Errors returned by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped; no further messages can flow.
    Disconnected,
    /// No message is currently available (non-blocking receive).
    Empty,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, possibly lossy message transport.
///
/// `S` is the type of messages sent from this endpoint, `R` the type
/// received. Receiving is non-blocking: the Arbiter polls its Agents with a
/// deadline rather than waiting forever (a silent Agent simply misses the
/// auction round).
pub trait Transport<S, R> {
    /// Sends a message, stamped with the current (simulated) time.
    fn send(&self, now: Time, msg: S) -> Result<(), TransportError>;

    /// Receives the next message that is *visible* at `now` (i.e. whose
    /// injected delivery delay has elapsed), if any.
    fn try_recv(&self, now: Time) -> Result<R, TransportError>;

    /// Drains every message visible at `now`.
    fn drain(&self, now: Time) -> Vec<R> {
        let mut out = Vec::new();
        while let Ok(msg) = self.try_recv(now) {
            out.push(msg);
        }
        out
    }
}

/// Fault-injection configuration for an [`InMemoryLink`], and — through the
/// scenario plumbing — for a whole distributed-mode scheduling run.
///
/// The link itself interprets `drop_probability`, `delay` and `seed`. The
/// crash fields describe a *process* fault rather than a link fault: they
/// are ignored by [`InMemoryLink`] and interpreted by the distributed
/// runtime (`themis_core`), which takes an Agent offline for
/// `crash_rounds` consecutive auction rounds every `crash_period` rounds.
/// The jitter / bandwidth / partition / failover fields are interpreted by
/// the actor-based [`Network`](crate::network::Network) runtime and the
/// actor scheduler built on it; the legacy [`InMemoryLink`] ignores them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a sent message is silently dropped.
    pub drop_probability: f64,
    /// Fixed delivery delay added to every message.
    pub delay: Time,
    /// RNG seed for the drop decisions (determinism for tests).
    pub seed: u64,
    /// Every `crash_period`-th auction round, one Agent (cycling through
    /// apps in id order) crashes. `0` disables crash injection.
    pub crash_period: u64,
    /// How many consecutive rounds a crashed Agent stays silent.
    pub crash_rounds: u64,
    /// Extra per-message delivery delay drawn uniformly from
    /// `[0, jitter]`. Non-zero jitter reorders messages on a link.
    pub jitter: Time,
    /// Link bandwidth in message size-units per minute. Messages serialize
    /// on a link: a message starts transfer only when the previous one on
    /// the same directed link finished. `0.0` means infinite bandwidth.
    pub bandwidth: f64,
    /// Every `partition_period`-th auction round the cluster splits: the
    /// upper half of the Agents (by app id) is cut off from the Arbiter
    /// for `partition_rounds` rounds, then the partition heals. `0`
    /// disables partitions.
    pub partition_period: u64,
    /// How many consecutive rounds a partition lasts.
    pub partition_rounds: u64,
    /// Every `failover_period`-th auction round the Arbiter crashes and a
    /// standby takes over with no memory of in-flight Wins (which are
    /// voided, never leaked). `0` disables failover injection.
    pub failover_period: u64,
    /// Per-message service time of the Arbiter process. The Arbiter's
    /// mailbox becomes an M/D/1-style queue: every message it sends or
    /// receives occupies its single server for this long, so a fan-in storm
    /// of N replies takes N service times to absorb and later replies can
    /// overshoot the round deadlines. Interpreted by the actor-based
    /// [`Network`](crate::network::Network); `Time::ZERO` disables the
    /// model entirely (observationally pure).
    pub arbiter_service_time: Time,
    /// Maximum messages coalesced per batched protocol message. When the
    /// actor scheduler opts into batching (`> 0`), broadcast fan-out and
    /// ρ-report fan-in travel as `⌈N/B⌉` batch messages instead of `N`
    /// singletons, each charging the Arbiter one service slot. `0`
    /// disables batching. The knob alone injects no fault — it only
    /// matters once `arbiter_service_time` makes messages expensive.
    pub arbiter_batch: u64,
}

/// The default is [`FaultConfig::reliable`]: no drops, zero latency, no
/// crashes — a link that delivers every message instantly, in FIFO order.
impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            delay: Time::ZERO,
            seed: 0,
            crash_period: 0,
            crash_rounds: 0,
            jitter: Time::ZERO,
            bandwidth: 0.0,
            partition_period: 0,
            partition_rounds: 0,
            failover_period: 0,
            arbiter_service_time: Time::ZERO,
            arbiter_batch: 0,
        }
    }
}

impl FaultConfig {
    /// A perfectly reliable, zero-latency link (same as `Default`).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A lossy link dropping messages with the given probability.
    pub fn lossy(drop_probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_probability));
        FaultConfig {
            drop_probability,
            seed,
            ..Self::default()
        }
    }

    /// A link with a fixed delivery delay.
    pub fn delayed(delay: Time) -> Self {
        FaultConfig {
            delay,
            ..Self::default()
        }
    }

    /// `true` when this configuration injects no fault of any kind. A
    /// crash or partition schedule needs both a period and a duration;
    /// either being zero disables it. Finite bandwidth counts as a fault:
    /// it serializes messages and so perturbs delivery times, and a
    /// non-zero Arbiter service time does the same at the Arbiter's
    /// mailbox. `arbiter_batch` alone injects nothing: coalescing only
    /// changes message granularity, never drops or delays anything.
    pub fn is_reliable(&self) -> bool {
        self.drop_probability == 0.0
            && self.delay == Time::ZERO
            && self.jitter == Time::ZERO
            && self.bandwidth == 0.0
            && self.arbiter_service_time == Time::ZERO
            && (self.crash_period == 0 || self.crash_rounds == 0)
            && (self.partition_period == 0 || self.partition_rounds == 0)
            && self.failover_period == 0
    }

    /// Sets the message-drop probability.
    ///
    /// # Panics
    /// Panics if the probability is outside `[0, 1]`.
    #[must_use]
    pub fn with_drop_probability(mut self, drop_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1]"
        );
        self.drop_probability = drop_probability;
        self
    }

    /// Sets the fixed delivery delay.
    #[must_use]
    pub fn with_delay(mut self, delay: Time) -> Self {
        assert!(delay >= Time::ZERO, "delay must be non-negative");
        self.delay = delay;
        self
    }

    /// Sets the RNG seed for the drop decisions.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables crash injection: every `period`-th round one Agent goes
    /// silent for `rounds` rounds (see the type-level docs).
    #[must_use]
    pub fn with_crash(mut self, period: u64, rounds: u64) -> Self {
        self.crash_period = period;
        self.crash_rounds = rounds;
        self
    }

    /// Sets the per-message delivery jitter (uniform in `[0, jitter]`).
    #[must_use]
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        assert!(jitter >= Time::ZERO, "jitter must be non-negative");
        self.jitter = jitter;
        self
    }

    /// Sets the link bandwidth in size-units per minute (`0.0` = infinite).
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: f64) -> Self {
        assert!(
            bandwidth >= 0.0 && bandwidth.is_finite(),
            "bandwidth must be finite and non-negative"
        );
        self.bandwidth = bandwidth;
        self
    }

    /// Enables partition injection: every `period`-th round the upper half
    /// of the Agents is cut off from the Arbiter for `rounds` rounds.
    #[must_use]
    pub fn with_partition(mut self, period: u64, rounds: u64) -> Self {
        self.partition_period = period;
        self.partition_rounds = rounds;
        self
    }

    /// Enables Arbiter failover injection every `period`-th round.
    #[must_use]
    pub fn with_failover(mut self, period: u64) -> Self {
        self.failover_period = period;
        self
    }

    /// Sets the Arbiter's per-message service time (`Time::ZERO` disables
    /// the mailbox-queue model).
    #[must_use]
    pub fn with_arbiter_service_time(mut self, service_time: Time) -> Self {
        assert!(
            service_time >= Time::ZERO,
            "arbiter service time must be non-negative"
        );
        self.arbiter_service_time = service_time;
        self
    }

    /// Sets the maximum messages per batched protocol message (`0`
    /// disables batching).
    #[must_use]
    pub fn with_arbiter_batch(mut self, batch: u64) -> Self {
        self.arbiter_batch = batch;
        self
    }
}

/// Statistics collected by a link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages silently dropped by fault injection.
    pub dropped: u64,
    /// Messages actually received by the peer.
    pub received: u64,
}

struct Queue<T> {
    messages: Vec<(Time, T)>,
    rng: SmallRng,
    config: FaultConfig,
    stats: LinkStats,
    open: bool,
}

/// One endpoint of an in-memory duplex link.
///
/// Endpoint `A` sends `SA` and receives `SB`; endpoint `B` is the mirror
/// image. Create a pair with [`InMemoryLink::pair`].
pub struct Endpoint<S, R> {
    tx: Arc<Mutex<Queue<S>>>,
    rx: Arc<Mutex<Queue<R>>>,
}

impl<S, R> fmt::Debug for Endpoint<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint").finish_non_exhaustive()
    }
}

impl<S, R> Endpoint<S, R> {
    /// Statistics for the sending direction of this endpoint.
    pub fn send_stats(&self) -> LinkStats {
        self.tx.lock().stats
    }

    /// Statistics for the receiving direction of this endpoint.
    pub fn recv_stats(&self) -> LinkStats {
        self.rx.lock().stats
    }

    /// Closes the endpoint: the peer will observe `Disconnected`.
    pub fn close(&self) {
        self.tx.lock().open = false;
        self.rx.lock().open = false;
    }
}

impl<S, R> Transport<S, R> for Endpoint<S, R> {
    fn send(&self, now: Time, msg: S) -> Result<(), TransportError> {
        let mut q = self.tx.lock();
        if !q.open {
            return Err(TransportError::Disconnected);
        }
        let drop_probability = q.config.drop_probability;
        let dropped = drop_probability > 0.0 && q.rng.gen::<f64>() < drop_probability;
        if dropped {
            q.stats.dropped += 1;
            return Ok(());
        }
        q.stats.sent += 1;
        let deliver_at = now + q.config.delay;
        q.messages.push((deliver_at, msg));
        Ok(())
    }

    fn try_recv(&self, now: Time) -> Result<R, TransportError> {
        let mut q = self.rx.lock();
        let idx = q
            .messages
            .iter()
            .position(|(deliver_at, _)| *deliver_at <= now);
        match idx {
            Some(i) => {
                let (_, msg) = q.messages.remove(i);
                q.stats.received += 1;
                Ok(msg)
            }
            None => {
                // A closed link still owes the receiver its in-flight
                // (delayed) messages: report `Empty` until the queue is
                // actually drained, and only then `Disconnected`. Without
                // the emptiness check a peer that dropped right after
                // sending would make those messages unreachable.
                if q.open || !q.messages.is_empty() {
                    Err(TransportError::Empty)
                } else {
                    Err(TransportError::Disconnected)
                }
            }
        }
    }
}

/// Factory for in-memory duplex links.
pub struct InMemoryLink;

impl InMemoryLink {
    /// Creates a connected pair of endpoints.
    ///
    /// `a_to_b` configures faults on messages sent by the first endpoint,
    /// `b_to_a` on messages sent by the second.
    pub fn pair<SA, SB>(
        a_to_b: FaultConfig,
        b_to_a: FaultConfig,
    ) -> (Endpoint<SA, SB>, Endpoint<SB, SA>) {
        let ab = Arc::new(Mutex::new(Queue {
            messages: Vec::new(),
            rng: SmallRng::seed_from_u64(a_to_b.seed),
            config: a_to_b,
            stats: LinkStats::default(),
            open: true,
        }));
        let ba = Arc::new(Mutex::new(Queue {
            messages: Vec::new(),
            rng: SmallRng::seed_from_u64(b_to_a.seed),
            config: b_to_a,
            stats: LinkStats::default(),
            open: true,
        }));
        (
            Endpoint {
                tx: Arc::clone(&ab),
                rx: Arc::clone(&ba),
            },
            Endpoint { tx: ba, rx: ab },
        )
    }

    /// Creates a reliable, zero-latency pair.
    pub fn reliable_pair<SA, SB>() -> (Endpoint<SA, SB>, Endpoint<SB, SA>) {
        Self::pair(FaultConfig::reliable(), FaultConfig::reliable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_both_ways() {
        let (arbiter, agent) = InMemoryLink::reliable_pair::<&'static str, u32>();
        arbiter.send(Time::ZERO, "offer").unwrap();
        assert_eq!(agent.try_recv(Time::ZERO).unwrap(), "offer");
        agent.send(Time::ZERO, 42u32).unwrap();
        assert_eq!(arbiter.try_recv(Time::ZERO).unwrap(), 42);
        assert_eq!(arbiter.try_recv(Time::ZERO), Err(TransportError::Empty));
    }

    #[test]
    fn delay_holds_messages_until_due() {
        let (a, b) = InMemoryLink::pair::<u32, u32>(
            FaultConfig::delayed(Time::minutes(5.0)),
            FaultConfig::reliable(),
        );
        a.send(Time::minutes(10.0), 1).unwrap();
        assert_eq!(b.try_recv(Time::minutes(12.0)), Err(TransportError::Empty));
        assert_eq!(b.try_recv(Time::minutes(15.0)).unwrap(), 1);
    }

    #[test]
    fn lossy_link_drops_some_messages() {
        let (a, b) =
            InMemoryLink::pair::<u32, u32>(FaultConfig::lossy(0.5, 7), FaultConfig::reliable());
        for i in 0..1000 {
            a.send(Time::ZERO, i).unwrap();
        }
        let received = b.drain(Time::ZERO).len() as u64;
        let stats = a.send_stats();
        assert_eq!(stats.sent + stats.dropped, 1000);
        assert_eq!(stats.sent, received);
        assert!(
            stats.dropped > 300 && stats.dropped < 700,
            "dropped {}",
            stats.dropped
        );
    }

    #[test]
    fn drain_preserves_order() {
        let (a, b) = InMemoryLink::reliable_pair::<u32, u32>();
        for i in 0..5 {
            a.send(Time::ZERO, i).unwrap();
        }
        assert_eq!(b.drain(Time::ZERO), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.recv_stats().received, 5);
    }

    #[test]
    fn closed_endpoint_disconnects_peer() {
        let (a, b) = InMemoryLink::reliable_pair::<u32, u32>();
        a.send(Time::ZERO, 1).unwrap();
        a.close();
        // Messages already in flight are still delivered…
        assert_eq!(b.try_recv(Time::ZERO).unwrap(), 1);
        // …then the peer observes the disconnect.
        assert_eq!(b.try_recv(Time::ZERO), Err(TransportError::Disconnected));
        assert_eq!(a.send(Time::ZERO, 2), Err(TransportError::Disconnected));
    }

    #[test]
    fn zero_drop_probability_is_lossless_fifo() {
        let (a, b) = InMemoryLink::pair::<u32, u32>(
            FaultConfig::reliable().with_seed(99),
            FaultConfig::reliable(),
        );
        for i in 0..100 {
            a.send(Time::minutes(i as f64), i).unwrap();
        }
        let received = b.drain(Time::minutes(1000.0));
        assert_eq!(received, (0..100).collect::<Vec<u32>>(), "lossless FIFO");
        assert_eq!(a.send_stats().dropped, 0);
        assert_eq!(b.recv_stats().received, 100);
    }

    #[test]
    fn drop_probability_one_delivers_nothing() {
        let (a, b) =
            InMemoryLink::pair::<u32, u32>(FaultConfig::lossy(1.0, 3), FaultConfig::reliable());
        for i in 0..50 {
            a.send(Time::ZERO, i).unwrap();
        }
        assert!(b.drain(Time::INFINITY).is_empty());
        let stats = a.send_stats();
        assert_eq!(stats.dropped, 50);
        assert_eq!(stats.sent, 0);
    }

    #[test]
    fn delayed_message_is_invisible_before_now_plus_delay() {
        let delay = Time::minutes(3.0);
        let (a, b) =
            InMemoryLink::pair::<u32, u32>(FaultConfig::delayed(delay), FaultConfig::reliable());
        let sent_at = Time::minutes(7.0);
        a.send(sent_at, 42).unwrap();
        // Invisible strictly before `sent_at + delay`…
        assert_eq!(
            b.try_recv(sent_at + delay - Time::seconds(1.0)),
            Err(TransportError::Empty)
        );
        // …and visible exactly at the deadline.
        assert_eq!(b.try_recv(sent_at + delay).unwrap(), 42);
    }

    #[test]
    fn builder_constructors_compose() {
        let fault = FaultConfig::reliable()
            .with_drop_probability(0.25)
            .with_delay(Time::seconds(10.0))
            .with_seed(7)
            .with_crash(4, 2);
        assert_eq!(fault.drop_probability, 0.25);
        assert_eq!(fault.delay, Time::seconds(10.0));
        assert_eq!(fault.seed, 7);
        assert_eq!((fault.crash_period, fault.crash_rounds), (4, 2));
        assert!(!fault.is_reliable());
        assert!(FaultConfig::default().is_reliable());
        // Seed alone does not make a link faulty.
        assert!(FaultConfig::reliable().with_seed(5).is_reliable());
        // A degenerate crash schedule (zero period or zero duration)
        // injects nothing and is therefore still reliable.
        assert!(FaultConfig::reliable().with_crash(5, 0).is_reliable());
        assert!(FaultConfig::reliable().with_crash(0, 3).is_reliable());
    }

    #[test]
    fn actor_fault_builders_compose() {
        let fault = FaultConfig::reliable()
            .with_jitter(Time::seconds(6.0))
            .with_bandwidth(120.0)
            .with_partition(4, 2)
            .with_failover(6);
        assert_eq!(fault.jitter, Time::seconds(6.0));
        assert_eq!(fault.bandwidth, 120.0);
        assert_eq!((fault.partition_period, fault.partition_rounds), (4, 2));
        assert_eq!(fault.failover_period, 6);
        assert!(!fault.is_reliable());
        // Each axis alone already makes the config faulty…
        assert!(!FaultConfig::reliable()
            .with_jitter(Time::seconds(1.0))
            .is_reliable());
        assert!(!FaultConfig::reliable().with_bandwidth(10.0).is_reliable());
        assert!(!FaultConfig::reliable().with_partition(3, 1).is_reliable());
        assert!(!FaultConfig::reliable().with_failover(5).is_reliable());
        // …but a degenerate partition schedule injects nothing.
        assert!(FaultConfig::reliable().with_partition(3, 0).is_reliable());
        assert!(FaultConfig::reliable().with_partition(0, 2).is_reliable());
    }

    #[test]
    fn arbiter_backpressure_builders_compose() {
        let fault = FaultConfig::reliable()
            .with_arbiter_service_time(Time::seconds(0.5))
            .with_arbiter_batch(16);
        assert_eq!(fault.arbiter_service_time, Time::seconds(0.5));
        assert_eq!(fault.arbiter_batch, 16);
        // A congested Arbiter perturbs delivery times, so it is a fault…
        assert!(!fault.is_reliable());
        assert!(!FaultConfig::reliable()
            .with_arbiter_service_time(Time::seconds(0.1))
            .is_reliable());
        // …but batching alone only changes message granularity.
        assert!(FaultConfig::reliable().with_arbiter_batch(8).is_reliable());
    }

    #[test]
    fn closed_endpoint_drains_delayed_messages_before_disconnecting() {
        // The peer sends two delayed messages, then goes away. The receiver
        // must still observe both once their delays elapse — "nothing
        // visible *yet*" is `Empty`, not `Disconnected`, while in-flight
        // messages remain queued.
        let (a, b) = InMemoryLink::pair::<u32, u32>(
            FaultConfig::delayed(Time::minutes(5.0)),
            FaultConfig::reliable(),
        );
        a.send(Time::ZERO, 1).unwrap();
        a.send(Time::minutes(1.0), 2).unwrap();
        a.close();
        // Before the first delay elapses: empty, NOT disconnected.
        assert_eq!(b.try_recv(Time::minutes(2.0)), Err(TransportError::Empty));
        // The first message becomes visible; the second is still in flight.
        assert_eq!(b.try_recv(Time::minutes(5.0)).unwrap(), 1);
        assert_eq!(b.try_recv(Time::minutes(5.0)), Err(TransportError::Empty));
        // Drain the second, and only then report the disconnect.
        assert_eq!(b.try_recv(Time::minutes(6.0)).unwrap(), 2);
        assert_eq!(
            b.try_recv(Time::minutes(6.0)),
            Err(TransportError::Disconnected)
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn out_of_range_drop_probability_rejected() {
        let _ = FaultConfig::reliable().with_drop_probability(1.5);
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed| {
            let (a, b) = InMemoryLink::pair::<u32, u32>(
                FaultConfig::lossy(0.3, seed),
                FaultConfig::reliable(),
            );
            for i in 0..100 {
                a.send(Time::ZERO, i).unwrap();
            }
            b.drain(Time::ZERO)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}

//! In-memory transport between the Arbiter and Agents.
//!
//! The paper's prototype uses gRPC over the cluster network and reports the
//! network overhead as negligible (§8.3.2). For the reproduction the
//! interesting behaviour is the *protocol*, not the wire format, so the
//! transport here is an in-memory duplex link built on `crossbeam` channels.
//! To exercise the Arbiter's robustness (a slow or silent Agent must not
//! stall an auction), the link supports fault injection: a configurable
//! probability of dropping a message and a fixed delivery delay that the
//! receiver observes through timestamps.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use themis_cluster::time::Time;

/// Errors returned by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped; no further messages can flow.
    Disconnected,
    /// No message is currently available (non-blocking receive).
    Empty,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, possibly lossy message transport.
///
/// `S` is the type of messages sent from this endpoint, `R` the type
/// received. Receiving is non-blocking: the Arbiter polls its Agents with a
/// deadline rather than waiting forever (a silent Agent simply misses the
/// auction round).
pub trait Transport<S, R> {
    /// Sends a message, stamped with the current (simulated) time.
    fn send(&self, now: Time, msg: S) -> Result<(), TransportError>;

    /// Receives the next message that is *visible* at `now` (i.e. whose
    /// injected delivery delay has elapsed), if any.
    fn try_recv(&self, now: Time) -> Result<R, TransportError>;

    /// Drains every message visible at `now`.
    fn drain(&self, now: Time) -> Vec<R> {
        let mut out = Vec::new();
        while let Ok(msg) = self.try_recv(now) {
            out.push(msg);
        }
        out
    }
}

/// Fault-injection configuration for an [`InMemoryLink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a sent message is silently dropped.
    pub drop_probability: f64,
    /// Fixed delivery delay added to every message.
    pub delay: Time,
    /// RNG seed for the drop decisions (determinism for tests).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            delay: Time::ZERO,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A perfectly reliable, zero-latency link.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A lossy link dropping messages with the given probability.
    pub fn lossy(drop_probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_probability));
        FaultConfig {
            drop_probability,
            delay: Time::ZERO,
            seed,
        }
    }

    /// A link with a fixed delivery delay.
    pub fn delayed(delay: Time) -> Self {
        FaultConfig {
            drop_probability: 0.0,
            delay,
            seed: 0,
        }
    }
}

/// Statistics collected by a link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages silently dropped by fault injection.
    pub dropped: u64,
    /// Messages actually received by the peer.
    pub received: u64,
}

struct Queue<T> {
    messages: Vec<(Time, T)>,
    rng: SmallRng,
    config: FaultConfig,
    stats: LinkStats,
    open: bool,
}

/// One endpoint of an in-memory duplex link.
///
/// Endpoint `A` sends `SA` and receives `SB`; endpoint `B` is the mirror
/// image. Create a pair with [`InMemoryLink::pair`].
pub struct Endpoint<S, R> {
    tx: Arc<Mutex<Queue<S>>>,
    rx: Arc<Mutex<Queue<R>>>,
}

impl<S, R> fmt::Debug for Endpoint<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint").finish_non_exhaustive()
    }
}

impl<S, R> Endpoint<S, R> {
    /// Statistics for the sending direction of this endpoint.
    pub fn send_stats(&self) -> LinkStats {
        self.tx.lock().stats
    }

    /// Statistics for the receiving direction of this endpoint.
    pub fn recv_stats(&self) -> LinkStats {
        self.rx.lock().stats
    }

    /// Closes the endpoint: the peer will observe `Disconnected`.
    pub fn close(&self) {
        self.tx.lock().open = false;
        self.rx.lock().open = false;
    }
}

impl<S, R> Transport<S, R> for Endpoint<S, R> {
    fn send(&self, now: Time, msg: S) -> Result<(), TransportError> {
        let mut q = self.tx.lock();
        if !q.open {
            return Err(TransportError::Disconnected);
        }
        let drop_probability = q.config.drop_probability;
        let dropped = drop_probability > 0.0 && q.rng.gen::<f64>() < drop_probability;
        if dropped {
            q.stats.dropped += 1;
            return Ok(());
        }
        q.stats.sent += 1;
        let deliver_at = now + q.config.delay;
        q.messages.push((deliver_at, msg));
        Ok(())
    }

    fn try_recv(&self, now: Time) -> Result<R, TransportError> {
        let mut q = self.rx.lock();
        let idx = q
            .messages
            .iter()
            .position(|(deliver_at, _)| *deliver_at <= now);
        match idx {
            Some(i) => {
                let (_, msg) = q.messages.remove(i);
                q.stats.received += 1;
                Ok(msg)
            }
            None => {
                if q.open {
                    Err(TransportError::Empty)
                } else {
                    Err(TransportError::Disconnected)
                }
            }
        }
    }
}

/// Factory for in-memory duplex links.
pub struct InMemoryLink;

impl InMemoryLink {
    /// Creates a connected pair of endpoints.
    ///
    /// `a_to_b` configures faults on messages sent by the first endpoint,
    /// `b_to_a` on messages sent by the second.
    pub fn pair<SA, SB>(
        a_to_b: FaultConfig,
        b_to_a: FaultConfig,
    ) -> (Endpoint<SA, SB>, Endpoint<SB, SA>) {
        let ab = Arc::new(Mutex::new(Queue {
            messages: Vec::new(),
            rng: SmallRng::seed_from_u64(a_to_b.seed),
            config: a_to_b,
            stats: LinkStats::default(),
            open: true,
        }));
        let ba = Arc::new(Mutex::new(Queue {
            messages: Vec::new(),
            rng: SmallRng::seed_from_u64(b_to_a.seed),
            config: b_to_a,
            stats: LinkStats::default(),
            open: true,
        }));
        (
            Endpoint {
                tx: Arc::clone(&ab),
                rx: Arc::clone(&ba),
            },
            Endpoint { tx: ba, rx: ab },
        )
    }

    /// Creates a reliable, zero-latency pair.
    pub fn reliable_pair<SA, SB>() -> (Endpoint<SA, SB>, Endpoint<SB, SA>) {
        Self::pair(FaultConfig::reliable(), FaultConfig::reliable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_both_ways() {
        let (arbiter, agent) = InMemoryLink::reliable_pair::<&'static str, u32>();
        arbiter.send(Time::ZERO, "offer").unwrap();
        assert_eq!(agent.try_recv(Time::ZERO).unwrap(), "offer");
        agent.send(Time::ZERO, 42u32).unwrap();
        assert_eq!(arbiter.try_recv(Time::ZERO).unwrap(), 42);
        assert_eq!(arbiter.try_recv(Time::ZERO), Err(TransportError::Empty));
    }

    #[test]
    fn delay_holds_messages_until_due() {
        let (a, b) = InMemoryLink::pair::<u32, u32>(
            FaultConfig::delayed(Time::minutes(5.0)),
            FaultConfig::reliable(),
        );
        a.send(Time::minutes(10.0), 1).unwrap();
        assert_eq!(b.try_recv(Time::minutes(12.0)), Err(TransportError::Empty));
        assert_eq!(b.try_recv(Time::minutes(15.0)).unwrap(), 1);
    }

    #[test]
    fn lossy_link_drops_some_messages() {
        let (a, b) =
            InMemoryLink::pair::<u32, u32>(FaultConfig::lossy(0.5, 7), FaultConfig::reliable());
        for i in 0..1000 {
            a.send(Time::ZERO, i).unwrap();
        }
        let received = b.drain(Time::ZERO).len() as u64;
        let stats = a.send_stats();
        assert_eq!(stats.sent + stats.dropped, 1000);
        assert_eq!(stats.sent, received);
        assert!(
            stats.dropped > 300 && stats.dropped < 700,
            "dropped {}",
            stats.dropped
        );
    }

    #[test]
    fn drain_preserves_order() {
        let (a, b) = InMemoryLink::reliable_pair::<u32, u32>();
        for i in 0..5 {
            a.send(Time::ZERO, i).unwrap();
        }
        assert_eq!(b.drain(Time::ZERO), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.recv_stats().received, 5);
    }

    #[test]
    fn closed_endpoint_disconnects_peer() {
        let (a, b) = InMemoryLink::reliable_pair::<u32, u32>();
        a.send(Time::ZERO, 1).unwrap();
        a.close();
        // Messages already in flight are still delivered…
        assert_eq!(b.try_recv(Time::ZERO).unwrap(), 1);
        // …then the peer observes the disconnect.
        assert_eq!(b.try_recv(Time::ZERO), Err(TransportError::Disconnected));
        assert_eq!(a.send(Time::ZERO, 2), Err(TransportError::Disconnected));
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed| {
            let (a, b) = InMemoryLink::pair::<u32, u32>(
                FaultConfig::lossy(0.3, seed),
                FaultConfig::reliable(),
            );
            for i in 0..100 {
                a.send(Time::ZERO, i).unwrap();
            }
            b.drain(Time::ZERO)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}

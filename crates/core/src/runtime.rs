//! The legacy *instant-round* distributed-mode Themis: the full §3.1
//! auction round over the fault-injecting transport, resolved at one
//! engine instant.
//!
//! This is the predecessor of the event-driven
//! [`actors::DistributedThemisScheduler`](crate::actors) runtime, kept as
//! `themis-dist-instant` both as a baseline and as a cross-check: under
//! zero-latency reliable links the two paths must agree decision-for-
//! decision (pinned in `tests/dist_equivalence.rs`). Unlike the actor
//! runtime, rounds here cannot overlap in simulated time and the
//! partition / jitter / bandwidth / failover fault axes are not
//! expressible.
//!
//! [`ThemisScheduler`](crate::scheduler::ThemisScheduler) calls the Arbiter
//! and the per-app Agents as plain Rust objects. This module instead runs
//! every scheduling round as the paper's five-step message exchange
//! (§3.1, Figure 3a; §7) through [`themis_protocol::transport`] endpoints —
//! one duplex [`InMemoryLink`] per app Agent:
//!
//! 1. Arbiter → all Agents: `QueryRho { round }`
//! 2. Agents → Arbiter: `Rho(RhoReport)`
//! 3. Arbiter → worst-off `1 − f` Agents: `Offer(OfferMsg)`
//! 4. Agents → Arbiter: `Bid { round, table }` (or `Pass`)
//! 5. Arbiter → winning Agents: `Win(WinNotification)`
//!
//! plus `LeaseExpired` notifications for GPUs reclaimed between rounds.
//!
//! Every round has a **bid deadline**: the Arbiter collects replies that
//! are visible by `round start + bid_deadline` and runs the auction over
//! whatever arrived. A dropped or over-delayed message therefore makes its
//! Agent *miss the round* — it is simply queried again next round — rather
//! than wedging the engine, which is the paper's robustness requirement
//! for a slow or silent Agent. A `Win` notification that is lost in
//! transit voids the grant: the GPUs stay free and are re-auctioned, so no
//! GPU is ever leased to an app that never learned about it.
//!
//! Time model: a round executes at one engine instant `now`. Each message
//! exchange is stamped at `now`; the per-link delivery delay pushes
//! visibility forward, Agents react at `now + delay`, and the Arbiter
//! drains at the deadline. A request/reply exchange therefore completes
//! iff `2 × delay ≤ bid_deadline` (and neither direction dropped the
//! message).
//!
//! With [`FaultConfig::reliable`] the message flow is lossless and
//! instantaneous, and the scheduler reproduces the in-process
//! `ThemisScheduler`'s decisions — and hence its `SimReport` — exactly;
//! `tests/dist_equivalence.rs` pins that equivalence over the full smoke
//! matrix.

use crate::agent::Agent;
use crate::arbiter::{AppStatus, Arbiter};
use crate::config::ThemisConfig;
use crate::scheduler::materialize_grant;
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, GpuId, JobId};
use themis_cluster::time::Time;
use themis_protocol::bid::BidTable;
use themis_protocol::messages::{
    AgentToArbiter, ArbiterToAgent, OfferMsg, RhoReport, WinNotification,
};
use themis_protocol::transport::{Endpoint, FaultConfig, InMemoryLink, Transport};
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{AllocationDecision, ControlPlaneStats, Scheduler};

/// Counters describing how the message flow fared across rounds. Purely
/// observational — used by tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Rounds attempted (a round with an empty offer is not attempted).
    pub rounds: u64,
    /// Rounds in which every queried agent's ρ report arrived in time (a
    /// round with nobody to query counts as complete). `rounds −
    /// completed_rounds` is the missed-round count the storm matrix
    /// reports.
    pub completed_rounds: u64,
    /// ρ queries whose report never arrived by the bid deadline.
    pub missed_rho_reports: u64,
    /// Offers whose bid (or pass) never arrived by the bid deadline.
    pub missed_bids: u64,
    /// Win notifications lost in transit; their grants were voided.
    pub voided_wins: u64,
    /// Messages discarded because they belonged to an earlier round.
    pub stale_messages: u64,
    /// Agent-rounds spent crashed.
    pub crashed_agent_rounds: u64,
    /// Arbiter failovers (actor runtime only): the standby Arbiter took
    /// over, voiding every in-flight Win notification.
    pub failovers: u64,
}

impl DistStats {
    /// The subset of counters reported to the engine as
    /// [`ControlPlaneStats`].
    pub fn control(&self) -> ControlPlaneStats {
        ControlPlaneStats {
            rounds: self.rounds,
            completed_rounds: self.completed_rounds,
            missed_rho_reports: self.missed_rho_reports,
            missed_bids: self.missed_bids,
            voided_wins: self.voided_wins,
        }
    }
}

/// The Agent process: reacts to Arbiter messages arriving on its endpoint.
struct AgentNode {
    agent: Agent,
    endpoint: Endpoint<AgentToArbiter, ArbiterToAgent>,
    /// The node is offline through the end of round `crashed_until - 1`.
    crashed_until: u64,
    /// Win notifications received this round (drained by the arbiter loop
    /// to learn which grants were actually delivered).
    delivered_wins: Vec<WinNotification>,
    /// Lease-expiry notices observed over the node's lifetime.
    lease_notices: u64,
    /// Stale (earlier-round) messages the node discarded.
    stale: u64,
}

impl AgentNode {
    /// Drains every message visible at `now` and reacts: answer the
    /// current round's ρ query, bid on (or pass) the current round's
    /// offer, and record Win / LeaseExpired notifications.
    fn poll(&mut self, now: Time, round: u64, runtime: &AppRuntime, cluster: &Cluster) {
        let app = self.agent.app;
        for msg in self.endpoint.drain(now) {
            match msg {
                ArbiterToAgent::QueryRho { round: r } if r == round => {
                    let rho = self.agent.current_rho(now, runtime, cluster).rho;
                    let _ = self
                        .endpoint
                        .send(now, AgentToArbiter::Rho(RhoReport { round, app, rho }));
                }
                ArbiterToAgent::Offer(offer) if offer.round == round => {
                    let table = self
                        .agent
                        .prepare_bid(now, runtime, cluster, &offer.resources);
                    let reply = if table.is_empty() {
                        AgentToArbiter::Pass { round, app }
                    } else {
                        AgentToArbiter::Bid { round, table }
                    };
                    let _ = self.endpoint.send(now, reply);
                }
                ArbiterToAgent::Win(win) if win.round == round => {
                    self.delivered_wins.push(win);
                }
                ArbiterToAgent::LeaseExpired { .. } => {
                    self.lease_notices += 1;
                }
                // A query, offer or win from a round whose deadline has
                // passed: the auction it belonged to is over, so reacting
                // would only inject confusion. Count and drop. (The batch
                // variants are actor-runtime-only; this instant path never
                // sends them, so they can only be stale.)
                ArbiterToAgent::QueryRho { .. }
                | ArbiterToAgent::Offer(_)
                | ArbiterToAgent::Win(_)
                | ArbiterToAgent::OfferBatch { .. }
                | ArbiterToAgent::WinBatch { .. } => {
                    self.stale += 1;
                }
            }
        }
    }
}

/// The Themis cross-app scheduler running each auction round as a message
/// exchange over fault-injecting transport (see the module docs).
pub struct InstantDistributedScheduler {
    config: ThemisConfig,
    fault: FaultConfig,
    bid_deadline: Time,
    arbiter: Arbiter,
    round: u64,
    nodes: BTreeMap<AppId, AgentNode>,
    /// Arbiter-side endpoint of each app's duplex link.
    links: BTreeMap<AppId, Endpoint<ArbiterToAgent, AgentToArbiter>>,
    /// Per-app GPU sets as last observed, for LeaseExpired notifications.
    observed_gpus: BTreeMap<AppId, BTreeSet<GpuId>>,
    stats: DistStats,
}

impl std::fmt::Debug for InstantDistributedScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstantDistributedScheduler")
            .field("config", &self.config)
            .field("fault", &self.fault)
            .field("round", &self.round)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl InstantDistributedScheduler {
    /// Creates a distributed-mode scheduler with the given Themis tunables
    /// and per-link fault injection. `FaultConfig::reliable()` reproduces
    /// the in-process [`ThemisScheduler`](crate::scheduler::ThemisScheduler)
    /// exactly.
    pub fn new(config: ThemisConfig, fault: FaultConfig) -> Self {
        InstantDistributedScheduler {
            arbiter: Arbiter::new(config),
            fault,
            bid_deadline: Time::seconds(30.0),
            round: 0,
            nodes: BTreeMap::new(),
            links: BTreeMap::new(),
            observed_gpus: BTreeMap::new(),
            stats: DistStats::default(),
            config,
        }
    }

    /// Overrides the per-round bid deadline (default 30 s, matching the
    /// Arbiter's offer `reply_by`).
    #[must_use]
    pub fn with_bid_deadline(mut self, deadline: Time) -> Self {
        assert!(deadline > Time::ZERO, "bid deadline must be positive");
        self.bid_deadline = deadline;
        self
    }

    /// The Themis configuration in use.
    pub fn config(&self) -> &ThemisConfig {
        &self.config
    }

    /// The fault injection applied to every Agent link.
    pub fn fault(&self) -> &FaultConfig {
        &self.fault
    }

    /// Message-flow counters accumulated so far.
    pub fn stats(&self) -> &DistStats {
        &self.stats
    }

    /// Rounds attempted so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Per-direction link fault config: same drop/delay knobs, but a
    /// distinct RNG stream per app and direction so drops decorrelate.
    fn link_fault(&self, app: AppId, direction: u64) -> FaultConfig {
        let mix = self
            .fault
            .seed
            .wrapping_add(u64::from(app.0).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(direction);
        self.fault.with_seed(mix)
    }

    /// Lazily connects an Agent node for `app`.
    fn ensure_node(&mut self, app: AppId) {
        if self.nodes.contains_key(&app) {
            return;
        }
        let (arbiter_end, agent_end) = InMemoryLink::pair::<ArbiterToAgent, AgentToArbiter>(
            self.link_fault(app, 0),
            self.link_fault(app, 1),
        );
        self.links.insert(app, arbiter_end);
        self.nodes.insert(
            app,
            AgentNode {
                agent: Agent::new(app, &self.config),
                endpoint: agent_end,
                crashed_until: 0,
                delivered_wins: Vec::new(),
                lease_notices: 0,
                stale: 0,
            },
        );
    }

    /// Crash injection: every `crash_period`-th round, the next node in
    /// app-id order goes offline for `crash_rounds` rounds.
    fn apply_crash_schedule(&mut self, round: u64) {
        if self.fault.crash_period == 0 || self.fault.crash_rounds == 0 || self.nodes.is_empty() {
            return;
        }
        if round.is_multiple_of(self.fault.crash_period) {
            let victim_idx = (round / self.fault.crash_period) as usize % self.nodes.len();
            let victim = *self.nodes.keys().nth(victim_idx).expect("index in range");
            let node = self.nodes.get_mut(&victim).expect("node exists");
            node.crashed_until = node.crashed_until.max(round + self.fault.crash_rounds);
        }
        self.stats.crashed_agent_rounds += self
            .nodes
            .values()
            .filter(|n| n.crashed_until > round)
            .count() as u64;
    }

    /// Notifies Agents of GPUs they lost since the previous round (lease
    /// expiry, job completion or HPO kill — all reclamations look the same
    /// from the Agent's side).
    fn send_lease_notices(&mut self, now: Time, cluster: &Cluster) {
        for (&app, link) in &self.links {
            let current: BTreeSet<GpuId> = cluster.gpus_of_app(app).iter().collect();
            if let Some(previous) = self.observed_gpus.get(&app) {
                let lost: Vec<GpuId> = previous.difference(&current).copied().collect();
                if !lost.is_empty() {
                    let _ = link.send(
                        now,
                        ArbiterToAgent::LeaseExpired {
                            gpus: lost,
                            at: now,
                        },
                    );
                }
            }
            self.observed_gpus.insert(app, current);
        }
    }
}

impl Scheduler for InstantDistributedScheduler {
    fn name(&self) -> &'static str {
        "themis-dist-instant"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let offer = cluster.free_vector();
        if offer.is_empty() {
            return Vec::new();
        }
        let round = self.round;
        self.round += 1;
        self.stats.rounds += 1;

        let schedulable: Vec<AppId> = apps
            .iter()
            .filter(|a| a.is_schedulable(now))
            .map(|a| a.id())
            .collect();
        for &app in &schedulable {
            self.ensure_node(app);
        }
        self.apply_crash_schedule(round);
        self.send_lease_notices(now, cluster);

        let deadline = now + self.bid_deadline;
        // When Agents get to react: one link delay after the send, but
        // never past the deadline (a reply prepared after the deadline
        // could not influence this round anyway).
        let agent_poll = (now + self.fault.delay).min(deadline);

        // Steps 1+2: query every schedulable Agent for ρ; live Agents
        // react at `agent_poll`; the Arbiter collects reports visible by
        // the deadline.
        for &app in &schedulable {
            let _ = self.links[&app].send(now, ArbiterToAgent::QueryRho { round });
        }
        let mut rhos: BTreeMap<AppId, f64> = BTreeMap::new();
        for &app in &schedulable {
            let node = self.nodes.get_mut(&app).expect("node exists");
            if node.crashed_until > round {
                continue;
            }
            node.poll(agent_poll, round, &apps[app], cluster);
        }
        for &app in &schedulable {
            for msg in self.links[&app].drain(deadline) {
                match msg {
                    AgentToArbiter::Rho(report) if report.round == round => {
                        rhos.insert(report.app, report.rho);
                    }
                    _ => self.stats.stale_messages += 1,
                }
            }
            if !rhos.contains_key(&app) {
                self.stats.missed_rho_reports += 1;
            }
        }
        if schedulable.iter().all(|app| rhos.contains_key(app)) {
            self.stats.completed_rounds += 1;
        }

        // Apps that answered this round form the auction's world view;
        // everyone else is retried next round.
        let mut statuses: Vec<AppStatus> = Vec::new();
        for (&app, &rho) in &rhos {
            let runtime = &apps[app];
            statuses.push(AppStatus {
                app,
                rho,
                unmet_demand: runtime.unmet_demand(cluster),
                footprint: cluster.gpus_of_app(app).machines(cluster.spec()),
            });
        }
        if statuses.iter().all(|s| s.unmet_demand == 0) {
            return Vec::new();
        }

        // Steps 3+4: offer to the worst-off 1−f fraction, collect bids.
        let participants = self.arbiter.select_participants(&statuses);
        let offer_msg = OfferMsg {
            round,
            now,
            resources: offer.clone(),
            reply_by: deadline,
        };
        for &app in &participants {
            let _ = self.links[&app].send(now, ArbiterToAgent::Offer(offer_msg.clone()));
        }
        for &app in &participants {
            let node = self.nodes.get_mut(&app).expect("node exists");
            if node.crashed_until > round {
                continue;
            }
            node.poll(agent_poll, round, &apps[app], cluster);
        }
        let mut tables: BTreeMap<AppId, BidTable> = BTreeMap::new();
        let mut passed: BTreeSet<AppId> = BTreeSet::new();
        for &app in &participants {
            for msg in self.links[&app].drain(deadline) {
                match msg {
                    AgentToArbiter::Bid { round: r, table } if r == round => {
                        tables.insert(table.app, table);
                    }
                    AgentToArbiter::Pass { round: r, app } if r == round => {
                        passed.insert(app);
                    }
                    _ => self.stats.stale_messages += 1,
                }
            }
            if !tables.contains_key(&app) && !passed.contains(&app) {
                self.stats.missed_bids += 1;
            }
        }
        // Bids in participant (worst-ρ-first) order, as the in-process
        // scheduler submits them.
        let bids: Vec<BidTable> = participants
            .iter()
            .filter_map(|app| tables.remove(app))
            .collect();

        // Step 5: run the auction, materialize grants, notify winners. A
        // grant only takes effect if its Win notification is delivered by
        // the deadline — otherwise the GPUs stay free for the next round.
        let outcome =
            self.arbiter
                .run_auction(&offer, &statuses, &participants, &bids, cluster.spec());
        let mut shadow = cluster.view();
        let mut decisions = Vec::new();
        for (app, grant) in outcome.into_all_grants() {
            let Some(runtime) = apps.get(app) else {
                continue;
            };
            let agent = &self.nodes.get(&app).expect("winner has a node").agent;
            decisions.extend(materialize_grant(agent, &mut shadow, runtime, &grant));
        }
        let lease_expires_at = now + self.config.lease_duration;
        for decision in &decisions {
            let _ = self.links[&decision.app].send(
                now,
                ArbiterToAgent::Win(WinNotification {
                    round,
                    app: decision.app,
                    job: decision.job,
                    gpus: decision.gpus.clone(),
                    lease_expires_at,
                }),
            );
        }
        let mut delivered: BTreeSet<(AppId, JobId)> = BTreeSet::new();
        let winners: BTreeSet<AppId> = decisions.iter().map(|d| d.app).collect();
        for &app in &winners {
            let node = self.nodes.get_mut(&app).expect("winner has a node");
            if node.crashed_until <= round {
                node.poll(deadline, round, &apps[app], cluster);
            }
            for win in node.delivered_wins.drain(..) {
                delivered.insert((win.app, win.job));
            }
        }
        let before = decisions.len();
        decisions.retain(|d| delivered.contains(&(d.app, d.job)));
        self.stats.voided_wins += (before - decisions.len()) as u64;
        decisions
    }

    /// Every `schedule` call advances the round counter, crash schedule and
    /// per-node message flow even when nothing can be granted, so the
    /// incremental skip would desynchronize the simulated control plane.
    fn supports_incremental(&self) -> bool {
        false
    }

    fn control_stats(&self) -> Option<ControlPlaneStats> {
        Some(self.stats.control())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ThemisScheduler;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn world(napps: u32) -> (Cluster, AppArena) {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps: AppArena = (0..napps)
            .map(|i| {
                let job = JobSpec::new(JobId(0), ModelArch::ResNet50, 400.0, Time::minutes(0.1), 4);
                AppRuntime::with_default_hpo(AppSpec::single_job(AppId(i), Time::ZERO, job))
            })
            .collect();
        (cluster, apps)
    }

    #[test]
    fn reliable_round_matches_in_process_decisions() {
        let (cluster, apps) = world(3);
        let config = ThemisConfig::default().with_seed(7);
        let mut in_process = ThemisScheduler::new(config);
        let mut dist = InstantDistributedScheduler::new(config, FaultConfig::reliable());
        let now = Time::minutes(5.0);
        let a = in_process.schedule(now, &cluster, &apps);
        let b = dist.schedule(now, &cluster, &apps);
        assert_eq!(a, b, "reliable transport must reproduce in-process Themis");
        assert!(!b.is_empty());
        let stats = dist.stats();
        assert_eq!(stats.missed_rho_reports, 0);
        assert_eq!(stats.missed_bids, 0);
        assert_eq!(stats.voided_wins, 0);
    }

    #[test]
    fn small_delay_fits_the_deadline_large_delay_misses_the_round() {
        // One-way delay of 10 s: query + reply round-trips in 20 s ≤ 30 s
        // deadline, so the auction proceeds.
        let (cluster, apps) = world(2);
        let config = ThemisConfig::default();
        let mut dist = InstantDistributedScheduler::new(
            config,
            FaultConfig::reliable().with_delay(Time::seconds(10.0)),
        );
        let decisions = dist.schedule(Time::minutes(1.0), &cluster, &apps);
        assert!(
            !decisions.is_empty(),
            "20 s round-trip fits a 30 s deadline"
        );

        // One-way delay of 20 s: replies land at +40 s, after the deadline.
        // Every Agent misses the round; nothing is granted, nothing wedges.
        let mut slow = InstantDistributedScheduler::new(
            config,
            FaultConfig::reliable().with_delay(Time::seconds(20.0)),
        );
        let decisions = slow.schedule(Time::minutes(1.0), &cluster, &apps);
        assert!(decisions.is_empty());
        assert_eq!(slow.stats().missed_rho_reports, 2);
        // The next round is attempted afresh (and missed again — the
        // stale replies from round 0 are discarded, not misread).
        let decisions = slow.schedule(Time::minutes(2.0), &cluster, &apps);
        assert!(decisions.is_empty());
        assert_eq!(slow.rounds(), 2);
        assert!(slow.stats().stale_messages > 0, "round-0 replies discarded");
    }

    #[test]
    fn fully_lossy_link_never_wedges_a_round() {
        let (cluster, apps) = world(2);
        let mut dist = InstantDistributedScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_drop_probability(1.0),
        );
        for r in 0..5 {
            let decisions = dist.schedule(Time::minutes(r as f64), &cluster, &apps);
            assert!(decisions.is_empty());
        }
        assert_eq!(dist.rounds(), 5);
        assert_eq!(dist.stats().missed_rho_reports, 10);
    }

    #[test]
    fn crash_schedule_takes_one_agent_offline_round_robin() {
        let (cluster, apps) = world(2);
        // Every round, one agent crashes for exactly that round.
        let mut dist = InstantDistributedScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_crash(1, 1),
        );
        // Round 0 crashes app 0 (victim index 0), round 1 crashes app 1.
        let d0 = dist.schedule(Time::minutes(1.0), &cluster, &apps);
        assert!(d0.iter().all(|d| d.app == AppId(1)), "app 0 is offline");
        assert!(!d0.is_empty(), "the surviving agent still wins GPUs");
        let d1 = dist.schedule(Time::minutes(2.0), &cluster, &apps);
        assert!(d1.iter().all(|d| d.app == AppId(0)), "app 1 is offline");
        assert_eq!(dist.stats().crashed_agent_rounds, 2);
    }

    #[test]
    fn lease_notices_flow_to_agents() {
        let (mut cluster, apps) = world(1);
        let mut dist =
            InstantDistributedScheduler::new(ThemisConfig::default(), FaultConfig::reliable());
        let d = dist.schedule(Time::minutes(1.0), &cluster, &apps);
        // Apply the decisions with a short lease, then expire it.
        for decision in &d {
            for gpu in &decision.gpus {
                cluster
                    .allocate(
                        *gpu,
                        decision.app,
                        decision.job,
                        Time::minutes(1.0),
                        Time::minutes(2.0),
                    )
                    .unwrap();
            }
        }
        dist.schedule(Time::minutes(1.5), &cluster, &apps);
        cluster.reclaim_expired_leases(Time::minutes(10.0));
        dist.schedule(Time::minutes(10.0), &cluster, &apps);
        let node = dist.nodes.get(&AppId(0)).unwrap();
        assert!(
            node.lease_notices > 0,
            "agent must be told its GPUs were reclaimed"
        );
    }
}

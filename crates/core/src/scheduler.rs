//! [`ThemisScheduler`]: the full Themis policy plugged into the simulator.
//!
//! This is the glue between the Arbiter, the per-app Agents and the
//! simulation engine. At every scheduling event it:
//!
//! 1. probes each schedulable app's Agent for its current ρ,
//! 2. selects the worst-off `1 − f` fraction as auction participants,
//! 3. collects their bid tables over the free-GPU offer,
//! 4. runs the partial-allocation auction and leftover assignment,
//! 5. converts the per-machine awards into concrete GPU → job allocations
//!    using each Agent's greedy job-level distribution.

use crate::agent::Agent;
use crate::arbiter::{AppStatus, Arbiter};
use crate::config::ThemisConfig;
use crate::rho::JobShare;
use std::collections::BTreeMap;
use themis_cluster::alloc::FreeVector;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, GpuId, JobId};
use themis_cluster::time::Time;
use themis_cluster::view::{ClusterState, ClusterView};
use themis_protocol::bid::BidTable;
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{AllocationDecision, Scheduler};

/// The Themis cross-app scheduler.
#[derive(Debug)]
pub struct ThemisScheduler {
    config: ThemisConfig,
    arbiter: Arbiter,
    agents: BTreeMap<AppId, Agent>,
}

impl ThemisScheduler {
    /// Creates a Themis scheduler with the given configuration.
    pub fn new(config: ThemisConfig) -> Self {
        ThemisScheduler {
            arbiter: Arbiter::new(config),
            agents: BTreeMap::new(),
            config,
        }
    }

    /// Creates a Themis scheduler with the paper's recommended defaults
    /// (`f = 0.8`, 20-minute leases).
    pub fn with_defaults() -> Self {
        Self::new(ThemisConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThemisConfig {
        &self.config
    }

    /// Number of auction rounds run so far.
    pub fn auction_rounds(&self) -> u64 {
        self.arbiter.rounds()
    }

    fn agent_for(&mut self, app: AppId) -> &mut Agent {
        let config = self.config;
        self.agents
            .entry(app)
            .or_insert_with(|| Agent::new(app, &config))
    }
}

/// Converts a per-app grant (per-machine counts) into concrete allocation
/// decisions, drawing GPUs from the round's `shadow` view (which tracks
/// GPUs already promised this round). Shared by the in-process and
/// distributed-mode schedulers so their materialization can never diverge —
/// the reliable `themis-dist` ≡ `themis` equivalence depends on it.
pub(crate) fn materialize_grant(
    agent: &Agent,
    shadow: &mut ClusterView<'_>,
    runtime: &AppRuntime,
    grant: &FreeVector,
) -> Vec<AllocationDecision> {
    let app = runtime.id();
    let shares: BTreeMap<JobId, JobShare> = agent.distribute_award(runtime, shadow, grant);
    let mut decisions = Vec::new();
    for (job, share) in shares {
        let mut gpus: Vec<GpuId> = Vec::new();
        for (machine, count) in share {
            let free = shadow.free_gpus_on(machine);
            for gpu in free.into_iter().take(count) {
                if shadow.allocate(gpu, app, job).is_ok() {
                    gpus.push(gpu);
                }
            }
        }
        if !gpus.is_empty() {
            decisions.push(AllocationDecision { app, job, gpus });
        }
    }
    decisions
}

impl Scheduler for ThemisScheduler {
    fn name(&self) -> &'static str {
        "themis"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let offer = cluster.free_vector();
        if offer.is_empty() {
            return Vec::new();
        }

        // 1. Probe every schedulable app's Agent for its current ρ.
        let mut statuses: Vec<AppStatus> = Vec::new();
        for runtime in apps.iter().filter(|a| a.is_schedulable(now)) {
            let app = runtime.id();
            let rho = self.agent_for(app).current_rho(now, runtime, cluster).rho;
            statuses.push(AppStatus {
                app,
                rho,
                unmet_demand: runtime.unmet_demand(cluster),
                footprint: cluster.gpus_of_app(app).machines(cluster.spec()),
            });
        }
        if statuses.iter().all(|s| s.unmet_demand == 0) {
            return Vec::new();
        }

        // 2. Select the worst-off 1−f fraction and collect their bids.
        let participants = self.arbiter.select_participants(&statuses);
        let mut bids: Vec<BidTable> = Vec::new();
        for app in &participants {
            let runtime = &apps[*app];
            let bid = self
                .agent_for(*app)
                .prepare_bid(now, runtime, cluster, &offer);
            if !bid.is_empty() {
                bids.push(bid);
            }
        }

        // 3. Run the auction + leftover assignment.
        let outcome =
            self.arbiter
                .run_auction(&offer, &statuses, &participants, &bids, cluster.spec());

        // 4. Materialize per-machine grants into concrete GPU decisions,
        //    against a borrowed per-round view (no cluster clone).
        let mut shadow = cluster.view();
        let mut decisions = Vec::new();
        for (app, grant) in outcome.into_all_grants() {
            let Some(runtime) = apps.get(app) else {
                continue;
            };
            let agent = self.agent_for(app);
            decisions.extend(materialize_grant(agent, &mut shadow, runtime, &grant));
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::topology::ClusterSpec;
    use themis_sim::engine::{Engine, SimConfig};
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;
    use themis_workload::trace::{two_app_micro_trace, TraceConfig, TraceGenerator};

    fn single_job_app(id: u32, arrival: f64, iterations: f64, gpus: usize) -> AppSpec {
        let job = JobSpec::new(
            JobId(0),
            ModelArch::ResNet50,
            iterations,
            Time::minutes(0.1),
            gpus,
        );
        AppSpec::single_job(AppId(id), Time::minutes(arrival), job)
    }

    #[test]
    fn single_app_gets_everything_it_needs() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let trace = vec![single_job_app(0, 0.0, 400.0, 4)];
        let report = Engine::new(
            cluster,
            trace,
            ThemisScheduler::with_defaults(),
            SimConfig::default(),
        )
        .run();
        assert_eq!(report.finished_apps(), 1);
        let rho = report.apps[0].rho.unwrap();
        assert!(rho < 1.2, "lone app should be near-ideal, rho = {rho}");
    }

    #[test]
    fn contended_apps_share_reasonably() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let trace = vec![
            single_job_app(0, 0.0, 800.0, 4),
            single_job_app(1, 0.0, 800.0, 4),
        ];
        let report = Engine::new(
            cluster,
            trace,
            ThemisScheduler::with_defaults(),
            SimConfig::default().with_checkpoint_overhead(Time::ZERO),
        )
        .run();
        assert_eq!(report.finished_apps(), 2);
        // Two identical apps on a cluster with enough room for both: both
        // should get 4 GPUs and finish near-ideally.
        let max_rho = report.max_fairness().unwrap();
        assert!(max_rho < 2.0, "max rho {max_rho}");
        assert!(report.jains_index().unwrap() > 0.8);
    }

    #[test]
    fn oversubscribed_cluster_stays_fair() {
        // 4 identical apps, each wanting the whole 4-GPU machine: contention
        // is 4x, so the ideal max fairness is ~4.
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace: Vec<AppSpec> = (0..4).map(|i| single_job_app(i, 0.0, 400.0, 4)).collect();
        let report = Engine::new(
            cluster,
            trace,
            ThemisScheduler::with_defaults(),
            SimConfig::default()
                .with_lease(Time::minutes(10.0))
                .with_checkpoint_overhead(Time::ZERO),
        )
        .run();
        assert_eq!(report.finished_apps(), 4);
        let max_rho = report.max_fairness().unwrap();
        assert!(
            max_rho < 6.0,
            "max fairness {max_rho} should be near the 4x contention level"
        );
        assert!(report.jains_index().unwrap() > 0.6);
    }

    #[test]
    fn short_app_is_favoured_over_long_app() {
        // The Figure-8 micro-benchmark: two equal-sensitivity apps, 3x
        // running-time ratio, arriving together on a small cluster.
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace = two_app_micro_trace();
        let report = Engine::new(
            cluster,
            trace,
            ThemisScheduler::with_defaults(),
            SimConfig::default()
                .with_lease(Time::minutes(20.0))
                .with_checkpoint_overhead(Time::ZERO),
        )
        .run();
        assert_eq!(report.finished_apps(), 2);
        let short = &report.apps[0];
        let long = &report.apps[1];
        // The short app must not be starved behind the long one: its rho
        // must stay in the same ballpark as the long app's.
        assert!(
            short.rho.unwrap() <= long.rho.unwrap() * 3.0,
            "short rho {} vs long rho {}",
            short.rho.unwrap(),
            long.rho.unwrap()
        );
        // Neither app is starved.
        assert!(long.finished_at.is_some());
    }

    #[test]
    fn runs_on_a_generated_trace() {
        // 12 apps on a 32-GPU cluster: genuinely contended (max ρ ≈ 11),
        // so the max-fairness assertion below is not vacuous — with an
        // uncontended cluster every app can beat its (early-termination-
        // blind) ideal time. Small enough to finish in seconds in debug.
        let cluster = Cluster::new(ClusterSpec::homogeneous(2, 4, 4));
        let trace =
            TraceGenerator::new(TraceConfig::default().with_num_apps(12).with_seed(5)).generate();
        let themis = ThemisScheduler::new(ThemisConfig::default().with_seed(5));
        let report = Engine::new(
            cluster,
            trace,
            themis,
            SimConfig::default().with_max_sim_time(Time::minutes(500_000.0)),
        )
        .run();
        assert_eq!(report.unfinished_apps(), 0);
        assert!(report.max_fairness().unwrap() >= 1.0 - 1e-9);
        assert!(report.scheduling_rounds > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let cluster = Cluster::new(ClusterSpec::homogeneous(2, 4, 4));
            let trace = TraceGenerator::new(TraceConfig::default().with_num_apps(6).with_seed(2))
                .generate();
            Engine::new(
                cluster,
                trace,
                ThemisScheduler::new(ThemisConfig::default().with_seed(7)),
                SimConfig::default(),
            )
            .run()
        };
        assert_eq!(run(), run());
    }
}

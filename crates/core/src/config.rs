//! Themis configuration.

use serde::{Deserialize, Serialize};
use themis_cluster::time::Time;

/// Tunables of the Themis scheduler studied in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThemisConfig {
    /// The fairness knob `f ∈ [0, 1]` (§3.1 step 2, §8.2): available
    /// resources are offered to the `1 − f` fraction of apps with the worst
    /// finish-time fairness. Higher `f` gives stronger fairness guarantees;
    /// lower `f` gives the Arbiter more placement choices. The paper
    /// recommends `f = 0.8`.
    pub fairness_knob: f64,
    /// Maximum number of candidate subsets an Agent enumerates per bid
    /// table. Bounds the §8.3.2 bid-preparation cost.
    pub max_bid_entries: usize,
    /// Relative error injected into every reported ρ, drawn uniformly from
    /// `[-θ, +θ]` per app per auction (the paper's §8.4.3 robustness
    /// experiment). Zero disables injection.
    pub rho_error_theta: f64,
    /// Seed for the scheduler's internal randomness (leftover-allocation
    /// tie-breaking and error injection).
    pub seed: u64,
    /// Lease duration assumed when estimating how long a candidate
    /// allocation will be held. Informational only — the engine enforces
    /// the actual lease; this mirrors the paper's 20-minute default.
    pub lease_duration: Time,
}

impl Default for ThemisConfig {
    fn default() -> Self {
        ThemisConfig {
            fairness_knob: 0.8,
            max_bid_entries: 16,
            rho_error_theta: 0.0,
            seed: 0,
            lease_duration: Time::minutes(20.0),
        }
    }
}

impl ThemisConfig {
    /// Sets the fairness knob `f`.
    ///
    /// # Panics
    /// Panics if `f` is outside `[0, 1]`.
    pub fn with_fairness_knob(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fairness knob must be in [0, 1]");
        self.fairness_knob = f;
        self
    }

    /// Sets the ρ-error injection range θ.
    pub fn with_rho_error(mut self, theta: f64) -> Self {
        assert!(theta >= 0.0, "error range must be non-negative");
        self.rho_error_theta = theta;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum number of bid-table entries.
    pub fn with_max_bid_entries(mut self, entries: usize) -> Self {
        assert!(entries > 0, "at least one bid entry is required");
        self.max_bid_entries = entries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = ThemisConfig::default();
        assert_eq!(c.fairness_knob, 0.8);
        assert_eq!(c.lease_duration, Time::minutes(20.0));
        assert_eq!(c.rho_error_theta, 0.0);
    }

    #[test]
    fn builder_methods() {
        let c = ThemisConfig::default()
            .with_fairness_knob(0.5)
            .with_rho_error(0.2)
            .with_seed(9)
            .with_max_bid_entries(8);
        assert_eq!(c.fairness_knob, 0.5);
        assert_eq!(c.rho_error_theta, 0.2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_bid_entries, 8);
    }

    #[test]
    #[should_panic(expected = "fairness knob")]
    fn invalid_knob_rejected() {
        let _ = ThemisConfig::default().with_fairness_knob(1.5);
    }
}

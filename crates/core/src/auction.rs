//! The partial allocation (PA) auction mechanism.
//!
//! Given one bid table per far-from-fair app, the Arbiter picks winning,
//! mutually disjoint resource subsets (§5.1, Pseudocode 2):
//!
//! 1. **Proportional-fair allocation** — choose at most one bid entry per
//!    app, subject to per-machine capacity, maximizing the Nash product of
//!    the apps' valuations (equivalently the sum of log-values). The result
//!    is Pareto-efficient.
//! 2. **Hidden payments** — to make truthful reporting of valuations the
//!    dominant strategy, app *i* only receives a fraction
//!    `c_i = Π_{j≠i} V_j(pf) / Π_{j≠i} V_j(pf without i)` of its
//!    proportional-fair allocation; the rest is withheld.
//! 3. **Leftovers** — withheld GPUs (at most a `1/e` fraction in the worst
//!    case) are handed out work-conservingly outside the auction.
//!
//! Valuations are `V = 1/ρ` (see DESIGN.md): maximizing the product of
//! `1/ρ` is exactly minimizing the product of the bidders' finish-time
//! fairness metrics.

use std::collections::BTreeMap;
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::AppId;
use themis_protocol::bid::BidTable;

/// Floor applied to valuations so that an app with an unbounded ρ (value 0)
/// does not collapse the Nash product to zero. Chosen far below any
/// realistic `1/ρ`.
const VALUE_FLOOR: f64 = 1e-12;

/// Which solver computed the proportional-fair assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Exhaustive branch-and-bound over bid entries (optimal).
    Exact,
    /// Greedy assignment plus local-search improvement (used when the
    /// search space is too large for the exact solver).
    Greedy,
}

/// The winning allocation for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct Award {
    /// The app.
    pub app: AppId,
    /// The proportional-fair subset the app won before hidden payments.
    pub proportional_fair: FreeVector,
    /// The hidden-payment factor `c_i ∈ (0, 1]`.
    pub payment_factor: f64,
    /// The final subset after applying the hidden payment (per-machine
    /// counts scaled down by `c_i`, rounded towards zero).
    pub awarded: FreeVector,
    /// The ρ the app bid for its proportional-fair subset.
    pub rho: f64,
}

/// The full result of a partial-allocation auction.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionResult {
    /// Per-app awards (apps that won nothing are omitted).
    pub awards: Vec<Award>,
    /// Resources offered but not awarded (hidden payments and unwanted
    /// GPUs); to be allocated work-conservingly outside the auction.
    pub leftover: FreeVector,
    /// Which solver was used.
    pub solver: SolverKind,
}

impl AuctionResult {
    /// Total number of GPUs awarded across apps.
    pub fn total_awarded(&self) -> usize {
        self.awards.iter().map(|a| a.awarded.total()).sum()
    }

    /// The award for a specific app, if it won anything.
    pub fn award_for(&self, app: AppId) -> Option<&Award> {
        self.awards.iter().find(|a| a.app == app)
    }
}

/// An assignment of (at most) one bid-entry index per app.
type Assignment = BTreeMap<AppId, usize>;

/// Scales a proportional-fair subset by the hidden-payment factor `c`.
///
/// The paper treats allocations as divisible; with whole GPUs a naive
/// per-machine floor can round a heavily-charged winner down to *zero* GPUs,
/// starving exactly the far-from-fair app the auction meant to help. We
/// instead round the *total* GPU count (half-up) and take that many GPUs
/// from the subset's machines densest-first, so the winner keeps a packed
/// core of its proportional-fair allocation.
fn scale_subset(pf: &FreeVector, c: f64) -> FreeVector {
    let target = ((pf.total() as f64) * c).round() as usize;
    if target == 0 {
        return FreeVector::empty();
    }
    if target >= pf.total() {
        return pf.clone();
    }
    let mut machines: Vec<(themis_cluster::ids::MachineId, usize)> = pf.iter().collect();
    // Densest machines first so the kept GPUs stay packed.
    machines.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut remaining = target;
    let mut kept = Vec::new();
    for (machine, count) in machines {
        if remaining == 0 {
            break;
        }
        let take = count.min(remaining);
        kept.push((machine, take));
        remaining -= take;
    }
    FreeVector::from_counts(kept)
}

fn entry_value(table: &BidTable, entry: Option<usize>) -> f64 {
    let v = match entry {
        Some(idx) => table.entries[idx].value(),
        None => table.baseline_value(),
    };
    v.max(VALUE_FLOOR)
}

fn assignment_log_value(bids: &[BidTable], assignment: &Assignment) -> f64 {
    bids.iter()
        .map(|t| entry_value(t, assignment.get(&t.app).copied()).ln())
        .sum()
}

fn assignment_fits(bids: &[BidTable], assignment: &Assignment, offer: &FreeVector) -> bool {
    let mut used = FreeVector::empty();
    for table in bids {
        if let Some(idx) = assignment.get(&table.app) {
            used = used.add(&table.entries[*idx].resources);
        }
    }
    offer.contains_vector(&used)
}

/// Exhaustive search over per-app entry choices (including "nothing"),
/// maximizing the sum of log-values subject to capacity. Exponential in the
/// number of apps, so only used when `Π (entries+1)` is small.
fn solve_exact(bids: &[BidTable], offer: &FreeVector) -> Assignment {
    fn recurse(
        bids: &[BidTable],
        idx: usize,
        remaining: &FreeVector,
        current: &mut Assignment,
        current_log: f64,
        best: &mut (f64, Assignment),
    ) {
        if idx == bids.len() {
            if current_log > best.0 {
                *best = (current_log, current.clone());
            }
            return;
        }
        let table = &bids[idx];
        // Option A: this app receives nothing.
        recurse(
            bids,
            idx + 1,
            remaining,
            current,
            current_log + entry_value(table, None).ln(),
            best,
        );
        // Option B: each feasible entry.
        for (i, entry) in table.entries.iter().enumerate() {
            if remaining.contains_vector(&entry.resources) {
                let next_remaining = remaining.saturating_sub(&entry.resources);
                current.insert(table.app, i);
                recurse(
                    bids,
                    idx + 1,
                    &next_remaining,
                    current,
                    current_log + entry_value(table, Some(i)).ln(),
                    best,
                );
                current.remove(&table.app);
            }
        }
    }

    let mut best = (f64::NEG_INFINITY, Assignment::new());
    let mut current = Assignment::new();
    recurse(bids, 0, offer, &mut current, 0.0, &mut best);
    best.1
}

/// Greedy assignment (largest marginal log-value gain first) followed by a
/// round of single-app local-search improvements.
fn solve_greedy(bids: &[BidTable], offer: &FreeVector) -> Assignment {
    let mut assignment = Assignment::new();
    let mut remaining = offer.clone();

    loop {
        let mut best: Option<(AppId, usize, f64)> = None;
        for table in bids {
            if assignment.contains_key(&table.app) {
                continue;
            }
            let base = entry_value(table, None).ln();
            for (i, entry) in table.entries.iter().enumerate() {
                if !remaining.contains_vector(&entry.resources) {
                    continue;
                }
                let gain = entry_value(table, Some(i)).ln() - base;
                if gain <= 0.0 {
                    continue;
                }
                match best {
                    Some((_, _, g)) if gain <= g => {}
                    _ => best = Some((table.app, i, gain)),
                }
            }
        }
        let Some((app, idx, _)) = best else { break };
        let table = bids.iter().find(|t| t.app == app).expect("app has a bid");
        remaining = remaining.saturating_sub(&table.entries[idx].resources);
        assignment.insert(app, idx);
    }

    // Local search: try replacing each app's entry (or lack of one) with a
    // better feasible alternative, until no single change improves the
    // Nash product.
    let mut improved = true;
    while improved {
        improved = false;
        for table in bids {
            let current_choice = assignment.get(&table.app).copied();
            // Capacity not counting this app's current entry.
            let mut used_by_others = FreeVector::empty();
            for other in bids {
                if other.app == table.app {
                    continue;
                }
                if let Some(i) = assignment.get(&other.app) {
                    used_by_others = used_by_others.add(&other.entries[*i].resources);
                }
            }
            let available = offer.saturating_sub(&used_by_others);
            let current_value = entry_value(table, current_choice).ln();
            let mut best_alternative: Option<(Option<usize>, f64)> = None;
            for candidate in std::iter::once(None).chain((0..table.entries.len()).map(Some)) {
                if let Some(i) = candidate {
                    if !available.contains_vector(&table.entries[i].resources) {
                        continue;
                    }
                }
                let value = entry_value(table, candidate).ln();
                if value > current_value + 1e-12 {
                    match best_alternative {
                        Some((_, v)) if value <= v => {}
                        _ => best_alternative = Some((candidate, value)),
                    }
                }
            }
            if let Some((choice, _)) = best_alternative {
                match choice {
                    Some(i) => {
                        assignment.insert(table.app, i);
                    }
                    None => {
                        assignment.remove(&table.app);
                    }
                }
                improved = true;
            }
        }
    }
    assignment
}

/// Solves the proportional-fair assignment, choosing the exact solver when
/// the search space is small enough.
fn solve(bids: &[BidTable], offer: &FreeVector) -> (Assignment, SolverKind) {
    const EXACT_SEARCH_LIMIT: f64 = 20_000.0;
    let space: f64 = bids.iter().map(|t| (t.entries.len() + 1) as f64).product();
    if space <= EXACT_SEARCH_LIMIT {
        (solve_exact(bids, offer), SolverKind::Exact)
    } else {
        (solve_greedy(bids, offer), SolverKind::Greedy)
    }
}

/// Runs the partial-allocation mechanism over a set of bids for an offer.
///
/// Set `apply_hidden_payments = false` to ablate the truth-telling payment
/// (the full proportional-fair allocation is then awarded directly).
pub fn partial_allocation_with(
    bids: &[BidTable],
    offer: &FreeVector,
    apply_hidden_payments: bool,
) -> AuctionResult {
    if bids.is_empty() || offer.is_empty() {
        return AuctionResult {
            awards: Vec::new(),
            leftover: offer.clone(),
            solver: SolverKind::Exact,
        };
    }

    let (assignment, solver) = solve(bids, offer);

    // Π_{j≠i} V_j under the chosen assignment, per excluded app i, is
    // recomputed from scratch per app below via re-solving without i.
    let full_log = assignment_log_value(bids, &assignment);
    debug_assert!(assignment_fits(bids, &assignment, offer));

    let mut awards = Vec::new();
    let mut used = FreeVector::empty();
    for table in bids {
        let Some(&entry_idx) = assignment.get(&table.app) else {
            continue;
        };
        let entry = &table.entries[entry_idx];
        if entry.resources.is_empty() {
            continue;
        }

        let payment_factor = if apply_hidden_payments {
            // Numerator: Π_{j≠i} V_j under the PF assignment with i present.
            let log_without_i_present = full_log - entry_value(table, Some(entry_idx)).ln();
            // Denominator: Π_{j≠i} V_j under the PF assignment computed
            // without app i participating at all.
            let other_bids: Vec<BidTable> = bids
                .iter()
                .filter(|t| t.app != table.app)
                .cloned()
                .collect();
            let (assignment_without_i, _) = solve(&other_bids, offer);
            let log_without_i = assignment_log_value(&other_bids, &assignment_without_i);
            let ratio = (log_without_i_present - log_without_i).exp();
            ratio.clamp(0.0, 1.0)
        } else {
            1.0
        };

        let awarded = scale_subset(&entry.resources, payment_factor);
        used = used.add(&awarded);
        awards.push(Award {
            app: table.app,
            proportional_fair: entry.resources.clone(),
            payment_factor,
            awarded,
            rho: entry.rho,
        });
    }

    let leftover = offer.saturating_sub(&used);
    AuctionResult {
        awards,
        leftover,
        solver,
    }
}

/// Runs the partial-allocation mechanism with hidden payments enabled (the
/// paper's mechanism).
pub fn partial_allocation(bids: &[BidTable], offer: &FreeVector) -> AuctionResult {
    partial_allocation_with(bids, offer, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::MachineId;

    fn fv(pairs: &[(u32, usize)]) -> FreeVector {
        FreeVector::from_counts(pairs.iter().map(|(m, c)| (MachineId(*m), *c)))
    }

    /// A bid table whose entries follow the homogeneous `rho/k` scaling the
    /// paper assumes: current_rho / gpus.
    fn scaling_bid(app: u32, current_rho: f64, machine: u32, max_gpus: usize) -> BidTable {
        let mut table = BidTable::empty(AppId(app), current_rho);
        for g in 1..=max_gpus {
            table.push(fv(&[(machine, g)]), current_rho / g as f64);
        }
        table
    }

    #[test]
    fn empty_inputs_produce_no_awards() {
        let result = partial_allocation(&[], &fv(&[(0, 4)]));
        assert!(result.awards.is_empty());
        assert_eq!(result.leftover, fv(&[(0, 4)]));
        let result = partial_allocation(&[scaling_bid(0, 4.0, 0, 2)], &FreeVector::empty());
        assert!(result.awards.is_empty());
    }

    #[test]
    fn single_bidder_wins_its_best_entry() {
        let offer = fv(&[(0, 4)]);
        let bids = vec![scaling_bid(0, 8.0, 0, 4)];
        let result = partial_allocation(&bids, &offer);
        assert_eq!(result.awards.len(), 1);
        let award = &result.awards[0];
        assert_eq!(award.proportional_fair, fv(&[(0, 4)]));
        // A single bidder faces no competition, so it pays nothing hidden.
        assert!((award.payment_factor - 1.0).abs() < 1e-9);
        assert_eq!(award.awarded.total(), 4);
        assert!(result.leftover.is_empty());
    }

    #[test]
    fn disjoint_demands_both_win_fully() {
        let offer = fv(&[(0, 4), (1, 4)]);
        let bids = vec![scaling_bid(0, 8.0, 0, 4), scaling_bid(1, 8.0, 1, 4)];
        let result = partial_allocation(&bids, &offer);
        assert_eq!(result.awards.len(), 2);
        for award in &result.awards {
            // No contention on either machine → no hidden payment.
            assert!(
                (award.payment_factor - 1.0).abs() < 1e-9,
                "factor {}",
                award.payment_factor
            );
            assert_eq!(award.awarded.total(), 4);
        }
        assert_eq!(result.total_awarded(), 8);
    }

    #[test]
    fn contention_awards_the_needier_app_and_charges_it() {
        // Both apps want the same 4 GPUs; app 0 is much farther from fair
        // (higher current rho), so the Nash product is maximized by giving
        // the GPUs to... whichever yields the larger relative improvement.
        // Both improve by the same multiplicative factor, so the solver may
        // pick either — but the hidden payment must be strictly less than 1
        // because the loser's valuation is hurt by the winner's presence.
        let offer = fv(&[(0, 4)]);
        let bids = vec![scaling_bid(0, 100.0, 0, 4), scaling_bid(1, 10.0, 0, 4)];
        let result = partial_allocation(&bids, &offer);
        assert!(!result.awards.is_empty(), "someone must win the machine");
        for award in &result.awards {
            assert!(
                award.payment_factor < 1.0,
                "contention must induce a hidden payment (got {})",
                award.payment_factor
            );
            assert!(award.payment_factor > 0.0);
        }
        assert_eq!(
            result.total_awarded() + result.leftover.total(),
            4,
            "awarded + leftover covers the whole offer"
        );
    }

    #[test]
    fn awards_never_exceed_offer() {
        let offer = fv(&[(0, 2), (1, 3)]);
        let bids = vec![
            scaling_bid(0, 20.0, 0, 2),
            scaling_bid(1, 15.0, 1, 3),
            scaling_bid(2, 30.0, 1, 3),
        ];
        let result = partial_allocation(&bids, &offer);
        let mut used = FreeVector::empty();
        for award in &result.awards {
            used = used.add(&award.awarded);
        }
        assert!(offer.contains_vector(&used));
        assert_eq!(used.total() + result.leftover.total(), offer.total());
    }

    #[test]
    fn pareto_efficiency_no_wasted_entry_for_lone_bidder() {
        // With one bidder and plenty of supply, the solver must pick the
        // entry with the highest value (the most GPUs).
        let offer = fv(&[(0, 4), (1, 4)]);
        let mut table = BidTable::empty(AppId(0), 8.0);
        table.push(fv(&[(0, 2)]), 4.0);
        table.push(fv(&[(0, 4)]), 2.0);
        table.push(fv(&[(0, 4), (1, 4)]), 1.0);
        let result = partial_allocation(&[table], &offer);
        assert_eq!(result.awards[0].proportional_fair.total(), 8);
    }

    #[test]
    fn truthfulness_overbidding_does_not_increase_award() {
        // App 1 lies by reporting rho values 10x worse (higher) than truth.
        // Because of the hidden payment, its awarded GPUs must not exceed
        // what truthful bidding obtains.
        let offer = fv(&[(0, 4)]);
        let truthful = vec![scaling_bid(0, 20.0, 0, 4), scaling_bid(1, 20.0, 0, 4)];
        let lying = vec![scaling_bid(0, 20.0, 0, 4), {
            let mut t = scaling_bid(1, 200.0, 0, 4);
            // keep its true baseline: the lie is in the table entries only
            t.current_rho = 20.0;
            t
        }];
        let truthful_award = partial_allocation(&truthful, &offer)
            .award_for(AppId(1))
            .map(|a| a.awarded.total())
            .unwrap_or(0);
        let lying_award = partial_allocation(&lying, &offer)
            .award_for(AppId(1))
            .map(|a| a.awarded.total())
            .unwrap_or(0);
        assert!(
            lying_award <= truthful_award.max(1),
            "lying ({lying_award}) must not beat truth ({truthful_award})"
        );
    }

    #[test]
    fn hidden_payments_can_be_disabled_for_ablation() {
        let offer = fv(&[(0, 4)]);
        let bids = vec![scaling_bid(0, 100.0, 0, 4), scaling_bid(1, 10.0, 0, 4)];
        let with = partial_allocation_with(&bids, &offer, true);
        let without = partial_allocation_with(&bids, &offer, false);
        assert!(without
            .awards
            .iter()
            .all(|a| (a.payment_factor - 1.0).abs() < 1e-12));
        assert!(without.total_awarded() >= with.total_awarded());
    }

    #[test]
    fn greedy_solver_kicks_in_for_large_instances() {
        // 40 apps x 4 entries ≫ exact limit.
        let offer = FreeVector::from_counts((0..40u32).map(|m| (MachineId(m), 4)));
        let bids: Vec<BidTable> = (0..40u32)
            .map(|i| scaling_bid(i, 50.0, i % 40, 4))
            .collect();
        // entries = 4 → space = 5^40, greedy required.
        let result = partial_allocation(&bids, &offer);
        assert_eq!(result.solver, SolverKind::Greedy);
        assert!(result.total_awarded() > 0);
        // Per-machine feasibility.
        let mut used = FreeVector::empty();
        for a in &result.awards {
            used = used.add(&a.awarded);
        }
        assert!(offer.contains_vector(&used));
    }

    #[test]
    fn leftover_fraction_is_bounded_in_practice() {
        // The PA mechanism guarantees at most 1/e leftover in the worst
        // case; on a typical contended instance it should be far less than
        // half the offer.
        let offer = fv(&[(0, 4), (1, 4), (2, 4)]);
        let bids = vec![
            scaling_bid(0, 30.0, 0, 4),
            scaling_bid(1, 25.0, 1, 4),
            scaling_bid(2, 40.0, 2, 4),
            scaling_bid(3, 35.0, 0, 4),
        ];
        let result = partial_allocation(&bids, &offer);
        assert!(
            (result.leftover.total() as f64) <= 0.5 * offer.total() as f64,
            "leftover {} of {}",
            result.leftover.total(),
            offer.total()
        );
    }
}

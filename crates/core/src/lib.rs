//! # themis-core
//!
//! The Themis scheduler itself: finish-time fair, placement-sensitive GPU
//! cluster scheduling through partial-allocation auctions (Mahajan et al.,
//! NSDI 2020).
//!
//! The crate is organised around the paper's architecture (§3):
//!
//! * [`rho`] — the **finish-time fairness** metric ρ = T_sh / T_id and the
//!   estimator the Agent uses to value candidate allocations (§5.2),
//! * [`agent`] — the per-app **Agent** that reports ρ and prepares bid
//!   tables over subsets of an offer,
//! * [`auction`] — the **partial allocation (PA) mechanism**: a
//!   proportional-fair (Nash product) allocation with hidden payments that
//!   make truthful bidding the dominant strategy (§5.1),
//! * [`arbiter`] — the central **Arbiter** that runs auction rounds:
//!   probe ρ, offer to the worst-off `1 − f` fraction, collect bids, pick
//!   winners, and hand out leftovers work-conservingly,
//! * [`scheduler`] — [`scheduler::ThemisScheduler`], which plugs the whole
//!   thing into the `themis-sim` engine so it can be compared head-to-head
//!   with the baselines,
//! * [`actors`] — [`actors::DistributedThemisScheduler`], the same policy
//!   running every auction round as the paper's five-step message exchange
//!   (§3.1, §7) between an Arbiter actor and per-app Agent actors on a
//!   causal, fault-injecting [`themis_protocol::network::Network`]: rounds
//!   overlap in simulated time, phase deadlines bound slow Agents, and
//!   every transport decision can be recorded and replayed
//!   byte-identically,
//! * [`runtime`] — [`runtime::InstantDistributedScheduler`], the legacy
//!   instant-round message-exchange path (`themis-dist-instant`), kept as
//!   a baseline that must agree with the actor runtime under zero-latency
//!   reliable links,
//! * [`config`] — the tunables the paper studies: the fairness knob `f`,
//!   the lease duration, and bid-valuation error injection.
//!
//! ## Quick start
//!
//! ```
//! use themis_core::prelude::*;
//! use themis_sim::prelude::*;
//! use themis_cluster::prelude::*;
//! use themis_workload::prelude::*;
//!
//! let cluster = Cluster::new(ClusterSpec::heterogeneous_256());
//! let trace = TraceGenerator::new(TraceConfig::default().with_num_apps(10)).generate();
//! let themis = ThemisScheduler::new(ThemisConfig::default());
//! let report = Engine::new(cluster, trace, themis, SimConfig::default()).run();
//! assert!(report.finished_apps() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actors;
pub mod agent;
pub mod arbiter;
pub mod auction;
pub mod config;
pub mod rho;
pub mod runtime;
pub mod scheduler;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::actors::DistributedThemisScheduler;
    pub use crate::agent::Agent;
    pub use crate::arbiter::{Arbiter, AuctionOutcome};
    pub use crate::auction::{partial_allocation, AuctionResult, SolverKind};
    pub use crate::config::ThemisConfig;
    pub use crate::rho::{estimate_rho, RhoEstimate};
    pub use crate::runtime::{DistStats, InstantDistributedScheduler};
    pub use crate::scheduler::ThemisScheduler;
}

pub use prelude::*;

//! The actor-based distributed Themis scheduler: the §3.1 auction as an
//! event-driven message protocol on a causal [`Network`].
//!
//! Where the legacy
//! [`InstantDistributedScheduler`](crate::runtime::InstantDistributedScheduler)
//! resolves a whole five-step round at a single engine instant, this
//! module runs the Arbiter and one Agent per app as **actors**: every
//! protocol step is a message with a real delivery time
//! (`send + size/bandwidth + delay + jitter`), and the round advances only
//! when deliveries and deadline timers fire. Rounds therefore overlap in
//! simulated time — a slow Agent's Bid genuinely races the bid deadline,
//! a `Win` notification can still be in flight while the next round's ρ
//! queries go out, and the fault family the instant design cannot express
//! (partitions healing mid-round, message reordering via jitter, Arbiter
//! failover, bandwidth backpressure) becomes expressible.
//!
//! ## Round state machine (Arbiter side)
//!
//! ```text
//! start round r ── QueryRho ──▶ CollectRho ── all ρ in, or rho-deadline ──▶
//!   CollectBids (Offer to worst-off 1−f) ── all bids in, or bid-deadline ──▶
//!   auction → reserve GPUs → Win ──▶ pending wins ── Win delivered ──▶ grant
//!                                        └─ win-deadline, Win lost ──▶ void
//! ```
//!
//! The phase deadlines split the 30 s bid deadline: ρ reports must arrive
//! by `start + deadline/2`, bids and Wins by `start + deadline`. A round
//! completes iff each one-way leg fits its phase, i.e. one-way delays up
//! to `deadline/4` succeed; anything slower degrades to missed rounds,
//! never to a wedged engine.
//!
//! GPUs granted by an auction are **reserved** until their `Win` is
//! delivered (grant takes effect) or the win deadline passes (grant is
//! voided, GPUs return to the next offer) — a lost `Win` can delay an
//! app, never leak a GPU, even across an Arbiter failover that voids all
//! in-flight wins.
//!
//! With [`FaultConfig::arbiter_service_time`] the Arbiter's mailbox
//! becomes a single-server queue: every message to or from the Arbiter
//! pays one service slot, so an N-agent ρ fan-in queues for N slots and
//! replies can miss the phase deadline purely from congestion.
//! [`FaultConfig::arbiter_batch`] opts this scheduler into coalesced
//! messages — chunked `QueryRho` fan-out, [`ArbiterToAgent::OfferBatch`],
//! [`AgentToArbiter::RhoBatch`] (forwarded by the chunk member whose
//! delivery completed the chunk) and [`ArbiterToAgent::WinBatch`] — which
//! cut the per-round Arbiter message count from O(apps) to
//! O(apps / batch) without changing auction semantics.
//!
//! With [`FaultConfig::reliable`] every message delivers instantly, the
//! whole cascade collapses back into one engine instant, and the decision
//! stream is identical to the in-process
//! [`ThemisScheduler`](crate::scheduler::ThemisScheduler) —
//! `tests/dist_equivalence.rs` pins that over the smoke matrix. Every
//! transport decision can be transcribed to a
//! [`MessageLog`](themis_protocol::log::MessageLog) and replayed
//! byte-identically; see [`LogMode`].

use crate::agent::Agent;
use crate::arbiter::{AppStatus, Arbiter};
use crate::config::ThemisConfig;
use crate::runtime::DistStats;
use crate::scheduler::materialize_grant;
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::alloc::FreeVector;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, GpuId, JobId};
use themis_cluster::time::Time;
use themis_protocol::actor::{ActorId, TimerWheel};
use themis_protocol::bid::BidTable;
use themis_protocol::log::SendFate;
use themis_protocol::messages::{
    AgentToArbiter, ArbiterToAgent, OfferMsg, RhoReport, WinNotification,
};
use themis_protocol::network::{LogMode, NetMsg, Network};
use themis_protocol::transport::FaultConfig;
use themis_sim::arena::AppArena;
use themis_sim::scheduler::{AllocationDecision, ControlPlaneStats, Scheduler};

/// Every protocol message, wrapped so one [`Network`] carries both
/// directions. Sizes are abstract units for the bandwidth model: offers
/// and bid tables are bulky, queries and acks are small.
#[derive(Debug, Clone)]
enum ProtoMsg {
    ToAgent(ArbiterToAgent),
    ToArbiter(AgentToArbiter),
}

impl NetMsg for ProtoMsg {
    fn log_tag(&self) -> String {
        match self {
            ProtoMsg::ToAgent(ArbiterToAgent::QueryRho { round }) => {
                format!("query-rho:r{round}")
            }
            ProtoMsg::ToAgent(ArbiterToAgent::Offer(o)) => format!("offer:r{}", o.round),
            ProtoMsg::ToAgent(ArbiterToAgent::Win(w)) => {
                format!("win:r{}:a{}:j{}", w.round, w.app.0, w.job.0)
            }
            ProtoMsg::ToAgent(ArbiterToAgent::LeaseExpired { gpus, .. }) => {
                format!("lease-expired:g{}", gpus.len())
            }
            ProtoMsg::ToAgent(ArbiterToAgent::OfferBatch { offer, apps }) => {
                format!("offer-batch:r{}:n{}", offer.round, apps.len())
            }
            ProtoMsg::ToAgent(ArbiterToAgent::WinBatch { round, wins }) => {
                format!("win-batch:r{}:n{}", round, wins.len())
            }
            ProtoMsg::ToArbiter(AgentToArbiter::Rho(r)) => {
                format!("rho:r{}:a{}", r.round, r.app.0)
            }
            ProtoMsg::ToArbiter(AgentToArbiter::RhoBatch { round, reports }) => {
                format!("rho-batch:r{}:n{}", round, reports.len())
            }
            ProtoMsg::ToArbiter(AgentToArbiter::Bid { round, table }) => {
                format!("bid:r{}:a{}", round, table.app.0)
            }
            ProtoMsg::ToArbiter(AgentToArbiter::Pass { round, app }) => {
                format!("pass:r{}:a{}", round, app.0)
            }
        }
    }

    fn size_units(&self) -> u64 {
        match self {
            ProtoMsg::ToAgent(ArbiterToAgent::Offer(_))
            | ProtoMsg::ToAgent(ArbiterToAgent::OfferBatch { .. })
            | ProtoMsg::ToArbiter(AgentToArbiter::Bid { .. }) => 4,
            ProtoMsg::ToAgent(ArbiterToAgent::Win(_)) => 2,
            // A batch is as bulky as the messages it coalesces — batching
            // saves per-message service slots, never wire bytes.
            ProtoMsg::ToAgent(ArbiterToAgent::WinBatch { wins, .. }) => {
                (2 * wins.len() as u64).max(1)
            }
            ProtoMsg::ToArbiter(AgentToArbiter::RhoBatch { reports, .. }) => {
                (reports.len() as u64).max(1)
            }
            _ => 1,
        }
    }
}

/// Protocol deadline timers, keyed by the round they belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deadline {
    /// End of the ρ-collection phase of a round.
    Rho(u64),
    /// End of the bid-collection phase (the auction runs no later than
    /// this).
    Bid(u64),
    /// Win notifications of a round not delivered by now void their
    /// grants.
    Win(u64),
}

impl Deadline {
    fn tag(self) -> String {
        match self {
            Deadline::Rho(r) => format!("rho-deadline:r{r}"),
            Deadline::Bid(r) => format!("bid-deadline:r{r}"),
            Deadline::Win(r) => format!("win-deadline:r{r}"),
        }
    }
}

/// The Agent actor: per-app protocol state.
struct AgentActor {
    agent: Agent,
    /// The actor is offline through the end of round `crashed_until - 1`.
    crashed_until: u64,
    /// Lease-expiry notices observed over the actor's lifetime.
    lease_notices: u64,
}

/// Which phase of a round the Arbiter is collecting replies for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    CollectRho,
    CollectBids,
}

/// One chunk of a batched QueryRho fan-out: how many of the chunk's
/// deliveries are still outstanding, and the ρ reports collected so far.
/// When the count hits zero the chunk member that completed it forwards
/// the reports as one [`AgentToArbiter::RhoBatch`].
struct RhoChunk {
    /// QueryRho deliveries (per the send fates) not yet processed. Drops
    /// never count — a fully-dropped chunk simply never reports, and the
    /// ρ deadline absorbs it.
    outstanding: usize,
    reports: Vec<RhoReport>,
}

/// Arbiter-side state of the round in flight (at most one).
struct RoundState {
    round: u64,
    phase: Phase,
    /// The resources offered this round (free GPUs minus reservations at
    /// round start).
    offer: FreeVector,
    /// Hard end of the round: bids and Wins must land by here.
    bid_deadline: Time,
    /// Agents queried for ρ this round.
    queried: Vec<AppId>,
    rhos: BTreeMap<AppId, f64>,
    /// Batched-mode ρ coalescing state (empty when batching is off).
    rho_chunks: Vec<RhoChunk>,
    /// Which chunk each queried app belongs to.
    chunk_of: BTreeMap<AppId, usize>,
    /// World view frozen when the bid phase opened.
    statuses: Vec<AppStatus>,
    participants: Vec<AppId>,
    tables: BTreeMap<AppId, BidTable>,
    passed: BTreeSet<AppId>,
}

/// A grant whose `Win` notification is still in flight.
struct PendingWin {
    round: u64,
    decision: AllocationDecision,
}

/// The Themis cross-app scheduler running each auction round as an
/// event-driven actor protocol (see the module docs).
pub struct DistributedThemisScheduler {
    config: ThemisConfig,
    fault: FaultConfig,
    bid_deadline: Time,
    arbiter: Arbiter,
    /// Next round number to start (round numbering survives failover).
    round: u64,
    agents: BTreeMap<AppId, AgentActor>,
    net: Network<ProtoMsg>,
    timers: TimerWheel<Deadline>,
    state: Option<RoundState>,
    /// Grants awaiting Win delivery; their GPUs are in `reserved`.
    pending_wins: Vec<PendingWin>,
    /// Confirmed decisions not yet handed to the engine.
    ready: Vec<AllocationDecision>,
    /// GPUs promised to in-flight Wins: excluded from offers and shadows
    /// until the Win is confirmed or voided.
    reserved: BTreeMap<GpuId, (AppId, JobId)>,
    /// An active partition heals at the start of this round.
    partition_until: u64,
    /// Per-app GPU sets as last observed, for LeaseExpired notifications.
    observed_gpus: BTreeMap<AppId, BTreeSet<GpuId>>,
    stats: DistStats,
}

impl std::fmt::Debug for DistributedThemisScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedThemisScheduler")
            .field("config", &self.config)
            .field("fault", &self.fault)
            .field("round", &self.round)
            .field("pending_wins", &self.pending_wins.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl DistributedThemisScheduler {
    /// Creates an actor-based distributed scheduler with the given Themis
    /// tunables and network fault model. `FaultConfig::reliable()`
    /// reproduces the in-process
    /// [`ThemisScheduler`](crate::scheduler::ThemisScheduler) exactly.
    pub fn new(config: ThemisConfig, fault: FaultConfig) -> Self {
        Self::with_log_mode(config, fault, LogMode::Off)
    }

    /// Like [`new`](Self::new), but transcribing (or replaying) every
    /// transport decision per the given [`LogMode`].
    pub fn with_log_mode(config: ThemisConfig, fault: FaultConfig, mode: LogMode) -> Self {
        DistributedThemisScheduler {
            arbiter: Arbiter::new(config),
            fault,
            bid_deadline: Time::seconds(30.0),
            round: 0,
            agents: BTreeMap::new(),
            net: Network::new(fault, mode),
            timers: TimerWheel::new(),
            state: None,
            pending_wins: Vec::new(),
            ready: Vec::new(),
            reserved: BTreeMap::new(),
            partition_until: 0,
            observed_gpus: BTreeMap::new(),
            stats: DistStats::default(),
            config,
        }
    }

    /// Overrides the per-round bid deadline (default 30 s). The ρ phase
    /// ends at half of it; one-way delays up to a quarter of it complete
    /// rounds.
    #[must_use]
    pub fn with_bid_deadline(mut self, deadline: Time) -> Self {
        assert!(deadline > Time::ZERO, "bid deadline must be positive");
        self.bid_deadline = deadline;
        self
    }

    /// The Themis configuration in use.
    pub fn config(&self) -> &ThemisConfig {
        &self.config
    }

    /// The network fault model in use.
    pub fn fault(&self) -> &FaultConfig {
        &self.fault
    }

    /// Message-flow counters accumulated so far.
    pub fn stats(&self) -> &DistStats {
        &self.stats
    }

    /// Delivery/drop counters of the underlying network.
    pub fn net_stats(&self) -> themis_protocol::network::NetStats {
        self.net.stats()
    }

    /// Rounds started so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// GPUs currently reserved for in-flight Win notifications.
    pub fn reserved_gpus(&self) -> usize {
        self.reserved.len()
    }

    /// The free vector minus GPUs promised to in-flight or just-confirmed
    /// grants the engine has not applied yet.
    fn effective_free(&self, cluster: &Cluster) -> FreeVector {
        let mut free = cluster.free_vector();
        let spec = cluster.spec();
        let withheld = self
            .reserved
            .keys()
            .copied()
            .chain(self.ready.iter().flat_map(|d| d.gpus.iter().copied()));
        for gpu in withheld {
            if let Some(machine) = spec.machine_of(gpu) {
                let n = free.on_machine(machine);
                free.set(machine, n.saturating_sub(1));
            }
        }
        free
    }

    fn cancel_timer(&mut self, kind: Deadline) {
        self.timers.retain(|t| *t != kind);
    }

    fn arm_timer(&mut self, now: Time, fire_at: Time, kind: Deadline) {
        self.net.note_timer(now, fire_at, &kind.tag());
        self.timers.schedule(fire_at, kind);
    }

    /// Processes every network delivery and timer due at or before `now`,
    /// in global time order (deliveries before timers at equal times),
    /// until the actor system is quiescent.
    fn pump(&mut self, now: Time, cluster: &Cluster, apps: &AppArena) {
        loop {
            let net_at = self.net.next_event_time().filter(|t| *t <= now);
            let timer_at = self.timers.next_time().filter(|t| *t <= now);
            let deliver_first = match (net_at, timer_at) {
                (None, None) => return,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(n), Some(t)) => n <= t,
            };
            if deliver_first {
                let (at, _seq, src, dst, msg) =
                    self.net.pop_due(now).expect("due delivery observed");
                self.deliver(at, src, dst, msg, cluster, apps);
            } else {
                let (at, kind) = self.timers.pop_due(now).expect("due timer observed");
                self.fire_timer(at, kind, cluster, apps);
            }
        }
    }

    /// Dispatches one delivered message to its destination actor.
    fn deliver(
        &mut self,
        at: Time,
        _src: ActorId,
        dst: ActorId,
        msg: ProtoMsg,
        cluster: &Cluster,
        apps: &AppArena,
    ) {
        match (dst.app(), msg) {
            (None, ProtoMsg::ToArbiter(msg)) => self.arbiter_receive(at, msg, cluster, apps),
            (Some(app), ProtoMsg::ToAgent(msg)) => self.agent_receive(at, app, msg, cluster, apps),
            // A message routed to the wrong kind of actor cannot happen
            // with this scheduler's send sites.
            _ => unreachable!("misrouted protocol message"),
        }
    }

    /// The Agent actor's handler: answer ρ queries, bid on offers,
    /// acknowledge Wins (by confirming the pending grant) and count lease
    /// notices. A crashed agent ignores round-scoped traffic — except that
    /// in batched mode even a silent agent's QueryRho delivery still
    /// decrements its chunk's outstanding count (the chunk must not wait
    /// forever for a reply that will never exist).
    fn agent_receive(
        &mut self,
        at: Time,
        app: AppId,
        msg: ArbiterToAgent,
        cluster: &Cluster,
        apps: &AppArena,
    ) {
        let Some(actor) = self.agents.get_mut(&app) else {
            return;
        };
        if let ArbiterToAgent::LeaseExpired { .. } = msg {
            actor.lease_notices += 1;
            return;
        }
        let round = match &msg {
            ArbiterToAgent::QueryRho { round } => *round,
            ArbiterToAgent::Offer(o) => o.round,
            ArbiterToAgent::OfferBatch { offer, .. } => offer.round,
            ArbiterToAgent::Win(w) => w.round,
            ArbiterToAgent::WinBatch { round, .. } => *round,
            ArbiterToAgent::LeaseExpired { .. } => unreachable!("handled above"),
        };
        let crashed = actor.crashed_until > round;
        if let ArbiterToAgent::QueryRho { round } = msg {
            // A report exists only from a live, unfinished agent; crashed
            // or finished ones stay silent (their chunk slot still
            // resolves below).
            let report = match apps.get(app) {
                Some(runtime) if !crashed && !runtime.is_finished() => {
                    let rho = actor.agent.current_rho(at, runtime, cluster).rho;
                    Some(RhoReport { round, app, rho })
                }
                _ => None,
            };
            if self.fault.arbiter_batch > 0 {
                self.note_rho_chunk_delivery(at, round, app, report);
            } else if let Some(report) = report {
                self.net.send(
                    at,
                    ActorId::agent(app),
                    ActorId::ARBITER,
                    ProtoMsg::ToArbiter(AgentToArbiter::Rho(report)),
                );
            }
            return;
        }
        if crashed {
            // Crashed for this round: the message evaporates (a lost Win
            // is voided by the win deadline, never granted blind).
            return;
        }
        let Some(runtime) = apps.get(app) else {
            return;
        };
        match msg {
            ArbiterToAgent::Offer(offer) | ArbiterToAgent::OfferBatch { offer, .. } => {
                // A batched offer reads exactly like an individual one: the
                // recipient is addressed by construction, the app list only
                // names the chunk.
                if runtime.is_finished() {
                    return;
                }
                let actor = self.agents.get_mut(&app).expect("actor exists");
                let table = actor
                    .agent
                    .prepare_bid(at, runtime, cluster, &offer.resources);
                let reply = if table.is_empty() {
                    AgentToArbiter::Pass { round, app }
                } else {
                    AgentToArbiter::Bid { round, table }
                };
                self.net.send(
                    at,
                    ActorId::agent(app),
                    ActorId::ARBITER,
                    ProtoMsg::ToArbiter(reply),
                );
            }
            ArbiterToAgent::Win(win) => self.confirm_win(&win),
            ArbiterToAgent::WinBatch { wins, .. } => {
                // Apply only this agent's entries; the rest of the batch
                // belongs to the chunk's other winners.
                for win in wins.iter().filter(|w| w.app == app) {
                    self.confirm_win(win);
                }
            }
            ArbiterToAgent::QueryRho { .. } | ArbiterToAgent::LeaseExpired { .. } => {
                unreachable!("handled above")
            }
        }
    }

    /// Confirms one delivered win: move the grant from pending to ready and
    /// release its reservation (the engine will allocate the GPUs for real
    /// when we return them).
    fn confirm_win(&mut self, win: &WinNotification) {
        if let Some(idx) = self.pending_wins.iter().position(|p| {
            p.round == win.round && p.decision.app == win.app && p.decision.job == win.job
        }) {
            let pending = self.pending_wins.remove(idx);
            for gpu in &pending.decision.gpus {
                self.reserved.remove(gpu);
            }
            let round = pending.round;
            self.ready.push(pending.decision);
            if !self.pending_wins.iter().any(|p| p.round == round) {
                self.cancel_timer(Deadline::Win(round));
            }
        } else {
            self.stats.stale_messages += 1;
        }
    }

    /// Batched-mode chunk bookkeeping for one QueryRho delivery: record the
    /// report (if the agent produced one), and when the chunk's last
    /// outstanding delivery resolves, forward the collected reports to the
    /// Arbiter as a single [`AgentToArbiter::RhoBatch`] from the completing
    /// live member. A chunk whose members were all silent sends nothing.
    fn note_rho_chunk_delivery(
        &mut self,
        at: Time,
        round: u64,
        app: AppId,
        report: Option<RhoReport>,
    ) {
        let Some(state) = self.state.as_mut().filter(|s| s.round == round) else {
            // The round moved on (ρ deadline passed): a report now would be
            // stale at the Arbiter anyway, so the delivery just evaporates.
            return;
        };
        let Some(&idx) = state.chunk_of.get(&app) else {
            return;
        };
        let chunk = &mut state.rho_chunks[idx];
        if chunk.outstanding == 0 {
            return;
        }
        chunk.outstanding -= 1;
        if let Some(report) = report {
            chunk.reports.push(report);
        }
        if chunk.outstanding == 0 && !chunk.reports.is_empty() {
            let mut reports = std::mem::take(&mut chunk.reports);
            reports.sort_by_key(|r| r.app);
            let src = ActorId::agent(reports.last().expect("nonempty").app);
            self.net.send(
                at,
                src,
                ActorId::ARBITER,
                ProtoMsg::ToArbiter(AgentToArbiter::RhoBatch { round, reports }),
            );
        }
    }

    /// The Arbiter actor's handler: collect ρ reports and bids for the
    /// round in flight; anything else is stale.
    fn arbiter_receive(
        &mut self,
        at: Time,
        msg: AgentToArbiter,
        cluster: &Cluster,
        apps: &AppArena,
    ) {
        let Some((round, phase)) = self.state.as_ref().map(|s| (s.round, s.phase)) else {
            self.stats.stale_messages += 1;
            return;
        };
        match msg {
            AgentToArbiter::Rho(report) if report.round == round && phase == Phase::CollectRho => {
                let state = self.state.as_mut().expect("round in flight");
                state.rhos.insert(report.app, report.rho);
                if state.rhos.len() == state.queried.len() {
                    self.advance_to_bids(at, cluster, apps);
                }
            }
            AgentToArbiter::RhoBatch { round: r, reports }
                if r == round && phase == Phase::CollectRho =>
            {
                let state = self.state.as_mut().expect("round in flight");
                for report in reports {
                    state.rhos.insert(report.app, report.rho);
                }
                if state.rhos.len() == state.queried.len() {
                    self.advance_to_bids(at, cluster, apps);
                }
            }
            AgentToArbiter::Bid { round: r, table }
                if r == round && phase == Phase::CollectBids =>
            {
                let state = self.state.as_mut().expect("round in flight");
                state.tables.insert(table.app, table);
                self.try_run_auction(at, cluster, apps);
            }
            AgentToArbiter::Pass { round: r, app } if r == round && phase == Phase::CollectBids => {
                let state = self.state.as_mut().expect("round in flight");
                state.passed.insert(app);
                self.try_run_auction(at, cluster, apps);
            }
            _ => self.stats.stale_messages += 1,
        }
    }

    fn fire_timer(&mut self, at: Time, kind: Deadline, cluster: &Cluster, apps: &AppArena) {
        match kind {
            Deadline::Rho(round) => {
                if self
                    .state
                    .as_ref()
                    .is_some_and(|s| s.round == round && s.phase == Phase::CollectRho)
                {
                    self.advance_to_bids(at, cluster, apps);
                }
            }
            Deadline::Bid(round) => {
                if self
                    .state
                    .as_ref()
                    .is_some_and(|s| s.round == round && s.phase == Phase::CollectBids)
                {
                    self.run_auction(at, cluster, apps);
                }
            }
            Deadline::Win(round) => self.void_pending_wins_of_round(round),
        }
    }

    /// Voids every still-pending win of `round`: the GPUs return to the
    /// pool (unreserved) and are re-auctioned in a later round.
    fn void_pending_wins_of_round(&mut self, round: u64) {
        let before = self.pending_wins.len();
        self.pending_wins.retain(|p| {
            if p.round != round {
                return true;
            }
            for gpu in &p.decision.gpus {
                self.reserved.remove(gpu);
            }
            false
        });
        self.stats.voided_wins += (before - self.pending_wins.len()) as u64;
    }

    /// Closes the ρ phase: freeze the world view from the reports that
    /// made it, then offer to the worst-off `1 − f` fraction.
    fn advance_to_bids(&mut self, at: Time, cluster: &Cluster, apps: &AppArena) {
        let mut state = self.state.take().expect("round in flight");
        let round = state.round;
        self.cancel_timer(Deadline::Rho(round));
        state.phase = Phase::CollectBids;
        let missed = state
            .queried
            .iter()
            .filter(|app| !state.rhos.contains_key(app))
            .count() as u64;
        self.stats.missed_rho_reports += missed;
        if missed == 0 {
            self.stats.completed_rounds += 1;
        }
        let mut statuses: Vec<AppStatus> = Vec::new();
        for (&app, &rho) in &state.rhos {
            let Some(runtime) = apps.get(app) else {
                continue;
            };
            if !runtime.is_schedulable(at) {
                continue;
            }
            statuses.push(AppStatus {
                app,
                rho,
                unmet_demand: runtime.unmet_demand(cluster),
                footprint: cluster.gpus_of_app(app).machines(cluster.spec()),
            });
        }
        if statuses.iter().all(|s| s.unmet_demand == 0) {
            // Nobody needs anything (or nobody answered): the round ends
            // without an auction, exactly like the in-process early
            // return. `state` is dropped here.
            return;
        }
        let participants = self.arbiter.select_participants(&statuses);
        let offer_msg = OfferMsg {
            round,
            now: at,
            resources: state.offer.clone(),
            reply_by: state.bid_deadline,
        };
        let bid_deadline = state.bid_deadline;
        state.statuses = statuses;
        state.participants = participants.clone();
        self.state = Some(state);
        let batch = self.fault.arbiter_batch as usize;
        if batch > 0 {
            for chunk in participants.chunks(batch) {
                let dsts: Vec<ActorId> = chunk.iter().map(|&a| ActorId::agent(a)).collect();
                self.net.send_multi(
                    at,
                    ActorId::ARBITER,
                    &dsts,
                    ProtoMsg::ToAgent(ArbiterToAgent::OfferBatch {
                        offer: offer_msg.clone(),
                        apps: chunk.to_vec(),
                    }),
                );
            }
        } else {
            for &app in &participants {
                self.net.send(
                    at,
                    ActorId::ARBITER,
                    ActorId::agent(app),
                    ProtoMsg::ToAgent(ArbiterToAgent::Offer(offer_msg.clone())),
                );
            }
        }
        if participants.is_empty() {
            // Vacuously complete: run the (empty) auction right away so
            // the Arbiter's round/RNG stream stays aligned with the
            // in-process scheduler.
            self.run_auction(at, cluster, apps);
        } else {
            self.arm_timer(at, bid_deadline, Deadline::Bid(round));
        }
    }

    /// Runs the auction early if every participant has bid or passed.
    fn try_run_auction(&mut self, at: Time, cluster: &Cluster, apps: &AppArena) {
        let state = self.state.as_ref().expect("round in flight");
        let complete = state
            .participants
            .iter()
            .all(|app| state.tables.contains_key(app) || state.passed.contains(app));
        if complete {
            let round = state.round;
            self.cancel_timer(Deadline::Bid(round));
            self.run_auction(at, cluster, apps);
        }
    }

    /// Step 5: the partial-allocation auction over whatever arrived,
    /// grants reserved behind in-flight Win notifications.
    fn run_auction(&mut self, at: Time, cluster: &Cluster, apps: &AppArena) {
        let mut state = self.state.take().expect("round in flight");
        let round = state.round;
        for app in &state.participants {
            if !state.tables.contains_key(app) && !state.passed.contains(app) {
                self.stats.missed_bids += 1;
            }
        }
        // Bids in participant (worst-ρ-first) order, as the in-process
        // scheduler submits them.
        let bids: Vec<BidTable> = state
            .participants
            .iter()
            .filter_map(|app| state.tables.remove(app))
            .collect();
        let outcome = self.arbiter.run_auction(
            &state.offer,
            &state.statuses,
            &state.participants,
            &bids,
            cluster.spec(),
        );
        // The shadow starts from the *current* cluster and pre-allocates
        // every GPU already promised elsewhere (in-flight wins, confirmed
        // but unapplied grants), so overlapping rounds can never hand out
        // the same GPU twice.
        let mut shadow = cluster.view();
        for (&gpu, &(app, job)) in &self.reserved {
            let _ = shadow.allocate(gpu, app, job);
        }
        for decision in &self.ready {
            for &gpu in &decision.gpus {
                let _ = shadow.allocate(gpu, decision.app, decision.job);
            }
        }
        let mut decisions = Vec::new();
        for (app, grant) in outcome.into_all_grants() {
            let Some(runtime) = apps.get(app) else {
                continue;
            };
            let agent = &self.agents.get(&app).expect("winner has an actor").agent;
            decisions.extend(materialize_grant(agent, &mut shadow, runtime, &grant));
        }
        // Notify winners; each grant stays reserved until its Win lands.
        let lease_expires_at = at + self.config.lease_duration;
        let any = !decisions.is_empty();
        let win_of = |d: &AllocationDecision| WinNotification {
            round,
            app: d.app,
            job: d.job,
            gpus: d.gpus.clone(),
            lease_expires_at,
        };
        let batch = self.fault.arbiter_batch as usize;
        if batch > 0 {
            // Chunk the *winners* (in decision order); each chunk's batch
            // carries every win bound for a chunk member, and each member
            // filters out its own on delivery.
            let mut winners: Vec<AppId> = Vec::new();
            for d in &decisions {
                if !winners.contains(&d.app) {
                    winners.push(d.app);
                }
            }
            for chunk in winners.chunks(batch) {
                let wins: Vec<WinNotification> = decisions
                    .iter()
                    .filter(|d| chunk.contains(&d.app))
                    .map(win_of)
                    .collect();
                let dsts: Vec<ActorId> = chunk.iter().map(|&a| ActorId::agent(a)).collect();
                self.net.send_multi(
                    at,
                    ActorId::ARBITER,
                    &dsts,
                    ProtoMsg::ToAgent(ArbiterToAgent::WinBatch { round, wins }),
                );
            }
        } else {
            for decision in &decisions {
                self.net.send(
                    at,
                    ActorId::ARBITER,
                    ActorId::agent(decision.app),
                    ProtoMsg::ToAgent(ArbiterToAgent::Win(win_of(decision))),
                );
            }
        }
        for decision in decisions {
            for &gpu in &decision.gpus {
                self.reserved.insert(gpu, (decision.app, decision.job));
            }
            self.pending_wins.push(PendingWin { round, decision });
        }
        if any {
            self.arm_timer(at, state.bid_deadline, Deadline::Win(round));
        }
    }

    /// Starts a new round if none is in flight and there is anything left
    /// to offer; applies the failover / partition / crash schedules and
    /// lease notices at the round boundary.
    fn maybe_start_round(&mut self, now: Time, cluster: &Cluster, apps: &AppArena) {
        if self.state.is_some() {
            return;
        }
        let offer = self.effective_free(cluster);
        if offer.is_empty() {
            return;
        }
        let round = self.round;
        self.round += 1;
        self.stats.rounds += 1;

        let schedulable: Vec<AppId> = apps
            .iter()
            .filter(|a| a.is_schedulable(now))
            .map(|a| a.id())
            .collect();
        for &app in &schedulable {
            self.agents.entry(app).or_insert_with(|| AgentActor {
                agent: Agent::new(app, &self.config),
                crashed_until: 0,
                lease_notices: 0,
            });
        }
        self.apply_failover_schedule(round);
        self.apply_partition_schedule(round);
        self.apply_crash_schedule(round);
        self.send_lease_notices(now, cluster);

        let bid_deadline = now + self.bid_deadline;
        let rho_deadline = now + self.bid_deadline * 0.5;
        let batch = self.fault.arbiter_batch as usize;
        let mut rho_chunks: Vec<RhoChunk> = Vec::new();
        let mut chunk_of: BTreeMap<AppId, usize> = BTreeMap::new();
        if batch > 0 {
            for chunk in schedulable.chunks(batch) {
                let dsts: Vec<ActorId> = chunk.iter().map(|&a| ActorId::agent(a)).collect();
                let fates = self.net.send_multi(
                    now,
                    ActorId::ARBITER,
                    &dsts,
                    ProtoMsg::ToAgent(ArbiterToAgent::QueryRho { round }),
                );
                // Only deliveries can resolve a chunk slot: a dropped query
                // never arrives, so it must not be waited for.
                let outstanding = fates
                    .iter()
                    .filter(|f| matches!(f, SendFate::Deliver { .. }))
                    .count();
                let idx = rho_chunks.len();
                for &app in chunk {
                    chunk_of.insert(app, idx);
                }
                rho_chunks.push(RhoChunk {
                    outstanding,
                    reports: Vec::new(),
                });
            }
        } else {
            for &app in &schedulable {
                self.net.send(
                    now,
                    ActorId::ARBITER,
                    ActorId::agent(app),
                    ProtoMsg::ToAgent(ArbiterToAgent::QueryRho { round }),
                );
            }
        }
        self.state = Some(RoundState {
            round,
            phase: Phase::CollectRho,
            offer,
            bid_deadline,
            queried: schedulable,
            rhos: BTreeMap::new(),
            rho_chunks,
            chunk_of,
            statuses: Vec::new(),
            participants: Vec::new(),
            tables: BTreeMap::new(),
            passed: BTreeSet::new(),
        });
        if self.state.as_ref().expect("just set").queried.is_empty() {
            // No one to ask: close the ρ phase immediately (the round
            // ends without an auction, like the in-process early return).
            self.advance_to_bids(now, cluster, apps);
        } else {
            self.arm_timer(now, rho_deadline, Deadline::Rho(round));
        }
    }

    /// Arbiter failover: the standby takes over with no memory of
    /// in-flight Wins — they are voided (GPUs return to the pool), and
    /// the auction state is rebuilt from scratch.
    fn apply_failover_schedule(&mut self, round: u64) {
        if self.fault.failover_period == 0 || !round.is_multiple_of(self.fault.failover_period) {
            return;
        }
        self.stats.failovers += 1;
        let voided = self.pending_wins.len() as u64;
        for pending in self.pending_wins.drain(..) {
            for gpu in &pending.decision.gpus {
                self.reserved.remove(gpu);
            }
        }
        self.stats.voided_wins += voided;
        self.timers.retain(|t| !matches!(t, Deadline::Win(_)));
        self.arbiter = Arbiter::new(self.config);
    }

    /// Partition injection: every `partition_period`-th round the upper
    /// half of the Agents (by app id) is cut off for `partition_rounds`
    /// rounds, then the partition heals. Messages already in flight when
    /// the cut happens still deliver — only traffic crossing an *active*
    /// partition is lost.
    fn apply_partition_schedule(&mut self, round: u64) {
        if self.fault.partition_period == 0 || self.fault.partition_rounds == 0 {
            return;
        }
        if !self.net.isolated().is_empty() && round >= self.partition_until {
            self.net.heal_partition();
        }
        if round.is_multiple_of(self.fault.partition_period) && self.agents.len() >= 2 {
            let ids: Vec<AppId> = self.agents.keys().copied().collect();
            let isolated: BTreeSet<ActorId> = ids[ids.len() / 2..]
                .iter()
                .map(|&app| ActorId::agent(app))
                .collect();
            self.net.set_partition(isolated);
            self.partition_until = round + self.fault.partition_rounds;
        }
    }

    /// Crash injection: every `crash_period`-th round, the next actor in
    /// app-id order goes offline for `crash_rounds` rounds.
    fn apply_crash_schedule(&mut self, round: u64) {
        if self.fault.crash_period == 0 || self.fault.crash_rounds == 0 || self.agents.is_empty() {
            return;
        }
        if round.is_multiple_of(self.fault.crash_period) {
            let victim_idx = (round / self.fault.crash_period) as usize % self.agents.len();
            let victim = *self.agents.keys().nth(victim_idx).expect("index in range");
            let actor = self.agents.get_mut(&victim).expect("actor exists");
            actor.crashed_until = actor.crashed_until.max(round + self.fault.crash_rounds);
        }
        self.stats.crashed_agent_rounds += self
            .agents
            .values()
            .filter(|a| a.crashed_until > round)
            .count() as u64;
    }

    /// Notifies Agents of GPUs they lost since the previous round (lease
    /// expiry, job completion or HPO kill — all reclamations look the
    /// same from the Agent's side).
    fn send_lease_notices(&mut self, now: Time, cluster: &Cluster) {
        let apps: Vec<AppId> = self.agents.keys().copied().collect();
        for app in apps {
            let current: BTreeSet<GpuId> = cluster.gpus_of_app(app).iter().collect();
            if let Some(previous) = self.observed_gpus.get(&app) {
                let lost: Vec<GpuId> = previous.difference(&current).copied().collect();
                if !lost.is_empty() {
                    self.net.send(
                        now,
                        ActorId::ARBITER,
                        ActorId::agent(app),
                        ProtoMsg::ToAgent(ArbiterToAgent::LeaseExpired {
                            gpus: lost,
                            at: now,
                        }),
                    );
                }
            }
            self.observed_gpus.insert(app, current);
        }
    }

    #[cfg(test)]
    fn lease_notices(&self, app: AppId) -> u64 {
        self.agents.get(&app).map_or(0, |a| a.lease_notices)
    }
}

impl Scheduler for DistributedThemisScheduler {
    fn name(&self) -> &'static str {
        "themis-dist"
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        // Drive the actors through everything due by now (message
        // deliveries, phase deadlines), possibly completing in-flight
        // rounds…
        self.pump(now, cluster, apps);
        // …then start a new round if none is in flight and something is
        // free. With zero-latency reliable links the whole round cascades
        // through this second pump within the same instant.
        self.maybe_start_round(now, cluster, apps);
        self.pump(now, cluster, apps);
        std::mem::take(&mut self.ready)
    }

    fn next_wakeup(&self) -> Option<Time> {
        match (self.net.next_event_time(), self.timers.next_time()) {
            (Some(n), Some(t)) => Some(n.min(t)),
            (n, t) => n.or(t),
        }
    }

    /// `schedule` doubles as the actor-runtime pump: even a round that can
    /// grant nothing must deliver due messages and fire timers, so skipping
    /// the call would change behaviour.
    fn supports_incremental(&self) -> bool {
        false
    }

    fn control_stats(&self) -> Option<ControlPlaneStats> {
        Some(self.stats.control())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ThemisScheduler;
    use themis_cluster::topology::ClusterSpec;
    use themis_sim::app_runtime::AppRuntime;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn world(napps: u32) -> (Cluster, AppArena) {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let apps: AppArena = (0..napps)
            .map(|i| {
                let job = JobSpec::new(JobId(0), ModelArch::ResNet50, 400.0, Time::minutes(0.1), 4);
                AppRuntime::with_default_hpo(AppSpec::single_job(AppId(i), Time::ZERO, job))
            })
            .collect();
        (cluster, apps)
    }

    #[test]
    fn reliable_round_matches_in_process_decisions() {
        let (cluster, apps) = world(3);
        let config = ThemisConfig::default().with_seed(7);
        let mut in_process = ThemisScheduler::new(config);
        let mut dist = DistributedThemisScheduler::new(config, FaultConfig::reliable());
        let now = Time::minutes(5.0);
        let a = in_process.schedule(now, &cluster, &apps);
        let b = dist.schedule(now, &cluster, &apps);
        assert_eq!(a, b, "reliable actors must reproduce in-process Themis");
        assert!(!b.is_empty());
        // The actor system is quiescent: no wakeup needed, nothing
        // reserved or pending.
        assert_eq!(dist.next_wakeup(), None);
        assert_eq!(dist.reserved_gpus(), 0);
        let stats = dist.stats();
        assert_eq!(stats.missed_rho_reports, 0);
        assert_eq!(stats.missed_bids, 0);
        assert_eq!(stats.voided_wins, 0);
    }

    /// With a 5 s one-way delay every leg fits its phase: the round
    /// completes 25 s after it started, driven by wakeup-time `schedule`
    /// calls — the decisions arrive *later* in simulated time, unlike the
    /// instant path.
    #[test]
    fn delayed_round_completes_across_wakeups() {
        let (cluster, apps) = world(2);
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_delay(Time::seconds(5.0)),
        );
        let t0 = Time::minutes(1.0);
        assert!(
            dist.schedule(t0, &cluster, &apps).is_empty(),
            "with 5 s latency no decision can exist at round start"
        );
        let mut decisions = Vec::new();
        let mut last = t0;
        let mut steps = 0;
        while let Some(wake) = dist.next_wakeup() {
            assert!(wake >= last, "wakeups advance monotonically");
            last = wake;
            decisions.extend(dist.schedule(wake, &cluster, &apps));
            // Stop as soon as the first round's grants landed.
            if !decisions.is_empty() {
                break;
            }
            steps += 1;
            assert!(steps < 20, "round never completed");
        }
        assert!(!decisions.is_empty());
        // Query +5s, ρ +10s, offer +15s, bid +20s, win +25s: the round
        // completed a full five-leg exchange, 25 s after it started (up
        // to float accumulation across the five legs).
        let expected = t0 + Time::seconds(25.0);
        assert!(
            (last.as_minutes() - expected.as_minutes()).abs() < 1e-9,
            "expected completion near {expected:?}, got {last:?}"
        );
        assert_eq!(dist.stats().voided_wins, 0);
        assert_eq!(dist.stats().missed_rho_reports, 0);
        assert_eq!(dist.reserved_gpus(), 0);
    }

    /// A one-way delay beyond the ρ deadline makes every agent miss every
    /// round; nothing is granted and nothing wedges.
    #[test]
    fn over_delayed_rounds_are_missed_not_wedged() {
        let (cluster, apps) = world(2);
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_delay(Time::seconds(20.0)),
        );
        let mut now = Time::minutes(1.0);
        for _ in 0..6 {
            assert!(dist.schedule(now, &cluster, &apps).is_empty());
            now = dist.next_wakeup().expect("replies or deadlines pending");
        }
        assert!(dist.rounds() >= 2);
        assert!(dist.stats().missed_rho_reports > 0);
        assert!(dist.stats().stale_messages > 0, "late replies are stale");
    }

    #[test]
    fn fully_lossy_link_never_wedges_a_round() {
        let (cluster, apps) = world(2);
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_drop_probability(1.0),
        );
        let mut now = Time::minutes(1.0);
        for _ in 0..10 {
            assert!(dist.schedule(now, &cluster, &apps).is_empty());
            now = dist
                .next_wakeup()
                .unwrap_or(now + Time::minutes(1.0))
                .max(now + Time::seconds(1.0));
        }
        assert!(dist.rounds() >= 2);
        assert!(dist.stats().missed_rho_reports >= 2 * dist.rounds() - 2);
    }

    #[test]
    fn crash_schedule_takes_one_agent_offline_round_robin() {
        let (cluster, apps) = world(2);
        // Every round, one agent crashes for exactly that round.
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_crash(1, 1),
        );
        // Round 0 crashes app 0 (victim index 0); its ρ never arrives, so
        // the round completes at the ρ deadline with app 1 alone.
        let mut d0 = dist.schedule(Time::minutes(1.0), &cluster, &apps);
        while d0.is_empty() {
            let wake = dist.next_wakeup().expect("deadline pending");
            d0 = dist.schedule(wake, &cluster, &apps);
        }
        assert!(d0.iter().all(|d| d.app == AppId(1)), "app 0 is offline");
        assert!(!d0.is_empty(), "the surviving agent still wins GPUs");
        assert!(dist.stats().crashed_agent_rounds >= 1);
    }

    /// Drives the scheduler until quiescent-enough, then jumps past the
    /// last possible win deadline so every reservation must have resolved
    /// (confirmed or voided).
    fn drive_then_drain(
        dist: &mut DistributedThemisScheduler,
        cluster: &Cluster,
        apps: &AppArena,
        iterations: usize,
    ) -> usize {
        let mut now = Time::minutes(1.0);
        let mut granted = 0;
        for _ in 0..iterations {
            granted += dist.schedule(now, cluster, apps).len();
            now = dist
                .next_wakeup()
                .unwrap_or(now + Time::minutes(1.0))
                .max(now);
        }
        // Every win sent so far has a deadline no later than its round's
        // start + 30 s ≤ now + 30 s; one call past that resolves them all,
        // and the round it starts cannot reach its own auction within the
        // same instant under a faulty config.
        granted += dist
            .schedule(now + Time::seconds(31.0), cluster, apps)
            .len();
        granted
    }

    #[test]
    fn lossy_reservations_always_drain() {
        let (cluster, apps) = world(1);
        // Half of all messages vanish: some Win notifications are lost in
        // transit, and their grants must be voided by the win deadline —
        // a lost Win may delay the app, never leak a GPU.
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable()
                .with_drop_probability(0.5)
                .with_delay(Time::seconds(5.0))
                .with_seed(3),
        );
        drive_then_drain(&mut dist, &cluster, &apps, 200);
        assert!(dist.rounds() > 10);
        assert_eq!(
            dist.reserved_gpus(),
            0,
            "reservations must drain via delivery or win-deadline voiding"
        );
        let s = dist.stats();
        assert!(
            s.voided_wins + s.missed_bids + s.missed_rho_reports > 0,
            "a 50% loss rate must visibly degrade the protocol"
        );
    }

    #[test]
    fn partition_voids_cross_cut_traffic_then_heals() {
        let (cluster, apps) = world(4);
        // Partition every round 0 mod 2 for 1 round: agents 2,3 are cut
        // off half the time.
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable().with_partition(2, 1),
        );
        drive_then_drain(&mut dist, &cluster, &apps, 12);
        assert!(dist.net_stats().dropped_partition > 0, "cut traffic lost");
        assert!(dist.net_stats().delivered > 0, "healed traffic flows");
        assert_eq!(dist.reserved_gpus(), 0, "no reservation leaks");
    }

    #[test]
    fn failover_voids_pending_wins_and_counts() {
        let (cluster, apps) = world(2);
        let mut dist = DistributedThemisScheduler::new(
            ThemisConfig::default(),
            FaultConfig::reliable()
                .with_delay(Time::seconds(5.0))
                .with_failover(2),
        );
        drive_then_drain(&mut dist, &cluster, &apps, 30);
        assert!(dist.stats().failovers > 0, "failovers fired");
        assert_eq!(dist.reserved_gpus(), 0, "failover released reservations");
    }

    #[test]
    fn lease_notices_flow_to_agents() {
        let (mut cluster, apps) = world(1);
        let mut dist =
            DistributedThemisScheduler::new(ThemisConfig::default(), FaultConfig::reliable());
        let d = dist.schedule(Time::minutes(1.0), &cluster, &apps);
        // Apply the decisions with a short lease, then expire it.
        for decision in &d {
            for gpu in &decision.gpus {
                cluster
                    .allocate(
                        *gpu,
                        decision.app,
                        decision.job,
                        Time::minutes(1.0),
                        Time::minutes(2.0),
                    )
                    .unwrap();
            }
        }
        dist.schedule(Time::minutes(1.5), &cluster, &apps);
        cluster.reclaim_expired_leases(Time::minutes(10.0));
        dist.schedule(Time::minutes(10.0), &cluster, &apps);
        assert!(
            dist.lease_notices(AppId(0)) > 0,
            "agent must be told its GPUs were reclaimed"
        );
    }
}

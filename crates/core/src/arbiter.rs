//! The central Arbiter.
//!
//! The Arbiter is the bottom level of Themis's two-level architecture
//! (§3.1): it pools reclaimed GPUs, probes every app's Agent for its
//! finish-time fairness, offers the pooled GPUs to the `1 − f` fraction of
//! apps that are farthest from fair, runs the partial-allocation auction
//! over their bids, and finally hands out any leftover GPUs (the hidden
//! payments and unwanted capacity) to apps outside the auction in a
//! placement-sensitive, work-conserving way (§5.1 "Leftover Allocation").

use crate::auction::{partial_allocation, AuctionResult};
use crate::config::ThemisConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::{AppId, MachineId};
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_protocol::bid::BidTable;
use themis_protocol::messages::OfferMsg;

/// A snapshot of one app's scheduling status, as seen by the Arbiter before
/// an auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AppStatus {
    /// The app.
    pub app: AppId,
    /// The app's current finish-time fairness (∞ when it has no GPUs and no
    /// prospects).
    pub rho: f64,
    /// GPUs the app could still use productively.
    pub unmet_demand: usize,
    /// Machines on which the app currently holds GPUs (used to place
    /// leftover GPUs next to existing allocations).
    pub footprint: BTreeSet<MachineId>,
}

/// The outcome of one auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// Monotonically increasing round number.
    pub round: u64,
    /// Apps that were offered the resources (the worst-off `1 − f`).
    pub participants: Vec<AppId>,
    /// Final auction awards per app (after hidden payments).
    pub winners: BTreeMap<AppId, FreeVector>,
    /// Work-conserving grants of leftover GPUs to apps outside the auction.
    pub leftover_grants: BTreeMap<AppId, FreeVector>,
    /// The raw partial-allocation result (for inspection / overhead
    /// benchmarks).
    pub auction: AuctionResult,
}

impl AuctionOutcome {
    /// Every grant made this round: auction awards plus leftover grants,
    /// merged per app — a borrowing convenience for diagnostics and tests
    /// that still need the outcome afterwards. Clones each grant; the
    /// schedulers' hot path uses the draining
    /// [`into_all_grants`](AuctionOutcome::into_all_grants) instead.
    pub fn all_grants(&self) -> BTreeMap<AppId, FreeVector> {
        let mut grants = self.winners.clone();
        for (app, extra) in &self.leftover_grants {
            match grants.entry(*app) {
                std::collections::btree_map::Entry::Occupied(mut won) => {
                    won.get_mut().add_assign(extra);
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(extra.clone());
                }
            }
        }
        grants
    }

    /// Every grant made this round: auction awards plus leftover grants,
    /// merged per app. Consumes the outcome and *drains* both maps into
    /// the result — no `FreeVector` is cloned.
    pub fn into_all_grants(self) -> BTreeMap<AppId, FreeVector> {
        let mut grants = self.winners;
        for (app, extra) in self.leftover_grants {
            match grants.entry(app) {
                std::collections::btree_map::Entry::Occupied(mut won) => {
                    won.get_mut().add_assign(&extra);
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(extra);
                }
            }
        }
        grants
    }

    /// Total GPUs granted this round. Computed directly from the award and
    /// leftover maps — merging them per app cannot change the sum.
    pub fn total_granted(&self) -> usize {
        self.winners.values().map(|g| g.total()).sum::<usize>()
            + self
                .leftover_grants
                .values()
                .map(|g| g.total())
                .sum::<usize>()
    }
}

/// Reusable per-round scratch buffers. The leftover-allocation loop used
/// to rebuild `BTreeMap`s of demands, footprints and grants every round;
/// these vectors (parallel to the round's `statuses` slice) are cleared
/// and reused instead, so a steady-state auction round allocates nothing
/// for its bookkeeping.
#[derive(Debug, Default)]
struct RoundScratch {
    /// `(app, status index)` pairs sorted by app id — the iteration order
    /// the old `BTreeMap`s provided.
    order: Vec<(AppId, usize)>,
    /// Remaining unmet demand per status index.
    demand: Vec<usize>,
    /// Leftover grants per status index (vectors are reused across rounds).
    grants: Vec<FreeVector>,
    /// Participants sorted by app id, for binary-search membership.
    participants: Vec<AppId>,
    /// Candidate recipients of the leftover GPU under consideration,
    /// as `(app, status index)` pairs so the pick needs no re-lookup.
    candidates: Vec<(AppId, usize)>,
}

impl RoundScratch {
    fn reset(&mut self, statuses: &[AppStatus], participants: &[AppId]) {
        self.order.clear();
        self.order
            .extend(statuses.iter().enumerate().map(|(idx, s)| (s.app, idx)));
        self.order.sort_unstable();
        self.demand.clear();
        self.demand.resize(statuses.len(), 0);
        for grant in &mut self.grants {
            grant.clear();
        }
        if self.grants.len() < statuses.len() {
            self.grants.resize_with(statuses.len(), FreeVector::empty);
        }
        self.participants.clear();
        self.participants.extend_from_slice(participants);
        self.participants.sort_unstable();
    }
}

/// The central Arbiter.
#[derive(Debug)]
pub struct Arbiter {
    config: ThemisConfig,
    round: u64,
    rng: SmallRng,
    scratch: RoundScratch,
}

impl Arbiter {
    /// Creates an Arbiter with the given configuration.
    pub fn new(config: ThemisConfig) -> Self {
        Arbiter {
            round: 0,
            rng: SmallRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            scratch: RoundScratch::default(),
            config,
        }
    }

    /// The number of auction rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThemisConfig {
        &self.config
    }

    /// Builds the offer message for the current round.
    pub fn make_offer(&self, now: Time, resources: FreeVector) -> OfferMsg {
        OfferMsg {
            round: self.round,
            now,
            resources,
            reply_by: now + Time::seconds(30.0),
        }
    }

    /// Selects the auction participants: the `1 − f` fraction of apps with
    /// the worst (highest) ρ among those that can actually use more GPUs.
    /// At least one app participates whenever any app has unmet demand.
    pub fn select_participants(&self, statuses: &[AppStatus]) -> Vec<AppId> {
        let mut candidates: Vec<&AppStatus> =
            statuses.iter().filter(|s| s.unmet_demand > 0).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        candidates.sort_by(|a, b| {
            b.rho
                .partial_cmp(&a.rho)
                .expect("rho is never NaN")
                .then(a.app.cmp(&b.app))
        });
        let fraction = 1.0 - self.config.fairness_knob;
        let count =
            ((candidates.len() as f64 * fraction).ceil() as usize).clamp(1, candidates.len());
        candidates.into_iter().take(count).map(|s| s.app).collect()
    }

    /// Runs one auction round over the provided bids and assigns leftovers.
    ///
    /// `statuses` must cover every schedulable app (participants and
    /// non-participants); `bids` are the tables received from the
    /// participants' Agents; `spec` is the cluster topology, consulted for
    /// machine speeds when handing out leftovers (leftover GPUs on *faster*
    /// machines are placed first, so the most valuable stragglers are the
    /// least likely to go unused when demand runs out mid-loop — on a
    /// uniform-speed cluster the order is machine-id order, unchanged).
    pub fn run_auction(
        &mut self,
        offer: &FreeVector,
        statuses: &[AppStatus],
        participants: &[AppId],
        bids: &[BidTable],
        spec: &ClusterSpec,
    ) -> AuctionOutcome {
        self.round += 1;
        let auction = partial_allocation(bids, offer);
        let mut winners: BTreeMap<AppId, FreeVector> = BTreeMap::new();
        for award in &auction.awards {
            if !award.awarded.is_empty() {
                winners.insert(award.app, award.awarded.clone());
            }
        }

        // Leftover allocation (§5.1 step 3): one GPU at a time, to apps that
        // did not participate in the auction, preferring apps that already
        // have an allocation on the GPU's machine; ties broken at random.
        // If no outside app can take a GPU, fall back to participants with
        // remaining unmet demand so the allocation stays work-conserving.
        self.scratch.reset(statuses, participants);
        for &(app, idx) in &self.scratch.order {
            let granted = winners.get(&app).map(|w| w.total()).unwrap_or(0);
            self.scratch.demand[idx] = statuses[idx].unmet_demand.saturating_sub(granted);
        }

        let mut leftover = auction.leftover.clone();
        let mut machines: Vec<MachineId> = leftover.machines().collect();
        // Fastest machines first (stable: id order within a generation, and
        // the speed-1.0 order is exactly the previous id order).
        machines.sort_by(|a, b| {
            spec.machine_speed(*b)
                .unwrap_or(1.0)
                .total_cmp(&spec.machine_speed(*a).unwrap_or(1.0))
                .then(a.cmp(b))
        });
        for machine in machines {
            while leftover.on_machine(machine) > 0 {
                let pick = self.pick_leftover_recipient(machine, statuses);
                let Some((app, idx)) = pick else { break };
                debug_assert_eq!(statuses[idx].app, app);
                let grant = &mut self.scratch.grants[idx];
                grant.set(machine, grant.on_machine(machine) + 1);
                leftover.set(machine, leftover.on_machine(machine) - 1);
                self.scratch.demand[idx] = self.scratch.demand[idx].saturating_sub(1);
            }
        }
        let leftover_grants: BTreeMap<AppId, FreeVector> = self
            .scratch
            .order
            .iter()
            .filter(|(_, idx)| !self.scratch.grants[*idx].is_empty())
            .map(|(app, idx)| (*app, self.scratch.grants[*idx].clone()))
            .collect();

        AuctionOutcome {
            round: self.round,
            participants: participants.to_vec(),
            winners,
            leftover_grants,
            auction,
        }
    }

    /// Chooses the recipient of one leftover GPU on `machine`, returning
    /// the app and its status index. Candidates come from the scratch
    /// buffers in ascending app-id order (matching the old `BTreeMap`
    /// iteration), so the RNG tie-break stream is unchanged.
    fn pick_leftover_recipient(
        &mut self,
        machine: MachineId,
        statuses: &[AppStatus],
    ) -> Option<(AppId, usize)> {
        // Candidate tiers, best first: outside the auction + local footprint,
        // outside, local footprint, anyone with demand.
        for tier in 0..4u8 {
            self.scratch.candidates.clear();
            for &(app, idx) in &self.scratch.order {
                if self.scratch.demand[idx] == 0 {
                    continue;
                }
                let outside = self.scratch.participants.binary_search(&app).is_err();
                let on_machine = || {
                    statuses[idx].footprint.contains(&machine)
                        || self.scratch.grants[idx].on_machine(machine) > 0
                };
                let eligible = match tier {
                    0 => outside && on_machine(),
                    1 => outside,
                    2 => on_machine(),
                    _ => true,
                };
                if eligible {
                    self.scratch.candidates.push((app, idx));
                }
            }
            if !self.scratch.candidates.is_empty() {
                return self.scratch.candidates.choose(&mut self.rng).copied();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform-speed 4-machine × 8-GPU spec covering every machine id the
    /// tests hand out leftovers on.
    fn spec() -> ClusterSpec {
        ClusterSpec::synthetic(1, 4, 8)
    }

    fn status(app: u32, rho: f64, demand: usize, footprint: &[u32]) -> AppStatus {
        AppStatus {
            app: AppId(app),
            rho,
            unmet_demand: demand,
            footprint: footprint.iter().map(|m| MachineId(*m)).collect(),
        }
    }

    fn fv(pairs: &[(u32, usize)]) -> FreeVector {
        FreeVector::from_counts(pairs.iter().map(|(m, c)| (MachineId(*m), *c)))
    }

    fn scaling_bid(app: u32, current_rho: f64, machine: u32, max_gpus: usize) -> BidTable {
        let mut table = BidTable::empty(AppId(app), current_rho);
        for g in 1..=max_gpus {
            table.push(fv(&[(machine, g)]), current_rho / g as f64);
        }
        table
    }

    #[test]
    fn participant_selection_takes_worst_one_minus_f() {
        let arbiter = Arbiter::new(ThemisConfig::default().with_fairness_knob(0.5));
        let statuses = vec![
            status(0, 10.0, 4, &[]),
            status(1, 2.0, 4, &[]),
            status(2, 8.0, 4, &[]),
            status(3, f64::INFINITY, 4, &[]),
        ];
        let participants = arbiter.select_participants(&statuses);
        // 1 - f = 0.5 → 2 of 4 apps, the two with the worst rho.
        assert_eq!(participants, vec![AppId(3), AppId(0)]);
    }

    #[test]
    fn apps_without_demand_never_participate() {
        let arbiter = Arbiter::new(ThemisConfig::default().with_fairness_knob(0.0));
        let statuses = vec![status(0, 10.0, 0, &[]), status(1, 5.0, 2, &[])];
        let participants = arbiter.select_participants(&statuses);
        assert_eq!(participants, vec![AppId(1)]);
        // And with no demand at all, nobody participates.
        assert!(arbiter
            .select_participants(&[status(0, 10.0, 0, &[])])
            .is_empty());
    }

    #[test]
    fn at_least_one_app_participates_even_with_f_one() {
        let arbiter = Arbiter::new(ThemisConfig::default().with_fairness_knob(1.0));
        let statuses = vec![status(0, 10.0, 4, &[]), status(1, 20.0, 4, &[])];
        let participants = arbiter.select_participants(&statuses);
        assert_eq!(participants, vec![AppId(1)]);
    }

    #[test]
    fn auction_awards_and_leftovers_cover_the_offer() {
        let mut arbiter = Arbiter::new(ThemisConfig::default());
        let offer = fv(&[(0, 4), (1, 4)]);
        let statuses = vec![
            status(0, 50.0, 4, &[]),
            status(1, 40.0, 4, &[]),
            status(2, 5.0, 8, &[1]),
        ];
        let participants = vec![AppId(0), AppId(1)];
        let bids = vec![scaling_bid(0, 50.0, 0, 4), scaling_bid(1, 40.0, 1, 4)];
        let outcome = arbiter.run_auction(&offer, &statuses, &participants, &bids, &spec());
        assert_eq!(outcome.round, 1);
        // Both bidders target disjoint machines, so both win fully and no
        // leftovers remain for app 2.
        assert_eq!(outcome.winners[&AppId(0)].total(), 4);
        assert_eq!(outcome.winners[&AppId(1)].total(), 4);
        assert_eq!(outcome.total_granted(), 8);
    }

    #[test]
    fn leftovers_go_to_non_participants_near_their_footprint() {
        let mut arbiter = Arbiter::new(ThemisConfig::default());
        let offer = fv(&[(0, 4), (1, 2)]);
        // Participant 0 only bids on machine 0; machine 1 is leftover.
        let statuses = vec![
            status(0, 50.0, 4, &[]),
            status(1, 2.0, 4, &[1]), // non-participant with footprint on machine 1
            status(2, 3.0, 4, &[0]), // non-participant with footprint elsewhere
        ];
        let participants = vec![AppId(0)];
        let bids = vec![scaling_bid(0, 50.0, 0, 4)];
        let outcome = arbiter.run_auction(&offer, &statuses, &participants, &bids, &spec());
        assert_eq!(outcome.winners[&AppId(0)].total(), 4);
        // Machine 1's two GPUs go to app 1 (footprint match).
        let grant = outcome
            .leftover_grants
            .get(&AppId(1))
            .expect("app 1 gets leftovers");
        assert_eq!(grant.on_machine(MachineId(1)), 2);
        assert!(!outcome.leftover_grants.contains_key(&AppId(2)));
    }

    #[test]
    fn leftovers_fall_back_to_participants_when_no_one_else_wants_them() {
        let mut arbiter = Arbiter::new(ThemisConfig::default());
        let offer = fv(&[(0, 2), (1, 2)]);
        // Only one app in the system; it bids on machine 0 only.
        let statuses = vec![status(0, 50.0, 8, &[])];
        let participants = vec![AppId(0)];
        let bids = vec![scaling_bid(0, 50.0, 0, 2)];
        let outcome = arbiter.run_auction(&offer, &statuses, &participants, &bids, &spec());
        // Machine 1's GPUs still end up with app 0 (work conservation).
        let total = outcome.total_granted();
        assert_eq!(total, 4);
    }

    #[test]
    fn grants_never_exceed_offer() {
        let mut arbiter = Arbiter::new(ThemisConfig::default());
        let offer = fv(&[(0, 3), (1, 1)]);
        let statuses = vec![
            status(0, 50.0, 8, &[]),
            status(1, 40.0, 8, &[]),
            status(2, 4.0, 8, &[0]),
        ];
        let participants = vec![AppId(0), AppId(1)];
        let bids = vec![scaling_bid(0, 50.0, 0, 3), scaling_bid(1, 40.0, 0, 3)];
        let outcome = arbiter.run_auction(&offer, &statuses, &participants, &bids, &spec());
        assert_eq!(outcome.total_granted(), offer.total(), "work conserving");
        let mut total = FreeVector::empty();
        for grant in outcome.into_all_grants().values() {
            total.add_assign(grant);
        }
        assert!(offer.contains_vector(&total));
        assert_eq!(total.total(), offer.total());
    }

    #[test]
    fn leftovers_on_faster_machines_are_placed_first() {
        use themis_cluster::topology::GpuGeneration;
        // Machine 0 Pascal (1.0), machine 1 Volta (2.0). No bids at all, so
        // the whole offer is leftover; the lone app's demand covers only
        // half of it, and the Volta GPUs must be the half that lands.
        let mixed =
            ClusterSpec::synthetic_mixed(1, 2, 8, &[GpuGeneration::Pascal, GpuGeneration::Volta]);
        let mut arbiter = Arbiter::new(ThemisConfig::default());
        let offer = fv(&[(0, 8), (1, 8)]);
        let statuses = vec![status(0, 5.0, 8, &[])];
        let outcome = arbiter.run_auction(&offer, &statuses, &[], &[], &mixed);
        let grant = outcome
            .leftover_grants
            .get(&AppId(0))
            .expect("app 0 takes leftovers");
        assert_eq!(grant.total(), 8);
        assert_eq!(
            grant.on_machine(MachineId(1)),
            8,
            "the Volta machine's GPUs are placed before the Pascal ones"
        );
    }

    #[test]
    fn offer_message_carries_round_and_deadline() {
        let arbiter = Arbiter::new(ThemisConfig::default());
        let offer = arbiter.make_offer(Time::minutes(10.0), fv(&[(0, 1)]));
        assert_eq!(offer.round, 0);
        assert!(offer.reply_by > offer.now);
        assert_eq!(offer.resources.total(), 1);
    }
}

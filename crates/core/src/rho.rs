//! The finish-time fairness metric ρ and its estimator.
//!
//! ρ = T_sh / T_id: the ratio of the app's (estimated) running time in the
//! shared cluster to its running time in a dedicated cluster (§3). The
//! Agent estimates ρ for candidate allocations following the steps of §5.2:
//!
//! 1. aggregate the candidate GPUs with the GPUs the app already holds,
//! 2. distribute the aggregate among the app's jobs greedily and
//!    placement-sensitively,
//! 3. `T_sh = min_j (elapsed + W'_j / (G_j · S_j(placement)))` — the `min`
//!    because the job with the best hyper-parameters determines the app's
//!    finish time,
//! 4. `T_id = min_j (W_j / G_ideal_j)` with perfect placement,
//! 5. ρ = T_sh / T_id.

use std::collections::BTreeMap;
use themis_cluster::ids::{JobId, MachineId};
use themis_cluster::placement::Locality;
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_hpo::api::JobEstimate;

/// The result of a ρ estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhoEstimate {
    /// The finish-time fairness metric (lower is better; unbounded when the
    /// app holds no GPUs and would never finish).
    pub rho: f64,
    /// Estimated shared running time T_sh (elapsed + remaining).
    pub t_sh: Time,
    /// Ideal dedicated-cluster running time T_id.
    pub t_id: Time,
}

/// A job-level share of an aggregate allocation: how many GPUs the job gets
/// on which machines.
pub type JobShare = Vec<(MachineId, usize)>;

/// Ideal (dedicated-cluster) running time `T_id` from per-job estimates:
/// every exploration job runs concurrently at its maximum parallelism with
/// perfect placement, so the app's ideal time is governed by the slowest
/// job (`max_j W_j / G_ideal_j`). For single-job apps this coincides with
/// the paper's §5.2 `min` formulation.
pub fn ideal_running_time(estimates: &[JobEstimate]) -> Time {
    estimates
        .iter()
        .filter(|e| e.max_parallelism > 0)
        .map(|e| Time::minutes(e.total_work.as_minutes() / e.max_parallelism as f64))
        .max()
        .unwrap_or(Time::ZERO)
}

/// The locality of a job share, approximated from machine placement (the
/// slot structure of machines is credited when the whole share fits within
/// one slot of one machine).
pub fn share_locality(share: &JobShare, spec: &ClusterSpec) -> Locality {
    let machines: Vec<MachineId> = share
        .iter()
        .filter(|(_, c)| *c > 0)
        .map(|(m, _)| *m)
        .collect();
    match machines.len() {
        0 | 1 => {
            if let Some(machine) = machines.first().and_then(|m| spec.machine(*m)) {
                let count: usize = share.iter().map(|(_, c)| *c).sum();
                if count <= machine.slot_size {
                    Locality::Slot
                } else {
                    Locality::Machine
                }
            } else {
                Locality::Slot
            }
        }
        _ => {
            let racks: std::collections::BTreeSet<_> = machines
                .iter()
                .filter_map(|m| spec.machine(*m).map(|ms| ms.rack))
                .collect();
            if racks.len() <= 1 {
                Locality::Rack
            } else {
                Locality::CrossRack
            }
        }
    }
}

/// Greedily distributes an aggregate per-machine GPU allocation among jobs
/// in a placement-sensitive manner (§5.2 step 4, "the AGENT computes the
/// job-level allocation in a greedy manner").
///
/// Because the app finishes when its fastest job converges, jobs are
/// visited in order of *increasing* work left — the job that determines the
/// app's finish time is packed first. Each job takes as many GPUs as it can
/// use from the machine with the most remaining GPUs — breaking ties toward
/// the machine with the *faster* GPU generation, so on a mixed cluster the
/// finish-time-critical job lands on the fastest silicon — spilling to
/// further machines only when necessary. On a uniform-speed cluster every
/// speed comparison ties and the distribution is the speed-blind one.
pub fn greedy_job_distribution(
    estimates: &[JobEstimate],
    aggregate: &BTreeMap<MachineId, usize>,
    spec: &ClusterSpec,
) -> BTreeMap<JobId, JobShare> {
    let mut remaining: BTreeMap<MachineId, usize> = aggregate
        .iter()
        .filter(|(_, c)| **c > 0)
        .map(|(m, c)| (*m, *c))
        .collect();
    let mut order: Vec<&JobEstimate> = estimates.iter().collect();
    order.sort_by(|a, b| a.work_left.cmp(&b.work_left).then(a.job.cmp(&b.job)));

    let speed = |m: MachineId| spec.machine_speed(m).unwrap_or(1.0);
    let mut shares: BTreeMap<JobId, JobShare> = BTreeMap::new();
    for est in order {
        let mut need = est.max_parallelism;
        let mut share: JobShare = Vec::new();
        while need > 0 {
            // Machine with the most remaining GPUs (densest placement),
            // fastest generation then lowest id on ties.
            let Some((&machine, &avail)) =
                remaining.iter().filter(|(_, c)| **c > 0).max_by(|a, b| {
                    a.1.cmp(b.1)
                        .then_with(|| speed(*a.0).total_cmp(&speed(*b.0)))
                        .then_with(|| b.0.cmp(a.0))
                })
            else {
                break;
            };
            let take = need.min(avail);
            share.push((machine, take));
            *remaining.get_mut(&machine).expect("machine present") -= take;
            need -= take;
        }
        if !share.is_empty() {
            shares.insert(est.job, share);
        }
    }
    shares
}

/// Aggregate speed of the `cap` fastest GPUs of a job share — the
/// `Σ speed_i` term of the effective-throughput model for a share expressed
/// as per-machine counts (all GPUs of one machine share a generation).
/// `min(total, cap) as f64` exactly on a uniform-speed cluster.
fn share_speed(share: &JobShare, cap: usize, spec: &ClusterSpec) -> f64 {
    let mut by_speed: Vec<(f64, usize)> = share
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(machine, count)| (spec.machine_speed(*machine).unwrap_or(1.0), *count))
        .collect();
    by_speed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut left = cap;
    let mut speed = 0.0;
    for (machine_speed, count) in by_speed {
        if left == 0 {
            break;
        }
        let take = count.min(left);
        speed += machine_speed * take as f64;
        left -= take;
    }
    speed
}

/// Estimates ρ for an app given per-job estimates, the elapsed time since
/// the app arrived, and a job-level allocation (shares of machines).
///
/// The shared running time is estimated as
/// `T_sh = elapsed + Σ_j W'_j / Σ_j (G_eff_j · S_j(placement))` with
/// `G_eff_j = Σ_i speed_i` over the job's share: the app's aggregate
/// remaining exploration work divided by the aggregate *generation-weighted*
/// effective throughput of the candidate allocation. On a uniform-speed
/// cluster `G_eff = G` and this is exactly the paper's §5.2 step-4 formula;
/// on a mixed-generation cluster a fast-GPU share is worth proportionally
/// more, which is what makes the Agents' bids speed-aware. For
/// hyper-parameter-sweep apps it models the app time-sharing its GPUs
/// across the surviving jobs until the exploration has run its course,
/// which is how the simulator (and a real HyperBand deployment) behaves.
/// The estimate stays homogeneous of degree one in the allocation — the
/// property the truthfulness proof of the partial-allocation mechanism
/// relies on (§5.1). `T_id` stays defined on reference-speed GPUs, so ρ on
/// a fast share can legitimately dip below its uniform-cluster value.
pub fn estimate_rho(
    estimates: &[JobEstimate],
    elapsed: Time,
    shares: &BTreeMap<JobId, JobShare>,
    spec: &ClusterSpec,
) -> RhoEstimate {
    let t_id = ideal_running_time(estimates);
    let mut total_work_left = Time::ZERO;
    let mut aggregate_speedup = 0.0;
    for est in estimates {
        if est.work_left <= Time::ZERO {
            continue;
        }
        total_work_left += est.work_left;
        let share = shares.get(&est.job);
        let gpus: usize = share.map(|s| s.iter().map(|(_, c)| *c).sum()).unwrap_or(0);
        if gpus == 0 {
            continue;
        }
        let share = share.expect("gpus > 0 implies share");
        let locality = share_locality(share, spec);
        let usable = gpus.min(est.max_parallelism.max(1));
        let usable_speed = share_speed(share, usable, spec);
        aggregate_speedup +=
            est.sensitivity
                .effective_speedup_weighted(usable, usable_speed, locality);
    }
    let t_sh = if total_work_left <= Time::ZERO {
        // Everything has converged or been terminated: the app's running
        // time is the time that has already elapsed.
        elapsed
    } else if aggregate_speedup <= 0.0 {
        Time::INFINITY
    } else {
        elapsed + Time::minutes(total_work_left.as_minutes() / aggregate_speedup)
    };
    let rho = if t_id > Time::ZERO {
        t_sh.as_minutes() / t_id.as_minutes()
    } else {
        1.0
    };
    RhoEstimate { rho, t_sh, t_id }
}

/// Convenience: estimate ρ for an aggregate per-machine allocation, running
/// the greedy job distribution first.
pub fn estimate_rho_for_aggregate(
    estimates: &[JobEstimate],
    elapsed: Time,
    aggregate: &BTreeMap<MachineId, usize>,
    spec: &ClusterSpec,
) -> RhoEstimate {
    let shares = greedy_job_distribution(estimates, aggregate, spec);
    estimate_rho(estimates, elapsed, &shares, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::models::ModelArch;

    fn est(
        job: u32,
        total_min: f64,
        left_min: f64,
        max_par: usize,
        model: ModelArch,
    ) -> JobEstimate {
        JobEstimate {
            job: JobId(job),
            total_work: Time::minutes(total_min),
            work_left: Time::minutes(left_min),
            max_parallelism: max_par,
            sensitivity: model.sensitivity(),
        }
    }

    fn spec() -> ClusterSpec {
        // 2 racks × 2 machines × 4 GPUs, slot size 2.
        ClusterSpec::homogeneous(2, 2, 4)
    }

    #[test]
    fn ideal_running_time_is_dedicated_cluster_time() {
        let estimates = vec![
            est(0, 100.0, 100.0, 4, ModelArch::ResNet50),
            est(1, 300.0, 300.0, 2, ModelArch::ResNet50),
        ];
        // job0: 100/4 = 25; job1: 300/2 = 150. With both jobs running
        // concurrently in a dedicated cluster the app takes 150 minutes.
        assert_eq!(ideal_running_time(&estimates), Time::minutes(150.0));
    }

    #[test]
    fn no_allocation_gives_unbounded_rho() {
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::ResNet50)];
        let rho = estimate_rho(&estimates, Time::minutes(10.0), &BTreeMap::new(), &spec());
        assert!(rho.rho.is_infinite());
        assert_eq!(rho.t_id, Time::minutes(25.0));
    }

    #[test]
    fn full_ideal_allocation_at_arrival_gives_rho_one() {
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::ResNet50)];
        let aggregate: BTreeMap<MachineId, usize> = [(MachineId(0), 4)].into();
        let rho = estimate_rho_for_aggregate(&estimates, Time::ZERO, &aggregate, &spec());
        // 4 GPUs on one machine, ResNet50 machine-locality S≈0.99 → ρ ≈ 1.01.
        assert!(rho.rho >= 1.0);
        assert!(rho.rho < 1.1, "rho {} should be close to 1", rho.rho);
    }

    #[test]
    fn spreading_a_sensitive_model_raises_rho() {
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::Vgg16)];
        let packed: BTreeMap<MachineId, usize> = [(MachineId(0), 4)].into();
        let spread: BTreeMap<MachineId, usize> = [
            (MachineId(0), 1),
            (MachineId(1), 1),
            (MachineId(2), 1),
            (MachineId(3), 1),
        ]
        .into();
        let spec = spec();
        let rho_packed = estimate_rho_for_aggregate(&estimates, Time::ZERO, &packed, &spec);
        let rho_spread = estimate_rho_for_aggregate(&estimates, Time::ZERO, &spread, &spec);
        assert!(
            rho_spread.rho > 1.5 * rho_packed.rho,
            "VGG16 spread across racks ({}) must be much worse than packed ({})",
            rho_spread.rho,
            rho_packed.rho
        );
    }

    #[test]
    fn insensitive_model_barely_cares_about_spread() {
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::ResNet50)];
        let packed: BTreeMap<MachineId, usize> = [(MachineId(0), 4)].into();
        let spread: BTreeMap<MachineId, usize> = [(MachineId(0), 2), (MachineId(2), 2)].into();
        let spec = spec();
        let rho_packed = estimate_rho_for_aggregate(&estimates, Time::ZERO, &packed, &spec);
        let rho_spread = estimate_rho_for_aggregate(&estimates, Time::ZERO, &spread, &spec);
        assert!(rho_spread.rho / rho_packed.rho < 1.15);
    }

    #[test]
    fn elapsed_time_increases_rho() {
        let estimates = vec![est(0, 100.0, 50.0, 4, ModelArch::ResNet50)];
        let aggregate: BTreeMap<MachineId, usize> = [(MachineId(0), 4)].into();
        let spec = spec();
        let early = estimate_rho_for_aggregate(&estimates, Time::minutes(10.0), &aggregate, &spec);
        let late = estimate_rho_for_aggregate(&estimates, Time::minutes(100.0), &aggregate, &spec);
        assert!(late.rho > early.rho);
        assert!(late.t_sh > early.t_sh);
    }

    #[test]
    fn more_gpus_never_hurt_rho() {
        let estimates = vec![
            est(0, 100.0, 80.0, 4, ModelArch::Vgg16),
            est(1, 200.0, 150.0, 4, ModelArch::Vgg16),
        ];
        let spec = spec();
        let small: BTreeMap<MachineId, usize> = [(MachineId(0), 2)].into();
        let large: BTreeMap<MachineId, usize> = [(MachineId(0), 4), (MachineId(1), 4)].into();
        let rho_small = estimate_rho_for_aggregate(&estimates, Time::minutes(5.0), &small, &spec);
        let rho_large = estimate_rho_for_aggregate(&estimates, Time::minutes(5.0), &large, &spec);
        assert!(rho_large.rho <= rho_small.rho + 1e-9);
    }

    #[test]
    fn greedy_distribution_respects_max_parallelism_and_supply() {
        let estimates = vec![
            est(0, 100.0, 100.0, 4, ModelArch::ResNet50),
            est(1, 300.0, 300.0, 2, ModelArch::ResNet50),
        ];
        let aggregate: BTreeMap<MachineId, usize> = [(MachineId(0), 4), (MachineId(1), 1)].into();
        let shares = greedy_job_distribution(&estimates, &aggregate, &spec());
        let total: usize = shares
            .values()
            .flat_map(|s| s.iter().map(|(_, c)| *c))
            .sum();
        assert!(total <= 5);
        for (job, share) in &shares {
            let est = estimates.iter().find(|e| e.job == *job).unwrap();
            let count: usize = share.iter().map(|(_, c)| *c).sum();
            assert!(count <= est.max_parallelism);
        }
        // The job with the least work left (job 0, which determines the
        // app's finish time) is served first and gets the densest machine.
        assert_eq!(shares[&JobId(0)][0].0, MachineId(0));
    }

    #[test]
    fn fast_gpu_share_lowers_rho() {
        use themis_cluster::topology::GpuGeneration;
        // Machine 0 is Volta (2.0), machine 1 is Pascal (1.0); same rack.
        let mixed =
            ClusterSpec::synthetic_mixed(1, 2, 4, &[GpuGeneration::Volta, GpuGeneration::Pascal]);
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::ResNet50)];
        let fast: BTreeMap<MachineId, usize> = [(MachineId(0), 4)].into();
        let slow: BTreeMap<MachineId, usize> = [(MachineId(1), 4)].into();
        let rho_fast = estimate_rho_for_aggregate(&estimates, Time::ZERO, &fast, &mixed);
        let rho_slow = estimate_rho_for_aggregate(&estimates, Time::ZERO, &slow, &mixed);
        // Same GPU count, same locality: the Volta share is worth 2x.
        assert!(
            (rho_slow.rho / rho_fast.rho - 2.0).abs() < 1e-9,
            "fast {} vs slow {}",
            rho_fast.rho,
            rho_slow.rho
        );
        // And the slow share matches the uniform-cluster estimate exactly:
        // T_id is defined on reference-speed GPUs.
        let uniform = ClusterSpec::synthetic(1, 2, 4);
        let rho_uniform = estimate_rho_for_aggregate(&estimates, Time::ZERO, &slow, &uniform);
        assert_eq!(rho_slow, rho_uniform);
    }

    #[test]
    fn greedy_distribution_breaks_count_ties_toward_faster_machines() {
        use themis_cluster::topology::GpuGeneration;
        // Machine 0 Pascal, machine 1 Volta, equal counts on offer.
        let mixed =
            ClusterSpec::synthetic_mixed(1, 2, 4, &[GpuGeneration::Pascal, GpuGeneration::Volta]);
        let estimates = vec![est(0, 100.0, 100.0, 4, ModelArch::ResNet50)];
        let aggregate: BTreeMap<MachineId, usize> = [(MachineId(0), 4), (MachineId(1), 4)].into();
        let shares = greedy_job_distribution(&estimates, &aggregate, &mixed);
        // The finish-time-critical job is packed onto the Volta machine.
        assert_eq!(shares[&JobId(0)], vec![(MachineId(1), 4)]);
        // On the uniform cluster the same tie goes to the lower machine id
        // (the speed-blind behavior).
        let uniform = ClusterSpec::synthetic(1, 2, 4);
        let shares = greedy_job_distribution(&estimates, &aggregate, &uniform);
        assert_eq!(shares[&JobId(0)], vec![(MachineId(0), 4)]);
    }

    #[test]
    fn share_locality_levels() {
        let spec = spec();
        assert_eq!(
            share_locality(&vec![(MachineId(0), 2)], &spec),
            Locality::Slot
        );
        assert_eq!(
            share_locality(&vec![(MachineId(0), 4)], &spec),
            Locality::Machine
        );
        assert_eq!(
            share_locality(&vec![(MachineId(0), 2), (MachineId(1), 2)], &spec),
            Locality::Rack
        );
        assert_eq!(
            share_locality(&vec![(MachineId(0), 2), (MachineId(2), 2)], &spec),
            Locality::CrossRack
        );
        assert_eq!(share_locality(&Vec::new(), &spec), Locality::Slot);
    }

    #[test]
    fn finished_app_rho_is_elapsed_over_ideal() {
        let estimates = vec![est(0, 100.0, 0.0, 4, ModelArch::ResNet50)];
        let rho = estimate_rho(&estimates, Time::minutes(50.0), &BTreeMap::new(), &spec());
        assert!((rho.rho - 2.0).abs() < 1e-9);
    }
}

//! HyperBand app scheduler.
//!
//! HyperBand (Li et al., 2016) launches several training jobs with equal
//! priority and, after each "rung" of a fixed number of iterations, kills
//! the bottom half of jobs with the poorest convergence until a single job
//! remains (§5.2, "App scheduler background"). The paper's prototype
//! implements this scheduler inside the Submarine Application Master (§7).

use crate::api::{AppScheduler, JobView, SchedulerUpdate};
use crate::estimator::WorkEstimator;
use std::collections::BTreeMap;
use themis_cluster::ids::JobId;
use themis_cluster::time::Time;

/// Configuration of the successive-halving schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperBandConfig {
    /// Number of iterations each surviving job must complete before the
    /// next halving decision is taken.
    pub rung_iterations: f64,
    /// Elimination factor: at each rung, `1/eta` of the jobs survive
    /// (classic HyperBand uses 2, i.e. "kill the bottom half").
    pub eta: f64,
}

impl Default for HyperBandConfig {
    fn default() -> Self {
        HyperBandConfig {
            rung_iterations: 50.0,
            eta: 2.0,
        }
    }
}

/// The HyperBand successive-halving scheduler.
#[derive(Debug)]
pub struct HyperBand {
    config: HyperBandConfig,
    /// Iteration threshold at which the next halving decision happens.
    next_rung: f64,
    estimators: BTreeMap<JobId, WorkEstimator>,
    rungs_completed: usize,
}

impl HyperBand {
    /// Creates a HyperBand scheduler with an explicit configuration.
    pub fn new(config: HyperBandConfig) -> Self {
        HyperBand {
            next_rung: config.rung_iterations,
            config,
            estimators: BTreeMap::new(),
            rungs_completed: 0,
        }
    }

    /// Creates a HyperBand scheduler with a rung size scaled to the number
    /// of jobs (more configurations → shorter rungs, as in the original
    /// algorithm's bracket construction).
    pub fn with_defaults(num_jobs: usize) -> Self {
        let rung = if num_jobs >= 32 { 25.0 } else { 50.0 };
        HyperBand::new(HyperBandConfig {
            rung_iterations: rung,
            eta: 2.0,
        })
    }

    /// Number of halving rungs performed so far.
    pub fn rungs_completed(&self) -> usize {
        self.rungs_completed
    }

    /// Ranks active jobs by projected total iterations to convergence
    /// (ascending: fastest-converging first).
    fn rank_jobs(&self, jobs: &[JobView<'_>]) -> Vec<(JobId, f64)> {
        let mut ranked: Vec<(JobId, f64)> = jobs
            .iter()
            .filter(|j| j.is_active())
            .map(|j| {
                let projected = self
                    .estimators
                    .get(&j.id())
                    .and_then(|e| e.projected_total_iterations(j.spec))
                    .unwrap_or(f64::INFINITY);
                (j.id(), projected)
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite projections")
                .then(a.0.cmp(&b.0))
        });
        ranked
    }
}

impl AppScheduler for HyperBand {
    fn name(&self) -> &'static str {
        "hyperband"
    }

    fn update(&mut self, _now: Time, jobs: &[JobView<'_>]) -> SchedulerUpdate {
        // Record fresh loss observations for every active job.
        for job in jobs.iter().filter(|j| j.is_active()) {
            self.estimators
                .entry(job.id())
                .or_default()
                .observe_progress(job.spec, job.progress);
        }

        let active: Vec<&JobView<'_>> = jobs.iter().filter(|j| j.is_active()).collect();
        if active.len() <= 1 {
            return SchedulerUpdate::none();
        }

        // A rung completes when every surviving job has reached the rung's
        // iteration threshold (or finished).
        let all_reached = active
            .iter()
            .all(|j| j.progress.iterations_done >= self.next_rung);
        if !all_reached {
            return SchedulerUpdate::none();
        }

        let ranked = self.rank_jobs(jobs);
        let survivors = ((ranked.len() as f64 / self.config.eta).ceil() as usize).max(1);
        let kill: Vec<JobId> = ranked.iter().skip(survivors).map(|(id, _)| *id).collect();
        self.rungs_completed += 1;
        self.next_rung += self.config.rung_iterations;
        SchedulerUpdate {
            kill,
            max_parallelism: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::placement::Locality;
    use themis_cluster::time::Time;
    use themis_workload::job::{JobProgress, JobSpec};
    use themis_workload::loss::LossCurve;
    use themis_workload::models::ModelArch;

    /// Builds a job whose convergence speed is controlled by `exponent`:
    /// larger exponent = faster convergence = better hyper-parameters.
    fn job(id: u32, exponent: f64) -> (JobSpec, JobProgress) {
        let mut spec = JobSpec::new(
            JobId(id),
            ModelArch::ResNet50,
            1000.0,
            Time::minutes(0.1),
            4,
        );
        spec.loss_curve = LossCurve::PowerLaw {
            floor: 0.0,
            scale: 2.0,
            exponent,
        };
        spec.target_loss = 0.1;
        (spec, JobProgress::new())
    }

    fn views<'a>(jobs: &'a [(JobSpec, JobProgress)]) -> Vec<JobView<'a>> {
        jobs.iter()
            .map(|(s, p)| JobView {
                spec: s,
                progress: p,
            })
            .collect()
    }

    #[test]
    fn no_kills_before_rung_completes() {
        let jobs = vec![job(0, 0.6), job(1, 0.3)];
        let mut hb = HyperBand::new(HyperBandConfig {
            rung_iterations: 100.0,
            eta: 2.0,
        });
        let update = hb.update(Time::ZERO, &views(&jobs));
        assert!(update.kill.is_empty());
        assert_eq!(hb.rungs_completed(), 0);
    }

    #[test]
    fn kills_bottom_half_at_rung() {
        let mut jobs = vec![job(0, 0.8), job(1, 0.7), job(2, 0.3), job(3, 0.25)];
        let mut hb = HyperBand::new(HyperBandConfig {
            rung_iterations: 50.0,
            eta: 2.0,
        });
        // Feed several observations as training progresses so the curve fit
        // has data, then cross the rung.
        for _ in 0..6 {
            for (spec, progress) in jobs.iter_mut() {
                progress.advance(spec, Time::minutes(2.5), 4, Locality::Slot);
            }
            let v = views(&jobs);
            let update = hb.update(Time::ZERO, &v);
            if !update.kill.is_empty() {
                // The slowly-converging jobs (small exponents => ids 2, 3)
                // must be the ones killed.
                assert_eq!(update.kill.len(), 2);
                assert!(update.kill.contains(&JobId(2)));
                assert!(update.kill.contains(&JobId(3)));
                return;
            }
        }
        panic!("expected a halving rung to trigger");
    }

    #[test]
    fn successive_rungs_reduce_to_one_job() {
        let mut jobs = vec![job(0, 0.9), job(1, 0.6), job(2, 0.45), job(3, 0.3)];
        let mut hb = HyperBand::new(HyperBandConfig {
            rung_iterations: 40.0,
            eta: 2.0,
        });
        let mut killed: Vec<JobId> = Vec::new();
        for step in 0..200 {
            for (spec, progress) in jobs.iter_mut() {
                if !killed.contains(&spec.id) {
                    progress.advance(spec, Time::minutes(1.0), 4, Locality::Slot);
                }
            }
            let v = views(&jobs);
            let update = hb.update(Time::minutes(step as f64), &v);
            for id in update.kill {
                let (spec, progress) = jobs.iter_mut().find(|(s, _)| s.id == id).unwrap();
                progress.kill(Time::minutes(step as f64));
                killed.push(spec.id);
            }
            let active = jobs.iter().filter(|(s, p)| !p.is_finished(s)).count();
            if active == 1 {
                // Exactly the fastest job survives.
                let survivor = jobs.iter().find(|(s, p)| !p.is_finished(s)).unwrap();
                assert_eq!(survivor.0.id, JobId(0));
                return;
            }
        }
        panic!("never reduced to a single job");
    }

    #[test]
    fn single_active_job_is_never_killed() {
        let jobs = vec![job(0, 0.5)];
        let mut hb = HyperBand::with_defaults(1);
        for _ in 0..10 {
            let update = hb.update(Time::ZERO, &views(&jobs));
            assert!(update.kill.is_empty());
        }
    }
}

//! HyperDrive app scheduler.
//!
//! HyperDrive (Rasley et al., 2017) launches jobs at equal priority and
//! continuously monitors loss convergence to classify each job as **good**,
//! **promising** or **poor** (§5.2). It gives higher execution priority
//! (larger max parallelism) to good jobs, keeps promising jobs at their
//! base priority, and terminates poor jobs as soon as they are classified.

use crate::api::{AppScheduler, JobClass, JobView, SchedulerUpdate};
use crate::estimator::WorkEstimator;
use std::collections::BTreeMap;
use themis_cluster::ids::JobId;
use themis_cluster::time::Time;

/// Configuration of the HyperDrive classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperDriveConfig {
    /// Minimum iterations a job must run before it can be classified
    /// (avoids killing jobs on noisy early fits).
    pub warmup_iterations: f64,
    /// A job is **good** if its projected total iterations are within this
    /// factor of the best job's projection.
    pub good_factor: f64,
    /// A job is **poor** (killed) if its projected total iterations exceed
    /// this factor of the best job's projection, or if its fitted curve
    /// cannot reach the target at all.
    pub poor_factor: f64,
    /// Parallelism multiplier applied to good jobs (relative to the spec's
    /// max parallelism).
    pub good_boost: f64,
}

impl Default for HyperDriveConfig {
    fn default() -> Self {
        HyperDriveConfig {
            warmup_iterations: 30.0,
            good_factor: 1.25,
            poor_factor: 3.0,
            good_boost: 2.0,
        }
    }
}

/// The HyperDrive POP-style scheduler.
#[derive(Debug)]
pub struct HyperDrive {
    config: HyperDriveConfig,
    estimators: BTreeMap<JobId, WorkEstimator>,
    classes: BTreeMap<JobId, JobClass>,
}

impl HyperDrive {
    /// Creates a HyperDrive scheduler with an explicit configuration.
    pub fn new(config: HyperDriveConfig) -> Self {
        HyperDrive {
            config,
            estimators: BTreeMap::new(),
            classes: BTreeMap::new(),
        }
    }

    /// Creates a HyperDrive scheduler with default thresholds.
    pub fn with_defaults() -> Self {
        HyperDrive::new(HyperDriveConfig::default())
    }

    /// The last classification assigned to a job, if any.
    pub fn class_of(&self, job: JobId) -> Option<JobClass> {
        self.classes.get(&job).copied()
    }

    fn classify(&mut self, jobs: &[JobView<'_>]) {
        // Projected total iterations per active, warmed-up job.
        let mut projections: Vec<(JobId, Option<f64>)> = Vec::new();
        for job in jobs.iter().filter(|j| j.is_active()) {
            if job.progress.iterations_done < self.config.warmup_iterations {
                continue;
            }
            let proj = self
                .estimators
                .get(&job.id())
                .and_then(|e| e.projected_total_iterations(job.spec));
            projections.push((job.id(), proj));
        }
        let best = projections
            .iter()
            .filter_map(|(_, p)| *p)
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return;
        }
        for (id, proj) in projections {
            let class = match proj {
                None => JobClass::Poor,
                Some(p) if p <= best * self.config.good_factor => JobClass::Good,
                Some(p) if p >= best * self.config.poor_factor => JobClass::Poor,
                Some(_) => JobClass::Promising,
            };
            self.classes.insert(id, class);
        }
    }
}

impl AppScheduler for HyperDrive {
    fn name(&self) -> &'static str {
        "hyperdrive"
    }

    fn update(&mut self, _now: Time, jobs: &[JobView<'_>]) -> SchedulerUpdate {
        for job in jobs.iter().filter(|j| j.is_active()) {
            self.estimators
                .entry(job.id())
                .or_default()
                .observe_progress(job.spec, job.progress);
        }

        let active_count = jobs.iter().filter(|j| j.is_active()).count();
        if active_count <= 1 {
            return SchedulerUpdate::none();
        }

        self.classify(jobs);

        let mut kill = Vec::new();
        let mut max_parallelism = Vec::new();
        let mut would_kill_all = true;
        for job in jobs.iter().filter(|j| j.is_active()) {
            match self.classes.get(&job.id()) {
                Some(JobClass::Poor) => kill.push(job.id()),
                Some(JobClass::Good) => {
                    would_kill_all = false;
                    let boosted = ((job.spec.max_parallelism as f64) * self.config.good_boost)
                        .round() as usize;
                    max_parallelism.push((job.id(), boosted.max(job.spec.max_parallelism)));
                }
                Some(JobClass::Promising) | None => {
                    would_kill_all = false;
                }
            }
        }
        // Never kill every remaining job: the best of a bad bunch survives.
        if would_kill_all && !kill.is_empty() {
            kill.pop();
        }
        SchedulerUpdate {
            kill,
            max_parallelism,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::placement::Locality;
    use themis_cluster::time::Time;
    use themis_workload::job::{JobProgress, JobSpec};
    use themis_workload::loss::LossCurve;
    use themis_workload::models::ModelArch;

    fn job(id: u32, exponent: f64) -> (JobSpec, JobProgress) {
        let mut spec = JobSpec::new(JobId(id), ModelArch::Vgg16, 2000.0, Time::minutes(0.05), 4);
        spec.loss_curve = LossCurve::PowerLaw {
            floor: 0.0,
            scale: 2.0,
            exponent,
        };
        spec.target_loss = 0.1;
        (spec, JobProgress::new())
    }

    fn views<'a>(jobs: &'a [(JobSpec, JobProgress)]) -> Vec<JobView<'a>> {
        jobs.iter()
            .map(|(s, p)| JobView {
                spec: s,
                progress: p,
            })
            .collect()
    }

    fn run_scheduler(
        hd: &mut HyperDrive,
        jobs: &mut [(JobSpec, JobProgress)],
        steps: usize,
    ) -> Vec<SchedulerUpdate> {
        let mut updates = Vec::new();
        for step in 0..steps {
            for (spec, progress) in jobs.iter_mut() {
                if !progress.is_finished(spec) {
                    progress.advance(spec, Time::minutes(1.0), 4, Locality::Slot);
                }
            }
            let v = views(jobs);
            let update = hd.update(Time::minutes(step as f64), &v);
            for id in &update.kill {
                let (_, progress) = jobs.iter_mut().find(|(s, _)| s.id == *id).unwrap();
                progress.kill(Time::minutes(step as f64));
            }
            updates.push(update);
        }
        updates
    }

    #[test]
    fn poor_jobs_are_killed_good_jobs_boosted() {
        // Job 0 converges ~3x faster than job 2 (exponent ratio), job 1 is
        // in between.
        let mut jobs = vec![job(0, 0.9), job(1, 0.55), job(2, 0.22)];
        let mut hd = HyperDrive::with_defaults();
        let updates = run_scheduler(&mut hd, &mut jobs, 60);
        // The slowest job must eventually be classified poor and killed.
        assert!(
            jobs[2].1.killed,
            "slowest job should be killed, classes: {:?}",
            (0..3).map(|i| hd.class_of(JobId(i))).collect::<Vec<_>>()
        );
        // The fastest job must be classified good and receive a boost.
        assert_eq!(hd.class_of(JobId(0)), Some(JobClass::Good));
        let boosted = updates
            .iter()
            .flat_map(|u| u.max_parallelism.iter())
            .any(|(id, par)| *id == JobId(0) && *par > 4);
        assert!(boosted, "good job should get a parallelism boost");
        // The fastest job is never killed.
        assert!(!jobs[0].1.killed);
    }

    #[test]
    fn warmup_prevents_early_kills() {
        let mut jobs = vec![job(0, 0.9), job(1, 0.2)];
        let mut hd = HyperDrive::new(HyperDriveConfig {
            warmup_iterations: 1e9, // effectively never classify
            ..Default::default()
        });
        let updates = run_scheduler(&mut hd, &mut jobs, 30);
        assert!(updates.iter().all(|u| u.kill.is_empty()));
        assert!(!jobs[1].1.killed);
    }

    #[test]
    fn never_kills_all_jobs() {
        // All jobs are equally terrible; nothing converges fast, but at
        // least one job must survive.
        let mut jobs = vec![job(0, 0.2), job(1, 0.2)];
        let mut hd = HyperDrive::new(HyperDriveConfig {
            warmup_iterations: 5.0,
            good_factor: 0.0, // nothing is good
            poor_factor: 0.5, // everything is poor
            good_boost: 1.0,
        });
        run_scheduler(&mut hd, &mut jobs, 40);
        let not_killed = jobs.iter().filter(|(_, p)| !p.killed).count();
        assert!(not_killed >= 1, "at least one job must escape being killed");
    }

    #[test]
    fn single_job_apps_are_untouched() {
        let mut jobs = vec![job(0, 0.5)];
        let mut hd = HyperDrive::with_defaults();
        let updates = run_scheduler(&mut hd, &mut jobs, 20);
        assert!(updates.iter().all(|u| u.is_empty()));
    }
}

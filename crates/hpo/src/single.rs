//! The trivial app scheduler for single-job apps.
//!
//! Apps whose user already knows the right hyper-parameters contain a single
//! job (§2.1); there is nothing to kill or re-prioritize, so the scheduler
//! is a no-op that simply exposes the Agent API defaults.

use crate::api::{AppScheduler, JobView, SchedulerUpdate};
use themis_cluster::time::Time;

/// App scheduler for single-job apps: never kills, never re-prioritizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleJob;

impl SingleJob {
    /// Creates the scheduler.
    pub fn new() -> Self {
        SingleJob
    }
}

impl AppScheduler for SingleJob {
    fn name(&self) -> &'static str {
        "single-job"
    }

    fn update(&mut self, _now: Time, _jobs: &[JobView<'_>]) -> SchedulerUpdate {
        SchedulerUpdate::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AppScheduler;
    use themis_cluster::ids::JobId;
    use themis_cluster::time::Time;
    use themis_workload::job::{JobProgress, JobSpec};
    use themis_workload::models::ModelArch;

    #[test]
    fn never_kills() {
        let spec = JobSpec::new(JobId(0), ModelArch::ResNet50, 100.0, Time::minutes(0.1), 2);
        let progress = JobProgress::new();
        let mut s = SingleJob::new();
        let update = s.update(
            Time::ZERO,
            &[JobView {
                spec: &spec,
                progress: &progress,
            }],
        );
        assert!(update.is_empty());
        assert_eq!(s.name(), "single-job");
    }

    #[test]
    fn estimates_cover_the_single_job() {
        let spec = JobSpec::new(JobId(0), ModelArch::Vgg16, 100.0, Time::minutes(0.1), 2);
        let progress = JobProgress::new();
        let s = SingleJob::new();
        let est = s.estimates(&[JobView {
            spec: &spec,
            progress: &progress,
        }]);
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].job, JobId(0));
        assert_eq!(est[0].work_left, spec.total_work());
    }
}

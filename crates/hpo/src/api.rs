//! The ML-app-scheduler ↔ Agent API.
//!
//! The paper defines a narrow interface between an app's hyper-parameter
//! tuning framework and the Themis Agent (§5.2, "ML App Scheduler to Agent
//! API"): at bid-preparation time the Agent pulls, for every constituent
//! job, the total work, the work left, the placement sensitivity and the
//! maximum parallelism. In the other direction, the app scheduler is told
//! about training progress and decides which jobs to keep, boost or kill.

use themis_cluster::ids::JobId;
use themis_cluster::time::Time;
use themis_workload::job::{JobProgress, JobSpec};
use themis_workload::sensitivity::PlacementSensitivity;

/// A read-only view of one job handed to the app scheduler.
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    /// Static description of the job.
    pub spec: &'a JobSpec,
    /// Current training progress.
    pub progress: &'a JobProgress,
}

impl JobView<'_> {
    /// The job id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Whether the job is still running (not converged, not killed).
    pub fn is_active(&self) -> bool {
        !self.progress.is_finished(self.spec)
    }
}

/// The classification HyperDrive-style schedulers assign to a job (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobClass {
    /// Converging quickly; gets the highest execution priority.
    Good,
    /// Converging acceptably; kept at normal priority.
    Promising,
    /// Converging too slowly (or not at all); terminated.
    Poor,
}

/// What the Agent needs to know about a job to prepare a bid (§5.2):
/// total work, work left, max parallelism and placement sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEstimate {
    /// The job this estimate describes.
    pub job: JobId,
    /// Estimated total work `W` (GPU-minutes of serial computation).
    pub total_work: Time,
    /// Estimated work left `W'` (GPU-minutes of serial computation).
    pub work_left: Time,
    /// Maximum useful parallelism `G_ideal` currently assigned to the job
    /// by its app scheduler.
    pub max_parallelism: usize,
    /// Placement-sensitivity profile `S`.
    pub sensitivity: PlacementSensitivity,
}

/// The decision an app scheduler returns after observing progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerUpdate {
    /// Jobs to terminate immediately (their GPUs return to the app and are
    /// redistributed among the surviving jobs).
    pub kill: Vec<JobId>,
    /// Optional per-job max-parallelism overrides (HyperDrive boosts good
    /// jobs and throttles promising ones).
    pub max_parallelism: Vec<(JobId, usize)>,
}

impl SchedulerUpdate {
    /// An update that changes nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this update requires any action.
    pub fn is_empty(&self) -> bool {
        self.kill.is_empty() && self.max_parallelism.is_empty()
    }
}

/// The top-level (per-app) scheduler interface.
///
/// Implementations decide which of the app's jobs stay alive and how much
/// parallelism each should receive; the Agent combines this with placement
/// sensitivity to prepare bids.
pub trait AppScheduler: std::fmt::Debug + Send {
    /// Short name for reporting ("hyperband", "hyperdrive", ...).
    fn name(&self) -> &'static str;

    /// Observes the current state of every job in the app and returns which
    /// jobs to kill / re-prioritize. Called by the simulator at every
    /// scheduling event (lease expiry / auction round).
    fn update(&mut self, now: Time, jobs: &[JobView<'_>]) -> SchedulerUpdate;

    /// The Agent API: per-job estimates used to prepare bids. The default
    /// implementation reports clairvoyant work-left (matching the paper's
    /// simulator, which assumes clairvoyance of iteration counts, §8.1) and
    /// the spec's max parallelism.
    fn estimates(&self, jobs: &[JobView<'_>]) -> Vec<JobEstimate> {
        jobs.iter()
            .filter(|j| j.is_active())
            .map(|j| JobEstimate {
                job: j.spec.id,
                total_work: j.spec.total_work(),
                work_left: j.progress.work_left(j.spec),
                max_parallelism: j.spec.max_parallelism,
                sensitivity: j.spec.sensitivity(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::placement::Locality;
    use themis_workload::models::ModelArch;

    #[derive(Debug)]
    struct Noop;
    impl AppScheduler for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn update(&mut self, _now: Time, _jobs: &[JobView<'_>]) -> SchedulerUpdate {
            SchedulerUpdate::none()
        }
    }

    fn spec() -> JobSpec {
        JobSpec::new(JobId(0), ModelArch::ResNet50, 100.0, Time::minutes(0.1), 4)
    }

    #[test]
    fn default_estimates_are_clairvoyant() {
        let spec = spec();
        let mut progress = JobProgress::new();
        progress.advance(&spec, Time::minutes(1.0), 4, Locality::Slot);
        let views = [JobView {
            spec: &spec,
            progress: &progress,
        }];
        let estimates = Noop.estimates(&views);
        assert_eq!(estimates.len(), 1);
        assert_eq!(estimates[0].total_work, spec.total_work());
        assert_eq!(estimates[0].work_left, progress.work_left(&spec));
        assert_eq!(estimates[0].max_parallelism, 4);
    }

    #[test]
    fn finished_jobs_are_excluded_from_estimates() {
        let spec = spec();
        let mut progress = JobProgress::new();
        progress.kill(Time::ZERO);
        let views = [JobView {
            spec: &spec,
            progress: &progress,
        }];
        assert!(Noop.estimates(&views).is_empty());
        assert!(!views[0].is_active());
    }

    #[test]
    fn scheduler_update_none_is_empty() {
        assert!(SchedulerUpdate::none().is_empty());
        let update = SchedulerUpdate {
            kill: vec![JobId(1)],
            max_parallelism: vec![],
        };
        assert!(!update.is_empty());
    }

    #[test]
    fn job_class_ordering() {
        assert!(JobClass::Good < JobClass::Promising);
        assert!(JobClass::Promising < JobClass::Poor);
    }
}

//! Work-left estimation from observed loss values.
//!
//! The paper's prototype implements a profiler that parses training logs,
//! tracks `(iteration, loss)` samples, fits a best-fit curve and projects
//! the number of iterations still needed to reach the target accuracy (§7).
//! App schedulers use the projection to decide which jobs to kill, and the
//! Agent uses it as the work-left `W'` input to bid preparation.

use themis_cluster::time::Time;
use themis_workload::job::{JobProgress, JobSpec};
use themis_workload::loss::{fit_power_law, LossCurve};

/// Accumulates `(iteration, loss)` observations for one job and projects the
/// remaining work by curve fitting.
#[derive(Debug, Clone, Default)]
pub struct WorkEstimator {
    samples: Vec<(f64, f64)>,
    fitted: Option<LossCurve>,
}

impl WorkEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples observed so far.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Maximum number of retained samples; beyond this the history is
    /// thinned (every other sample dropped) so that long-running jobs do not
    /// make each curve fit progressively more expensive.
    const MAX_SAMPLES: usize = 256;

    /// Records a loss observation at the given iteration and refreshes the
    /// fitted curve.
    pub fn observe(&mut self, iteration: f64, loss: f64) {
        // Skip duplicate observations at the same iteration (a job that made
        // no progress since the last scheduling round adds no information).
        if let Some((last_it, _)) = self.samples.last() {
            if (iteration - last_it).abs() < 1e-9 {
                return;
            }
        }
        self.samples.push((iteration, loss));
        if self.samples.len() > Self::MAX_SAMPLES {
            let mut keep_odd = false;
            self.samples.retain(|_| {
                keep_odd = !keep_odd;
                keep_odd
            });
        }
        if self.samples.len() >= 3 {
            self.fitted = fit_power_law(&self.samples);
        }
    }

    /// Convenience helper: samples the job's true loss curve at its current
    /// progress (what the paper's profiler would read from the training
    /// logs) and records it.
    pub fn observe_progress(&mut self, spec: &JobSpec, progress: &JobProgress) {
        self.observe(progress.iterations_done, progress.current_loss(spec));
    }

    /// The fitted curve, if enough samples have been observed.
    pub fn fitted_curve(&self) -> Option<&LossCurve> {
        self.fitted.as_ref()
    }

    /// Projected *total* iterations needed to reach `target_loss`.
    ///
    /// Falls back to the clairvoyant spec value when no fit is available and
    /// returns `None` when the fitted curve says the target is unreachable
    /// (the job should be classified as poor).
    pub fn projected_total_iterations(&self, spec: &JobSpec) -> Option<f64> {
        match &self.fitted {
            Some(curve) => curve.iterations_to_target(spec.target_loss),
            None => Some(spec.total_iterations),
        }
    }

    /// Projected iterations *left* for a job given its progress.
    pub fn projected_iterations_left(&self, spec: &JobSpec, progress: &JobProgress) -> Option<f64> {
        self.projected_total_iterations(spec)
            .map(|total| (total - progress.iterations_done).max(0.0))
    }

    /// Projected work left in GPU-minutes of serial computation
    /// (`iterations_left * serial_iter_time`).
    pub fn projected_work_left(&self, spec: &JobSpec, progress: &JobProgress) -> Option<Time> {
        self.projected_iterations_left(spec, progress)
            .map(|iters| spec.serial_iter_time * iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::placement::Locality;
    use themis_workload::models::ModelArch;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(JobId(0), ModelArch::ResNet50, 1000.0, Time::minutes(0.1), 4);
        // A zero-floor power law so the fitting model matches exactly.
        s.loss_curve = LossCurve::PowerLaw {
            floor: 0.0,
            scale: 2.0,
            exponent: 0.45,
        };
        s.target_loss = 2.0 * 1001.0f64.powf(-0.45);
        s
    }

    #[test]
    fn falls_back_to_clairvoyant_without_samples() {
        let spec = spec();
        let est = WorkEstimator::new();
        assert_eq!(est.projected_total_iterations(&spec), Some(1000.0));
        let progress = JobProgress::new();
        assert_eq!(
            est.projected_work_left(&spec, &progress),
            Some(spec.total_work())
        );
    }

    #[test]
    fn fitting_recovers_projection_close_to_truth() {
        let spec = spec();
        let mut est = WorkEstimator::new();
        let mut progress = JobProgress::new();
        // Observe the first ~30% of training.
        for _ in 0..30 {
            progress.advance(&spec, Time::minutes(1.0), 4, Locality::Slot);
            est.observe_progress(&spec, &progress);
        }
        assert!(est.num_samples() >= 3);
        assert!(est.fitted_curve().is_some());
        let projected = est.projected_total_iterations(&spec).unwrap();
        let rel_err = (projected - spec.total_iterations).abs() / spec.total_iterations;
        assert!(
            rel_err < 0.1,
            "projected {projected} vs 1000, rel err {rel_err}"
        );
    }

    #[test]
    fn iterations_left_decreases_with_progress() {
        let spec = spec();
        let mut est = WorkEstimator::new();
        let mut progress = JobProgress::new();
        let left0 = est.projected_iterations_left(&spec, &progress).unwrap();
        progress.advance(&spec, Time::minutes(10.0), 4, Locality::Slot);
        est.observe_progress(&spec, &progress);
        let left1 = est.projected_iterations_left(&spec, &progress).unwrap();
        assert!(left1 < left0);
    }

    #[test]
    fn unreachable_target_projects_none() {
        let mut spec = spec();
        spec.loss_curve = LossCurve::poor();
        spec.target_loss = 0.1; // below the poor curve's floor of 0.8
        let mut est = WorkEstimator::new();
        // With no samples we fall back to clairvoyance (Some); after fitting
        // the real (never-converging, high-floor) curve the projection uses
        // the fitted zero-floor power law, which decays very slowly — the
        // key signal is a huge projected iteration count.
        let mut progress = JobProgress::new();
        for _ in 0..20 {
            progress.advance(&spec, Time::minutes(5.0), 4, Locality::Slot);
            est.observe_progress(&spec, &progress);
        }
        match est.projected_total_iterations(&spec) {
            None => {}
            Some(projected) => assert!(
                projected > 10.0 * spec.total_iterations,
                "poor job must project far more work than clairvoyant: {projected}"
            ),
        }
    }
}

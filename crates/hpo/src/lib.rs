//! # themis-hpo
//!
//! Hyper-parameter-optimization (HPO) app schedulers for the Themis
//! reproduction (NSDI 2020).
//!
//! Themis uses a two-level architecture: the bottom level (the Arbiter,
//! implemented in `themis-core`) allocates GPUs *across* apps, while the top
//! level — an app's own hyper-parameter tuning framework — decides how to
//! split the app's GPUs among its constituent jobs and which jobs to
//! terminate early (§2.3, §5.2). This crate implements the two frameworks
//! the paper integrates with:
//!
//! * [`hyperband::HyperBand`] — launches all jobs at equal priority and
//!   periodically kills the bottom half by projected convergence until a
//!   single job remains,
//! * [`hyperdrive::HyperDrive`] — continuously classifies jobs as good /
//!   promising / poor from their loss-curve fits, boosts good jobs and
//!   kills poor ones,
//!
//! plus [`single::SingleJob`] for apps that train one configuration, the
//! [`api::AppScheduler`] trait they all implement, and the
//! [`estimator::WorkEstimator`] that performs the loss-curve fitting and
//! work-left projection the paper's Agent relies on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod estimator;
pub mod hyperband;
pub mod hyperdrive;
pub mod single;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::api::{AppScheduler, JobClass, JobEstimate, JobView, SchedulerUpdate};
    pub use crate::estimator::WorkEstimator;
    pub use crate::hyperband::HyperBand;
    pub use crate::hyperdrive::HyperDrive;
    pub use crate::single::SingleJob;
}

pub use prelude::*;

use themis_workload::app::AppSpec;

/// Builds the default app scheduler for an app: [`SingleJob`] for single-job
/// apps and [`HyperBand`] (the scheduler the paper's prototype implements,
/// §7) for multi-job apps.
pub fn default_scheduler_for(app: &AppSpec) -> Box<dyn AppScheduler> {
    if app.num_jobs() == 1 {
        Box::new(SingleJob::new())
    } else {
        Box::new(HyperBand::with_defaults(app.num_jobs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::{AppId, JobId};
    use themis_cluster::time::Time;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    #[test]
    fn default_scheduler_depends_on_job_count() {
        let job = |id| JobSpec::new(JobId(id), ModelArch::ResNet50, 100.0, Time::minutes(0.1), 2);
        let single = AppSpec::new(AppId(0), Time::ZERO, vec![job(0)]);
        let multi = AppSpec::new(AppId(1), Time::ZERO, vec![job(0), job(1), job(2)]);
        assert_eq!(default_scheduler_for(&single).name(), "single-job");
        assert_eq!(default_scheduler_for(&multi).name(), "hyperband");
    }
}

//! The parallel scenario-matrix sweep runner.
//!
//! A sweep executes every `(scenario × policy)` cell of a [`Matrix`] and
//! aggregates the per-cell metrics into a [`SweepReport`]. Cells are
//! independent deterministic simulations — the engine is owned per run —
//! so they shard across threads via [`themis_sim::batch::run_batch`];
//! results come back in cell order, which makes the canonical report a
//! pure function of the matrix regardless of `jobs`.

use crate::policies::Policy;
use crate::report::{CellMetrics, CellReport, SweepReport};
use crate::scenarios::{Matrix, Scenario};
use std::time::Instant;
use themis_sim::batch::run_batch;
use themis_sim::metrics::SimReport;

/// Runs every cell of `matrix`, at most `jobs` concurrently.
pub fn run_sweep(matrix: &Matrix, jobs: usize) -> SweepReport {
    run_sweep_filtered(matrix, jobs, None)
}

/// Runs `matrix` restricted to the given policies (`None` = all of the
/// matrix's policies), at most `jobs` cells concurrently.
pub fn run_sweep_filtered(
    matrix: &Matrix,
    jobs: usize,
    policies: Option<&[Policy]>,
) -> SweepReport {
    let cells: Vec<(Scenario, Policy)> = matrix
        .cells()
        .into_iter()
        .filter(|(_, policy)| match policies {
            Some(keep) => keep.iter().any(|p| p.name() == policy.name()),
            None => true,
        })
        .collect();
    let started = Instant::now();
    let reports = run_batch(cells.len(), jobs, |i| run_cell(&cells[i].0, cells[i].1));
    SweepReport {
        matrix: matrix.name.clone(),
        cells: reports,
        total_wall_clock_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one `(scenario, policy)` cell and extracts its metrics. A cell
/// with a service axis runs the open-system service engine and carries the
/// windowed `service` metric block; every other cell runs the batch engine
/// exactly as before.
pub fn run_cell(scenario: &Scenario, policy: Policy) -> CellReport {
    let started = Instant::now();
    let metrics = if scenario.service.is_some() {
        CellMetrics::from_service_report(&scenario.run_service(policy))
    } else {
        CellMetrics::from_report(&scenario.run(policy))
    };
    CellReport {
        id: format!("{}/{}", scenario.id(), policy.name()),
        policy: policy.name().to_string(),
        scenario: scenario.clone(),
        metrics,
        wall_clock_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The verdict of the record→replay gate on one distributed-mode cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayGateOutcome {
    /// `"<scenario id>/<policy>"` of the gated cell.
    pub id: String,
    /// Transport decisions the recorded run transcribed.
    pub records: usize,
    /// The transcript in its stable text form (for artifact upload).
    pub log_text: String,
    /// Whether the replayed run reproduced the recorded canonical report
    /// byte for byte.
    pub matched: bool,
}

/// Renders one cell's run as a canonical single-cell sweep document —
/// the byte string the replay gate compares.
fn canonical_cell(matrix: &str, scenario: &Scenario, policy: Policy, report: &SimReport) -> String {
    SweepReport {
        matrix: matrix.to_string(),
        cells: vec![CellReport {
            id: format!("{}/{}", scenario.id(), policy.name()),
            policy: policy.name().to_string(),
            scenario: scenario.clone(),
            metrics: CellMetrics::from_report(report),
            wall_clock_ms: 0.0,
        }],
        total_wall_clock_ms: 0.0,
    }
    .to_canonical_string()
}

/// Runs the record→replay determinism gate over every distributed-mode
/// cell of `matrix`: each cell runs once with a transcript attached, is
/// re-executed from the transcript alone (the fault RNG never consulted),
/// and the two canonical single-cell documents are byte-compared. One
/// outcome per distributed cell, in matrix order; non-distributed
/// policies have no transport and are skipped.
pub fn run_replay_gate(matrix: &Matrix) -> Vec<ReplayGateOutcome> {
    matrix
        .cells()
        .into_iter()
        .filter(|(_, policy)| policy.is_distributed())
        .map(|(scenario, policy)| {
            let (recorded, log) = scenario.run_recorded(policy);
            let records = log.len();
            let log_text = log.to_text();
            let replayed = scenario.run_replayed(policy, log);
            ReplayGateOutcome {
                id: format!("{}/{}", scenario.id(), policy.name()),
                records,
                log_text,
                matched: canonical_cell(&matrix.name, &scenario, policy, &replayed)
                    == canonical_cell(&matrix.name, &scenario, policy, &recorded),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ClusterKind;

    fn tiny_matrix() -> Matrix {
        Matrix {
            policies: vec![Policy::themis_default(), Policy::Drf],
            contention: vec![1.0, 2.0],
            ..Matrix::point("tiny", ClusterKind::Rack16, 3, 7)
        }
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let matrix = tiny_matrix();
        let report = run_sweep(&matrix, 1);
        assert_eq!(report.matrix, "tiny");
        assert_eq!(report.cells.len(), matrix.cells().len());
        let expected_ids: Vec<String> = matrix
            .cells()
            .iter()
            .map(|(s, p)| format!("{}/{}", s.id(), p.name()))
            .collect();
        let got_ids: Vec<String> = report.cells.iter().map(|c| c.id.clone()).collect();
        assert_eq!(got_ids, expected_ids);
        for cell in &report.cells {
            assert!(cell.metrics.scheduling_rounds > 0);
            assert!(cell.metrics.gpu_hours >= 0.0);
        }
    }

    #[test]
    fn policy_filter_restricts_cells() {
        let matrix = tiny_matrix();
        let report = run_sweep_filtered(&matrix, 1, Some(&[Policy::Drf]));
        assert!(!report.cells.is_empty());
        assert!(report.cells.iter().all(|c| c.policy == "drf"));
    }

    #[test]
    fn serial_and_parallel_sweeps_emit_identical_canonical_json() {
        let matrix = tiny_matrix();
        let serial = run_sweep(&matrix, 1);
        let parallel = run_sweep(&matrix, 3);
        assert_eq!(serial.to_canonical_string(), parallel.to_canonical_string());
    }

    #[test]
    fn replay_gate_covers_only_distributed_cells_and_passes() {
        use themis_cluster::time::Time;
        use themis_protocol::transport::FaultConfig;
        let matrix = Matrix {
            policies: vec![Policy::themis_default(), Policy::themis_dist_default()],
            faults: vec![FaultConfig::reliable()
                .with_drop_probability(0.2)
                .with_delay(Time::seconds(2.0))],
            ..Matrix::point("gate", ClusterKind::Rack16, 3, 7)
        };
        let outcomes = run_replay_gate(&matrix);
        assert_eq!(outcomes.len(), 1, "only the distributed cell is gated");
        let outcome = &outcomes[0];
        assert!(outcome.id.ends_with("/themis-dist"), "{}", outcome.id);
        assert!(outcome.matched, "replay diverged on {}", outcome.id);
        assert!(outcome.records > 0);
        assert!(outcome.log_text.starts_with("themis-msglog v1"));
    }
}

//! The parallel scenario-matrix sweep runner.
//!
//! A sweep executes every `(scenario × policy)` cell of a [`Matrix`] and
//! aggregates the per-cell metrics into a [`SweepReport`]. Cells are
//! independent deterministic simulations — the engine is owned per run —
//! so they shard across threads via [`themis_sim::batch::run_batch`];
//! results come back in cell order, which makes the canonical report a
//! pure function of the matrix regardless of `jobs`.

use crate::policies::Policy;
use crate::report::{CellMetrics, CellReport, SweepReport};
use crate::scenarios::{Matrix, Scenario};
use std::time::Instant;
use themis_sim::batch::run_batch;

/// Runs every cell of `matrix`, at most `jobs` concurrently.
pub fn run_sweep(matrix: &Matrix, jobs: usize) -> SweepReport {
    run_sweep_filtered(matrix, jobs, None)
}

/// Runs `matrix` restricted to the given policies (`None` = all of the
/// matrix's policies), at most `jobs` cells concurrently.
pub fn run_sweep_filtered(
    matrix: &Matrix,
    jobs: usize,
    policies: Option<&[Policy]>,
) -> SweepReport {
    let cells: Vec<(Scenario, Policy)> = matrix
        .cells()
        .into_iter()
        .filter(|(_, policy)| match policies {
            Some(keep) => keep.iter().any(|p| p.name() == policy.name()),
            None => true,
        })
        .collect();
    let started = Instant::now();
    let reports = run_batch(cells.len(), jobs, |i| run_cell(&cells[i].0, cells[i].1));
    SweepReport {
        matrix: matrix.name.clone(),
        cells: reports,
        total_wall_clock_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one `(scenario, policy)` cell and extracts its metrics.
pub fn run_cell(scenario: &Scenario, policy: Policy) -> CellReport {
    let started = Instant::now();
    let report = scenario.run(policy);
    CellReport {
        id: format!("{}/{}", scenario.id(), policy.name()),
        policy: policy.name().to_string(),
        scenario: scenario.clone(),
        metrics: CellMetrics::from_report(&report),
        wall_clock_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ClusterKind;

    fn tiny_matrix() -> Matrix {
        Matrix {
            policies: vec![Policy::themis_default(), Policy::Drf],
            contention: vec![1.0, 2.0],
            ..Matrix::point("tiny", ClusterKind::Rack16, 3, 7)
        }
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let matrix = tiny_matrix();
        let report = run_sweep(&matrix, 1);
        assert_eq!(report.matrix, "tiny");
        assert_eq!(report.cells.len(), matrix.cells().len());
        let expected_ids: Vec<String> = matrix
            .cells()
            .iter()
            .map(|(s, p)| format!("{}/{}", s.id(), p.name()))
            .collect();
        let got_ids: Vec<String> = report.cells.iter().map(|c| c.id.clone()).collect();
        assert_eq!(got_ids, expected_ids);
        for cell in &report.cells {
            assert!(cell.metrics.scheduling_rounds > 0);
            assert!(cell.metrics.gpu_hours >= 0.0);
        }
    }

    #[test]
    fn policy_filter_restricts_cells() {
        let matrix = tiny_matrix();
        let report = run_sweep_filtered(&matrix, 1, Some(&[Policy::Drf]));
        assert!(!report.cells.is_empty());
        assert!(report.cells.iter().all(|c| c.policy == "drf"));
    }

    #[test]
    fn serial_and_parallel_sweeps_emit_identical_canonical_json() {
        let matrix = tiny_matrix();
        let serial = run_sweep(&matrix, 1);
        let parallel = run_sweep(&matrix, 3);
        assert_eq!(serial.to_canonical_string(), parallel.to_canonical_string());
    }
}

//! Minimal deterministic JSON tree: writer and parser.
//!
//! The vendored `serde` is an offline stub whose derives expand to nothing
//! (see `vendor/README.md`), so the sweep reports serialize through this
//! self-contained module instead. Two properties matter more here than
//! generality:
//!
//! * **Canonical output** — object keys keep insertion order, floats print
//!   through Rust's shortest-roundtrip `Display`, indentation is fixed at
//!   two spaces. The same [`Json`] tree always renders to the same bytes,
//!   which is what lets CI diff `BENCH_BASELINE.json` exactly and lets the
//!   determinism test compare serial and parallel sweep output
//!   byte-for-byte.
//! * **Faithful round-trips** — [`Json::parse`] reads back everything the
//!   writer emits (plus standard escapes and exponent notation), so the
//!   regression gate can load a committed baseline and compare cell by
//!   cell.

use std::fmt;

/// A JSON value. Objects preserve insertion order (no sorting, no hashing)
/// so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. NaN/infinity are rejected at construction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key → value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value.
    ///
    /// # Panics
    /// Panics if `v` is NaN or infinite — the sweep metrics use
    /// `null` (via [`Json::opt_num`]) for absent values instead.
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Num(v)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// `Some(v)` → number, `None` → `null`. Non-finite values also map to
    /// `null` so a metric over an empty app set cannot poison a report.
    pub fn opt_num(v: Option<f64>) -> Json {
        match v {
            Some(v) if v.is_finite() => Json::Num(v),
            _ => Json::Null,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a number, treating `null` as absent.
    pub fn as_opt_f64(&self) -> Option<f64> {
        self.as_f64()
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the canonical pretty form (2-space indent, `\n` line ends,
    /// trailing newline). This is the only serialization the sweep tooling
    /// emits, so "the same report" always means "the same bytes".
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Rust's f64 Display is shortest-roundtrip and deterministic,
                // and prints integral values without a fraction ("8", "0.25").
                out.push_str(&format!("{v}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Exactly one value plus trailing whitespace is
    /// accepted.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the sweep
                            // schema; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number '{text}'")))?;
        if !value.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_output() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("smoke")),
            ("count".into(), Json::num(3.0)),
            ("ratio".into(), Json::num(0.125)),
            ("missing".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::num(1.0),
                    Json::str("a\"b\\c"),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).expect("canonical output parses");
        assert_eq!(doc, back);
        // Canonical rendering is a fixed point.
        assert_eq!(back.to_pretty_string(), text);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::num(8.0).to_pretty_string(), "8\n");
        assert_eq!(Json::num(0.25).to_pretty_string(), "0.25\n");
        assert_eq!(Json::num(-3.5).to_pretty_string(), "-3.5\n");
    }

    #[test]
    fn parses_standard_json_variants() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e2 , -3E-1 ] , \"b\" : \"x\\u0041\" } ")
            .expect("valid JSON");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(250.0)
        );
        assert!((v.get("a").unwrap().as_arr().unwrap()[2].as_f64().unwrap() + 0.3).abs() < 1e-12);
        assert_eq!(v.get("b").unwrap().as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = Json::parse("{\"n\": 1, \"s\": \"x\", \"z\": null}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("z").unwrap().as_opt_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::opt_num(Some(f64::NAN)), Json::Null);
        assert_eq!(Json::opt_num(None), Json::Null);
        assert_eq!(Json::opt_num(Some(2.0)), Json::Num(2.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_rejected() {
        let _ = Json::num(f64::INFINITY);
    }
}

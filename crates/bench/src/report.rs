//! Machine-readable sweep reports and the baseline regression gate.
//!
//! A sweep run aggregates one [`CellMetrics`] per `(scenario × policy)`
//! cell into a [`SweepReport`]. The canonical JSON rendering
//! ([`SweepReport::to_canonical_string`]) deliberately excludes wall-clock
//! timings: metrics are a pure function of the scenario, so serial and
//! parallel runs of the same matrix emit byte-identical documents, and CI
//! can diff a run against the committed `BENCH_BASELINE.json` exactly.
//! Timings are advisory — ask for them with
//! [`SweepReport::to_json`]`(true)` or the `sweep --timings` flag.

use crate::json::Json;
use crate::scenarios::{ClusterKind, GenMix, Scenario, ServiceAxis, ServiceShape, StormAxis};
use themis_cluster::time::Time;
use themis_protocol::transport::FaultConfig;
use themis_sim::metrics::SimReport;
use themis_sim::scheduler::ControlPlaneStats;
use themis_sim::service::ServiceReport;

/// Version stamp of the JSON schema, bumped on incompatible change so a
/// stale baseline fails loudly instead of diffing nonsense.
/// v2 added the scenario's transport-fault axis (`fault_*` fields); v3
/// added the GPU-generation heterogeneity axis (`gen_mix` plus the derived
/// per-cell `speed_*` metadata); v4 added the actor-transport fault axes
/// (jitter, bandwidth, partitions, Arbiter failover); v5 added the
/// open-system service axis (`service_*` scenario fields and the windowed
/// `service` metrics block, both present only on service-mode cells — a
/// closed-system cell's JSON is byte-identical to v4 apart from the
/// version stamp); v6 added the Arbiter-backpressure axes
/// (`fault_arbiter_service_minutes` and `fault_arbiter_batch`, present
/// only when engaged), the storm axis (`storm_bid_deadline_minutes`,
/// present only on storm cells) and the control-plane metrics block
/// (`control`, present on cells whose scheduler exposes auction-round
/// accounting — distributed-mode Themis).
pub const SCHEMA_VERSION: f64 = 6.0;

/// The windowed open-system metrics of one service-mode cell, extracted
/// from the final [`ServiceReport`] snapshot. Deterministic for pinned
/// seeds, so the service baseline gates them exactly alongside the batch
/// metric set.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Median finish-time fairness ρ over the final rolling window.
    pub p50_rho: Option<f64>,
    /// 99th-percentile ρ over the final rolling window.
    pub p99_rho: Option<f64>,
    /// Median queueing delay (arrival → first grant), minutes.
    pub p50_queueing_minutes: Option<f64>,
    /// 99th-percentile queueing delay, minutes.
    pub p99_queueing_minutes: Option<f64>,
    /// 99th-percentile lease-renewal latency (shrink → re-grant), minutes.
    pub p99_renewal_minutes: Option<f64>,
    /// Starvation audit: most consecutive zero-GPU rounds any schedulable
    /// app sat through after warmup.
    pub max_queue_rounds: u64,
    /// Apps admitted over the run.
    pub admitted: u64,
    /// Apps retired (finished and removed) over the run.
    pub retired: u64,
    /// When steady state was declared, in simulated minutes (absent if the
    /// run never converged).
    pub steady_state_minutes: Option<f64>,
    /// Rounds that invoked the scheduling policy.
    pub auctions_run: u64,
    /// Rounds the incremental hot path skipped the policy call on.
    pub auctions_skipped: u64,
}

impl ServiceMetrics {
    /// Extracts the windowed metric set from a finished service run.
    pub fn from_report(report: &ServiceReport) -> ServiceMetrics {
        ServiceMetrics {
            p50_rho: report.windows.p50_rho,
            p99_rho: report.windows.p99_rho,
            p50_queueing_minutes: report.windows.p50_queueing_minutes,
            p99_queueing_minutes: report.windows.p99_queueing_minutes,
            p99_renewal_minutes: report.windows.p99_renewal_minutes,
            max_queue_rounds: report.windows.max_queue_rounds,
            admitted: report.admitted,
            retired: report.retired,
            steady_state_minutes: report.steady_state_at.map(|t| t.as_minutes()),
            auctions_run: report.auctions_run,
            auctions_skipped: report.auctions_skipped,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("p50_rho".into(), Json::opt_num(self.p50_rho)),
            ("p99_rho".into(), Json::opt_num(self.p99_rho)),
            (
                "p50_queueing_minutes".into(),
                Json::opt_num(self.p50_queueing_minutes),
            ),
            (
                "p99_queueing_minutes".into(),
                Json::opt_num(self.p99_queueing_minutes),
            ),
            (
                "p99_renewal_minutes".into(),
                Json::opt_num(self.p99_renewal_minutes),
            ),
            (
                "max_queue_rounds".into(),
                Json::num(self.max_queue_rounds as f64),
            ),
            ("admitted".into(), Json::num(self.admitted as f64)),
            ("retired".into(), Json::num(self.retired as f64)),
            (
                "steady_state_minutes".into(),
                Json::opt_num(self.steady_state_minutes),
            ),
            ("auctions_run".into(), Json::num(self.auctions_run as f64)),
            (
                "auctions_skipped".into(),
                Json::num(self.auctions_skipped as f64),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<ServiceMetrics, String> {
        let req = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("service metrics missing numeric field '{key}'"))
        };
        let opt = |key: &str| value.get(key).and_then(Json::as_opt_f64);
        Ok(ServiceMetrics {
            p50_rho: opt("p50_rho"),
            p99_rho: opt("p99_rho"),
            p50_queueing_minutes: opt("p50_queueing_minutes"),
            p99_queueing_minutes: opt("p99_queueing_minutes"),
            p99_renewal_minutes: opt("p99_renewal_minutes"),
            max_queue_rounds: req("max_queue_rounds")? as u64,
            admitted: req("admitted")? as u64,
            retired: req("retired")? as u64,
            steady_state_minutes: opt("steady_state_minutes"),
            auctions_run: req("auctions_run")? as u64,
            auctions_skipped: req("auctions_skipped")? as u64,
        })
    }

    /// `(name, value)` pairs for diffing, mirroring
    /// [`CellMetrics::numbered`].
    fn numbered(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("p50_rho", self.p50_rho.unwrap_or(f64::NAN)),
            ("p99_rho", self.p99_rho.unwrap_or(f64::NAN)),
            (
                "p50_queueing_minutes",
                self.p50_queueing_minutes.unwrap_or(f64::NAN),
            ),
            (
                "p99_queueing_minutes",
                self.p99_queueing_minutes.unwrap_or(f64::NAN),
            ),
            (
                "p99_renewal_minutes",
                self.p99_renewal_minutes.unwrap_or(f64::NAN),
            ),
            ("max_queue_rounds", self.max_queue_rounds as f64),
            ("admitted", self.admitted as f64),
            ("retired", self.retired as f64),
            (
                "steady_state_minutes",
                self.steady_state_minutes.unwrap_or(f64::NAN),
            ),
            ("auctions_run", self.auctions_run as f64),
            ("auctions_skipped", self.auctions_skipped as f64),
        ]
    }
}

/// The control-plane (auction-round) accounting of one distributed-mode
/// cell, extracted from the scheduler's [`ControlPlaneStats`]. This is the
/// metric set the `storm` matrix gates: under Arbiter congestion the
/// missed-round rate is the headline number, and the raw counters say
/// which phase of the §3.1 exchange lost the messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlMetrics {
    /// Auction rounds the Arbiter started.
    pub rounds: u64,
    /// Rounds where every queried Agent's ρ report arrived by the deadline.
    pub completed_rounds: u64,
    /// ρ reports that missed the half-deadline across all rounds.
    pub missed_rho_reports: u64,
    /// Bids/Passes that missed the round deadline across all rounds.
    pub missed_bids: u64,
    /// Win notifications voided by Arbiter failover.
    pub voided_wins: u64,
}

impl ControlMetrics {
    /// Extracts the control-plane metric set from the scheduler's counters.
    pub fn from_stats(stats: &ControlPlaneStats) -> ControlMetrics {
        ControlMetrics {
            rounds: stats.rounds,
            completed_rounds: stats.completed_rounds,
            missed_rho_reports: stats.missed_rho_reports,
            missed_bids: stats.missed_bids,
            voided_wins: stats.voided_wins,
        }
    }

    /// Fraction of started rounds that lost at least one ρ report to the
    /// deadline; `None` before any round has run.
    pub fn missed_round_rate(&self) -> Option<f64> {
        (self.rounds > 0).then(|| 1.0 - self.completed_rounds as f64 / self.rounds as f64)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rounds".into(), Json::num(self.rounds as f64)),
            (
                "completed_rounds".into(),
                Json::num(self.completed_rounds as f64),
            ),
            (
                "missed_rho_reports".into(),
                Json::num(self.missed_rho_reports as f64),
            ),
            ("missed_bids".into(), Json::num(self.missed_bids as f64)),
            ("voided_wins".into(), Json::num(self.voided_wins as f64)),
            // Derived from the counters above; write-only (recomputed on
            // parse), kept in the document for human diffing.
            (
                "missed_round_rate".into(),
                Json::opt_num(self.missed_round_rate()),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<ControlMetrics, String> {
        let uint = |key: &str| -> Result<u64, String> {
            let v = value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("control metrics missing numeric field '{key}'"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("control {key} {v} is not a non-negative integer"));
            }
            Ok(v as u64)
        };
        Ok(ControlMetrics {
            rounds: uint("rounds")?,
            completed_rounds: uint("completed_rounds")?,
            missed_rho_reports: uint("missed_rho_reports")?,
            missed_bids: uint("missed_bids")?,
            voided_wins: uint("voided_wins")?,
        })
    }

    /// `(name, value)` pairs for diffing, mirroring
    /// [`CellMetrics::numbered`].
    fn numbered(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("rounds", self.rounds as f64),
            ("completed_rounds", self.completed_rounds as f64),
            ("missed_rho_reports", self.missed_rho_reports as f64),
            ("missed_bids", self.missed_bids as f64),
            ("voided_wins", self.voided_wins as f64),
            (
                "missed_round_rate",
                self.missed_round_rate().unwrap_or(f64::NAN),
            ),
        ]
    }
}

/// The metrics extracted from one simulation run (the paper's §8.1 set).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Worst finish-time fairness ρ across finished apps (lower is better).
    pub max_rho: Option<f64>,
    /// Jain's fairness index over ρ values (closer to 1 is better).
    pub jain: Option<f64>,
    /// Simulated end time of the run, in minutes.
    pub makespan_minutes: f64,
    /// Mean app completion time, in minutes.
    pub avg_jct_minutes: Option<f64>,
    /// Total GPU time consumed, in GPU-hours.
    pub gpu_hours: f64,
    /// Mean per-app placement score over finished apps.
    pub mean_placement_score: Option<f64>,
    /// Peak contention (aggregate demand / cluster size).
    pub peak_contention: f64,
    /// Apps that finished within the horizon.
    pub finished_apps: usize,
    /// Apps still unfinished at the horizon.
    pub unfinished_apps: usize,
    /// Scheduling rounds the policy ran.
    pub scheduling_rounds: u64,
    /// The windowed open-system metrics — present only on service-mode
    /// cells, so closed-system cells serialize exactly as before.
    pub service: Option<ServiceMetrics>,
    /// The control-plane round accounting — present only on cells whose
    /// scheduler exposes it (distributed-mode Themis), so in-process cells
    /// serialize exactly as before.
    pub control: Option<ControlMetrics>,
}

impl CellMetrics {
    /// Extracts the metric set from a finished simulation.
    pub fn from_report(report: &SimReport) -> CellMetrics {
        CellMetrics {
            max_rho: report.max_fairness(),
            jain: report.jains_index(),
            makespan_minutes: report.end_time.as_minutes(),
            avg_jct_minutes: report.mean_completion_time().map(|t| t.as_minutes()),
            gpu_hours: report.total_gpu_time.as_hours(),
            mean_placement_score: report.mean_placement_score(),
            peak_contention: report.peak_contention,
            finished_apps: report.finished_apps(),
            unfinished_apps: report.unfinished_apps(),
            scheduling_rounds: report.scheduling_rounds,
            service: None,
            control: report.control.as_ref().map(ControlMetrics::from_stats),
        }
    }

    /// Extracts the metric set from a finished service run: the batch
    /// metrics from the embedded [`SimReport`] plus the windowed block.
    pub fn from_service_report(report: &ServiceReport) -> CellMetrics {
        let mut metrics = CellMetrics::from_report(&report.sim);
        metrics.service = Some(ServiceMetrics::from_report(report));
        metrics
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("max_rho".into(), Json::opt_num(self.max_rho)),
            ("jain".into(), Json::opt_num(self.jain)),
            ("makespan_minutes".into(), Json::num(self.makespan_minutes)),
            (
                "avg_jct_minutes".into(),
                Json::opt_num(self.avg_jct_minutes),
            ),
            ("gpu_hours".into(), Json::num(self.gpu_hours)),
            (
                "mean_placement_score".into(),
                Json::opt_num(self.mean_placement_score),
            ),
            ("peak_contention".into(), Json::num(self.peak_contention)),
            ("finished_apps".into(), Json::num(self.finished_apps as f64)),
            (
                "unfinished_apps".into(),
                Json::num(self.unfinished_apps as f64),
            ),
            (
                "scheduling_rounds".into(),
                Json::num(self.scheduling_rounds as f64),
            ),
        ];
        if let Some(service) = &self.service {
            pairs.push(("service".into(), service.to_json()));
        }
        if let Some(control) = &self.control {
            pairs.push(("control".into(), control.to_json()));
        }
        Json::Obj(pairs)
    }

    fn from_json(value: &Json) -> Result<CellMetrics, String> {
        let req = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metrics missing numeric field '{key}'"))
        };
        let opt = |key: &str| value.get(key).and_then(Json::as_opt_f64);
        Ok(CellMetrics {
            max_rho: opt("max_rho"),
            jain: opt("jain"),
            makespan_minutes: req("makespan_minutes")?,
            avg_jct_minutes: opt("avg_jct_minutes"),
            gpu_hours: req("gpu_hours")?,
            mean_placement_score: opt("mean_placement_score"),
            peak_contention: req("peak_contention")?,
            finished_apps: req("finished_apps")? as usize,
            unfinished_apps: req("unfinished_apps")? as usize,
            scheduling_rounds: req("scheduling_rounds")? as u64,
            service: value
                .get("service")
                .map(ServiceMetrics::from_json)
                .transpose()?,
            control: value
                .get("control")
                .map(ControlMetrics::from_json)
                .transpose()?,
        })
    }

    /// `(name, value)` pairs of the numeric metrics, for diffing. Absent
    /// optional metrics surface as NaN, which only equals NaN on both sides
    /// via the explicit check in [`compare_reports`]. The service and
    /// control blocks' entries are always appended (NaN-filled on cells
    /// without the block), so a cell missing its block compares as a
    /// divergence rather than being silently zipped short.
    fn numbered(&self) -> Vec<(&'static str, f64)> {
        let mut pairs = vec![
            ("max_rho", self.max_rho.unwrap_or(f64::NAN)),
            ("jain", self.jain.unwrap_or(f64::NAN)),
            ("makespan_minutes", self.makespan_minutes),
            ("avg_jct_minutes", self.avg_jct_minutes.unwrap_or(f64::NAN)),
            ("gpu_hours", self.gpu_hours),
            (
                "mean_placement_score",
                self.mean_placement_score.unwrap_or(f64::NAN),
            ),
            ("peak_contention", self.peak_contention),
            ("finished_apps", self.finished_apps as f64),
            ("unfinished_apps", self.unfinished_apps as f64),
            ("scheduling_rounds", self.scheduling_rounds as f64),
        ];
        match &self.service {
            Some(service) => pairs.extend(service.numbered()),
            None => pairs.extend(
                ServiceMetrics {
                    p50_rho: None,
                    p99_rho: None,
                    p50_queueing_minutes: None,
                    p99_queueing_minutes: None,
                    p99_renewal_minutes: None,
                    max_queue_rounds: 0,
                    admitted: 0,
                    retired: 0,
                    steady_state_minutes: None,
                    auctions_run: 0,
                    auctions_skipped: 0,
                }
                .numbered()
                .into_iter()
                .map(|(name, _)| (name, f64::NAN)),
            ),
        }
        match &self.control {
            Some(control) => pairs.extend(control.numbered()),
            None => pairs.extend(
                ControlMetrics {
                    rounds: 0,
                    completed_rounds: 0,
                    missed_rho_reports: 0,
                    missed_bids: 0,
                    voided_wins: 0,
                }
                .numbered()
                .into_iter()
                .map(|(name, _)| (name, f64::NAN)),
            ),
        }
        pairs
    }
}

/// One `(scenario × policy)` cell of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// `"<scenario id>/<policy>"` — unique within a matrix.
    pub id: String,
    /// Policy display name.
    pub policy: String,
    /// The scenario the cell ran.
    pub scenario: Scenario,
    /// The extracted metrics.
    pub metrics: CellMetrics,
    /// Host wall-clock the cell took, in milliseconds. Advisory only —
    /// never part of the canonical JSON.
    pub wall_clock_ms: f64,
}

impl CellReport {
    fn scenario_json(scenario: &Scenario) -> Json {
        // Per-cell speed metadata, derived from the built topology: the
        // aggregate/extreme GPU speeds the cell ran with. Write-only —
        // `scenario_from_json` recomputes them from `gen_mix`, so they can
        // never drift from the axis value they describe.
        let spec = scenario.cluster_spec();
        let speeds: Vec<f64> = spec
            .machines()
            .iter()
            .map(themis_cluster::topology::MachineSpec::speed)
            .collect();
        let speed_min = speeds.iter().copied().fold(f64::INFINITY, f64::min);
        let speed_max = speeds.iter().copied().fold(0.0, f64::max);
        let mut pairs = vec![
            ("cluster".into(), Json::str(scenario.cluster.name())),
            ("gen_mix".into(), Json::str(scenario.gen_mix.name())),
            ("speed_total".into(), Json::num(spec.total_speed())),
            ("speed_min".into(), Json::num(speed_min)),
            ("speed_max".into(), Json::num(speed_max)),
            ("apps".into(), Json::num(scenario.apps as f64)),
            ("contention".into(), Json::num(scenario.contention)),
            (
                "network_fraction".into(),
                Json::num(scenario.network_fraction),
            ),
            ("fairness_knob".into(), Json::num(scenario.fairness_knob)),
            ("lease_minutes".into(), Json::num(scenario.lease_minutes)),
            ("rho_error".into(), Json::num(scenario.rho_error)),
            ("burst_fraction".into(), Json::num(scenario.burst_fraction)),
            (
                "heavy_job_fraction".into(),
                Json::num(scenario.heavy_job_fraction),
            ),
            (
                "fault_drop".into(),
                Json::num(scenario.fault.drop_probability),
            ),
            (
                "fault_delay_minutes".into(),
                Json::num(scenario.fault.delay.as_minutes()),
            ),
            (
                "fault_crash_period".into(),
                Json::num(scenario.fault.crash_period as f64),
            ),
            (
                "fault_crash_rounds".into(),
                Json::num(scenario.fault.crash_rounds as f64),
            ),
            (
                "fault_jitter_minutes".into(),
                Json::num(scenario.fault.jitter.as_minutes()),
            ),
            (
                "fault_bandwidth".into(),
                Json::num(scenario.fault.bandwidth),
            ),
            (
                "fault_partition_period".into(),
                Json::num(scenario.fault.partition_period as f64),
            ),
            (
                "fault_partition_rounds".into(),
                Json::num(scenario.fault.partition_rounds as f64),
            ),
            (
                "fault_failover_period".into(),
                Json::num(scenario.fault.failover_period as f64),
            ),
            ("fault_seed".into(), Json::num(scenario.fault.seed as f64)),
            ("seed".into(), Json::num(scenario.seed as f64)),
            (
                "scheduler_seed".into(),
                Json::num(scenario.scheduler_seed as f64),
            ),
        ];
        // Arbiter-backpressure fields only when the knobs are engaged,
        // keeping every pre-backpressure scenario object byte-identical to
        // v5 runs apart from the version stamp.
        if scenario.fault.arbiter_service_time > Time::ZERO {
            pairs.push((
                "fault_arbiter_service_minutes".into(),
                Json::num(scenario.fault.arbiter_service_time.as_minutes()),
            ));
        }
        if scenario.fault.arbiter_batch > 0 {
            pairs.push((
                "fault_arbiter_batch".into(),
                Json::num(scenario.fault.arbiter_batch as f64),
            ));
        }
        // Service axis fields only on service-mode cells, keeping every
        // closed-system scenario object byte-identical to pre-service runs.
        if let Some(axis) = &scenario.service {
            pairs.push(("service_shape".into(), Json::str(axis.shape.name())));
            pairs.push(("service_rate".into(), Json::num(axis.rate)));
            pairs.push((
                "service_horizon_minutes".into(),
                Json::num(axis.horizon_minutes),
            ));
        }
        // Storm axis field only on storm cells, same contract.
        if let Some(axis) = &scenario.storm {
            pairs.push((
                "storm_bid_deadline_minutes".into(),
                Json::num(axis.bid_deadline_minutes),
            ));
        }
        Json::Obj(pairs)
    }

    fn scenario_from_json(value: &Json) -> Result<Scenario, String> {
        let req = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario missing numeric field '{key}'"))
        };
        let cluster_name = value
            .get("cluster")
            .and_then(Json::as_str)
            .ok_or("scenario missing 'cluster'")?;
        let cluster = ClusterKind::parse(cluster_name)
            .ok_or_else(|| format!("unknown cluster kind '{cluster_name}'"))?;
        let mix_name = value
            .get("gen_mix")
            .and_then(Json::as_str)
            .ok_or("scenario missing 'gen_mix'")?;
        let gen_mix = GenMix::parse(mix_name)
            .ok_or_else(|| format!("unknown generation mix '{mix_name}'"))?;
        Ok(Scenario {
            cluster,
            gen_mix,
            apps: req("apps")? as usize,
            contention: req("contention")?,
            network_fraction: req("network_fraction")?,
            fairness_knob: req("fairness_knob")?,
            lease_minutes: req("lease_minutes")?,
            rho_error: req("rho_error")?,
            burst_fraction: req("burst_fraction")?,
            heavy_job_fraction: req("heavy_job_fraction")?,
            fault: {
                // Built as a literal, not via the asserting `with_*`
                // builders: a malformed baseline must surface as a parse
                // error, never a panic or a silent `as`-cast clamp.
                let uint = |key: &str| -> Result<u64, String> {
                    let v = req(key)?;
                    if v < 0.0 || v.fract() != 0.0 {
                        return Err(format!("{key} {v} is not a non-negative integer"));
                    }
                    Ok(v as u64)
                };
                let drop_probability = req("fault_drop")?;
                if !(0.0..=1.0).contains(&drop_probability) {
                    return Err(format!("fault_drop {drop_probability} outside [0, 1]"));
                }
                let delay_minutes = req("fault_delay_minutes")?;
                if delay_minutes.is_nan() || delay_minutes < 0.0 {
                    return Err(format!("fault_delay_minutes {delay_minutes} is negative"));
                }
                let jitter_minutes = req("fault_jitter_minutes")?;
                if jitter_minutes.is_nan() || jitter_minutes < 0.0 {
                    return Err(format!("fault_jitter_minutes {jitter_minutes} is negative"));
                }
                let bandwidth = req("fault_bandwidth")?;
                if !bandwidth.is_finite() || bandwidth < 0.0 {
                    return Err(format!(
                        "fault_bandwidth {bandwidth} is not finite and non-negative"
                    ));
                }
                // The arbiter knobs are absent on pre-backpressure cells
                // (and on any cell where they are zero), so they parse
                // optionally with a zero default.
                let arbiter_service_minutes = match value.get("fault_arbiter_service_minutes") {
                    None => 0.0,
                    Some(v) => {
                        let v = v
                            .as_f64()
                            .ok_or("fault_arbiter_service_minutes must be a number")?;
                        if !(v.is_finite() && v >= 0.0) {
                            return Err(format!(
                                "fault_arbiter_service_minutes {v} is not finite and non-negative"
                            ));
                        }
                        v
                    }
                };
                let arbiter_batch = match value.get("fault_arbiter_batch") {
                    None => 0,
                    Some(_) => uint("fault_arbiter_batch")?,
                };
                FaultConfig {
                    drop_probability,
                    delay: Time::minutes(delay_minutes),
                    seed: uint("fault_seed")?,
                    crash_period: uint("fault_crash_period")?,
                    crash_rounds: uint("fault_crash_rounds")?,
                    jitter: Time::minutes(jitter_minutes),
                    bandwidth,
                    partition_period: uint("fault_partition_period")?,
                    partition_rounds: uint("fault_partition_rounds")?,
                    failover_period: uint("fault_failover_period")?,
                    arbiter_service_time: Time::minutes(arbiter_service_minutes),
                    arbiter_batch,
                }
            },
            seed: req("seed")? as u64,
            scheduler_seed: req("scheduler_seed")? as u64,
            service: match value.get("service_shape") {
                None => None,
                Some(shape) => {
                    let name = shape
                        .as_str()
                        .ok_or("scenario 'service_shape' must be a string")?;
                    let shape = ServiceShape::parse(name)
                        .ok_or_else(|| format!("unknown service shape '{name}'"))?;
                    let rate = req("service_rate")?;
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(format!("service_rate {rate} is not positive"));
                    }
                    let horizon = req("service_horizon_minutes")?;
                    if !(horizon.is_finite() && horizon > 0.0) {
                        return Err(format!("service_horizon_minutes {horizon} is not positive"));
                    }
                    Some(ServiceAxis::new(shape, rate, horizon))
                }
            },
            storm: match value.get("storm_bid_deadline_minutes") {
                None => None,
                Some(v) => {
                    let deadline = v
                        .as_f64()
                        .ok_or("storm_bid_deadline_minutes must be a number")?;
                    if !(deadline.is_finite() && deadline > 0.0) {
                        return Err(format!(
                            "storm_bid_deadline_minutes {deadline} is not positive"
                        ));
                    }
                    Some(StormAxis::new(deadline))
                }
            },
        })
    }

    fn to_json(&self, timings: bool) -> Json {
        let mut pairs = vec![
            ("id".into(), Json::str(&self.id)),
            ("policy".into(), Json::str(&self.policy)),
            ("scenario".into(), Self::scenario_json(&self.scenario)),
            ("metrics".into(), self.metrics.to_json()),
        ];
        if timings {
            pairs.push(("wall_clock_ms".into(), Json::num(self.wall_clock_ms)));
            // Round throughput is derived from wall-clock, so it lives with
            // the advisory timings, never in the canonical form.
            if self.wall_clock_ms > 0.0 {
                pairs.push((
                    "rounds_per_sec".into(),
                    Json::num(self.metrics.scheduling_rounds as f64 / (self.wall_clock_ms / 1e3)),
                ));
            }
        }
        Json::Obj(pairs)
    }

    fn from_json(value: &Json) -> Result<CellReport, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("cell missing field '{key}'"))
        };
        Ok(CellReport {
            id: field("id")?
                .as_str()
                .ok_or("cell 'id' must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("cell 'policy' must be a string")?
                .to_string(),
            scenario: Self::scenario_from_json(field("scenario")?)?,
            metrics: CellMetrics::from_json(field("metrics")?)?,
            wall_clock_ms: value
                .get("wall_clock_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// The aggregated result of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The matrix that was run.
    pub matrix: String,
    /// One report per cell, in matrix expansion order.
    pub cells: Vec<CellReport>,
    /// Total host wall-clock of the sweep, in milliseconds (advisory).
    pub total_wall_clock_ms: f64,
}

impl SweepReport {
    /// Serializes the report. With `timings = false` (the canonical form)
    /// the document is a pure function of the matrix definition.
    pub fn to_json(&self, timings: bool) -> Json {
        let mut pairs = vec![
            ("schema_version".into(), Json::num(SCHEMA_VERSION)),
            ("matrix".into(), Json::str(&self.matrix)),
            ("cell_count".into(), Json::num(self.cells.len() as f64)),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(|c| c.to_json(timings)).collect()),
            ),
        ];
        if timings {
            pairs.push((
                "total_wall_clock_ms".into(),
                Json::num(self.total_wall_clock_ms),
            ));
        }
        Json::Obj(pairs)
    }

    /// The canonical byte representation: pretty JSON without timings.
    pub fn to_canonical_string(&self) -> String {
        self.to_json(false).to_pretty_string()
    }

    /// Parses a report previously produced by [`SweepReport::to_json`].
    pub fn from_json(value: &Json) -> Result<SweepReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("report missing 'schema_version'")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema version mismatch: report is v{version}, this binary expects v{SCHEMA_VERSION} \
                 (regenerate the baseline)"
            ));
        }
        let matrix = value
            .get("matrix")
            .and_then(Json::as_str)
            .ok_or("report missing 'matrix'")?
            .to_string();
        let cells = value
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("report missing 'cells' array")?
            .iter()
            .map(CellReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepReport {
            matrix,
            cells,
            total_wall_clock_ms: value
                .get("total_wall_clock_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Parses a report from its textual JSON form.
    pub fn parse_str(text: &str) -> Result<SweepReport, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        SweepReport::from_json(&json)
    }
}

/// Compares a freshly run report against a committed baseline.
///
/// Returns one human-readable line per divergence; an empty vector means
/// the gate passes. Metrics are compared with relative tolerance `tol`
/// (pinned seeds make runs bit-reproducible, so CI uses a tiny tolerance
/// that only forgives float formatting, not behavior). Wall-clock is never
/// compared — it is advisory by design.
pub fn compare_reports(current: &SweepReport, baseline: &SweepReport, tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    if current.matrix != baseline.matrix {
        diffs.push(format!(
            "matrix name differs: current '{}' vs baseline '{}'",
            current.matrix, baseline.matrix
        ));
    }
    let find = |cells: &[CellReport], id: &str| -> Option<CellMetrics> {
        cells.iter().find(|c| c.id == id).map(|c| c.metrics.clone())
    };
    for cell in &baseline.cells {
        match find(&current.cells, &cell.id) {
            None => diffs.push(format!("cell '{}' missing from current run", cell.id)),
            Some(current_metrics) => {
                for ((name, a), (_, b)) in current_metrics
                    .numbered()
                    .into_iter()
                    .zip(cell.metrics.numbered())
                {
                    let both_absent = a.is_nan() && b.is_nan();
                    let within = (a - b).abs() <= tol * b.abs().max(1.0);
                    if !both_absent && !within {
                        diffs.push(format!(
                            "cell '{}': {} diverged: current {} vs baseline {}",
                            cell.id, name, a, b
                        ));
                    }
                }
            }
        }
    }
    for cell in &current.cells {
        if find(&baseline.cells, &cell.id).is_none() {
            diffs.push(format!(
                "cell '{}' not present in baseline (regenerate BENCH_BASELINE.json?)",
                cell.id
            ));
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ClusterKind;

    fn sample_report() -> SweepReport {
        let scenario = Scenario::new(ClusterKind::Rack16, 3, 42).with_contention(2.0);
        let metrics = CellMetrics {
            max_rho: Some(2.5),
            jain: Some(0.9),
            makespan_minutes: 120.0,
            avg_jct_minutes: Some(60.0),
            gpu_hours: 14.5,
            mean_placement_score: Some(0.95),
            peak_contention: 2.0,
            finished_apps: 3,
            unfinished_apps: 0,
            scheduling_rounds: 17,
            service: None,
            control: None,
        };
        SweepReport {
            matrix: "unit".into(),
            cells: vec![CellReport {
                id: format!("{}/themis", scenario.id()),
                policy: "themis".into(),
                scenario,
                metrics,
                wall_clock_ms: 12.0,
            }],
            total_wall_clock_ms: 12.0,
        }
    }

    #[test]
    fn canonical_json_round_trips() {
        let report = sample_report();
        let text = report.to_canonical_string();
        let back = SweepReport::parse_str(&text).expect("canonical form parses");
        // Wall clock is not canonical, so compare everything else.
        assert_eq!(back.matrix, report.matrix);
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].scenario, report.cells[0].scenario);
        assert_eq!(back.cells[0].metrics, report.cells[0].metrics);
        assert_eq!(back.to_canonical_string(), text);
        // Canonical form has no timing fields.
        assert!(!text.contains("wall_clock"));
        // The timing form does.
        assert!(report
            .to_json(true)
            .to_pretty_string()
            .contains("total_wall_clock_ms"));
    }

    #[test]
    fn hetero_cells_carry_speed_metadata_and_round_trip() {
        use crate::scenarios::GenMix;
        let mut report = sample_report();
        report.cells[0].scenario = report.cells[0]
            .scenario
            .clone()
            .with_gen_mix(GenMix::TwoGen);
        report.cells[0].id = format!("{}/themis", report.cells[0].scenario.id());
        let text = report.to_canonical_string();
        assert!(text.contains("\"gen_mix\": \"2gen\""));
        // Rack16 under TwoGen: machines 0/2 Volta (2.0), 1/3 Pascal (1.0).
        assert!(text.contains("\"speed_total\": 24"));
        assert!(text.contains("\"speed_min\": 1"));
        assert!(text.contains("\"speed_max\": 2"));
        let back = SweepReport::parse_str(&text).expect("hetero cell parses");
        assert_eq!(back.cells[0].scenario, report.cells[0].scenario);
        assert_eq!(back.to_canonical_string(), text, "canonical fixed point");
        // A baseline with an unknown mix fails loudly.
        let bad = text.replace("\"gen_mix\": \"2gen\"", "\"gen_mix\": \"9gen\"");
        assert!(SweepReport::parse_str(&bad)
            .expect_err("unknown mix rejected")
            .contains("generation mix"));
    }

    fn service_report() -> SweepReport {
        let mut report = sample_report();
        report.cells[0].scenario = report.cells[0]
            .scenario
            .clone()
            .with_service(ServiceAxis::new(ServiceShape::Diurnal, 1.5, 2000.0));
        report.cells[0].id = format!("{}/themis", report.cells[0].scenario.id());
        report.cells[0].metrics.service = Some(ServiceMetrics {
            p50_rho: Some(1.1),
            p99_rho: Some(2.2),
            p50_queueing_minutes: Some(3.0),
            p99_queueing_minutes: Some(40.0),
            p99_renewal_minutes: None,
            max_queue_rounds: 7,
            admitted: 90,
            retired: 85,
            steady_state_minutes: Some(900.0),
            auctions_run: 100,
            auctions_skipped: 200,
        });
        report
    }

    #[test]
    fn service_cells_round_trip_and_gate_their_windowed_metrics() {
        let report = service_report();
        let text = report.to_canonical_string();
        assert!(text.contains("\"service_shape\": \"diurnal\""));
        assert!(text.contains("\"auctions_skipped\": 200"));
        let back = SweepReport::parse_str(&text).expect("service cell parses");
        assert_eq!(back.cells[0].scenario, report.cells[0].scenario);
        assert_eq!(back.cells[0].metrics, report.cells[0].metrics);
        assert_eq!(back.to_canonical_string(), text, "canonical fixed point");

        // The windowed block is gated like any metric.
        let mut current = service_report();
        current.cells[0]
            .metrics
            .service
            .as_mut()
            .expect("service block present")
            .max_queue_rounds += 1;
        let diffs = compare_reports(&current, &report, 1e-9);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("max_queue_rounds"), "{diffs:?}");

        // Dropping the block entirely is a divergence, not a silent pass.
        current.cells[0].metrics.service = None;
        assert!(!compare_reports(&current, &report, 1e-9).is_empty());

        // A malformed shape in a baseline fails loudly.
        let bad = text.replace(
            "\"service_shape\": \"diurnal\"",
            "\"service_shape\": \"wavy\"",
        );
        assert!(SweepReport::parse_str(&bad)
            .expect_err("unknown shape rejected")
            .contains("service shape"));
    }

    fn storm_report() -> SweepReport {
        let mut report = sample_report();
        report.cells[0].scenario = report.cells[0]
            .scenario
            .clone()
            .with_fault(
                FaultConfig::reliable()
                    .with_arbiter_service_time(Time::seconds(1.0))
                    .with_arbiter_batch(8),
            )
            .with_storm(StormAxis::new(2.0));
        report.cells[0].id = format!("{}/themis-dist", report.cells[0].scenario.id());
        report.cells[0].policy = "themis-dist".into();
        report.cells[0].metrics.control = Some(ControlMetrics {
            rounds: 20,
            completed_rounds: 15,
            missed_rho_reports: 9,
            missed_bids: 2,
            voided_wins: 0,
        });
        report
    }

    #[test]
    fn storm_cells_round_trip_and_gate_their_control_metrics() {
        let report = storm_report();
        let text = report.to_canonical_string();
        assert!(text.contains("\"fault_arbiter_service_minutes\""));
        assert!(text.contains("\"fault_arbiter_batch\": 8"));
        assert!(text.contains("\"storm_bid_deadline_minutes\": 2"));
        assert!(text.contains("\"missed_round_rate\": 0.25"));
        let back = SweepReport::parse_str(&text).expect("storm cell parses");
        assert_eq!(back.cells[0].scenario, report.cells[0].scenario);
        assert_eq!(back.cells[0].metrics, report.cells[0].metrics);
        assert_eq!(back.to_canonical_string(), text, "canonical fixed point");

        // The control block is gated like any metric.
        let mut current = storm_report();
        current.cells[0]
            .metrics
            .control
            .as_mut()
            .expect("control block present")
            .completed_rounds -= 1;
        let diffs = compare_reports(&current, &report, 1e-9);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("completed_rounds")));
        assert!(diffs.iter().any(|d| d.contains("missed_round_rate")));

        // Dropping the block entirely is a divergence, not a silent pass.
        current.cells[0].metrics.control = None;
        assert!(!compare_reports(&current, &report, 1e-9).is_empty());

        // A cell without the knobs has none of the new scenario fields.
        let plain = sample_report().to_canonical_string();
        assert!(!plain.contains("fault_arbiter"));
        assert!(!plain.contains("storm_bid_deadline"));
    }

    #[test]
    fn timed_cells_report_round_throughput() {
        let report = sample_report();
        let timed = report.to_json(true).to_pretty_string();
        assert!(timed.contains("rounds_per_sec"));
        assert!(!report.to_canonical_string().contains("rounds_per_sec"));
    }

    #[test]
    fn comparison_passes_on_identical_reports() {
        let report = sample_report();
        assert!(compare_reports(&report, &report, 1e-9).is_empty());
    }

    #[test]
    fn comparison_flags_metric_divergence() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.cells[0].metrics.gpu_hours += 1.0;
        let diffs = compare_reports(&current, &baseline, 1e-9);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("gpu_hours"), "{diffs:?}");
        // A generous tolerance forgives it.
        assert!(compare_reports(&current, &baseline, 0.1).is_empty());
    }

    #[test]
    fn comparison_flags_missing_and_extra_cells() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.cells[0].id = "other/cell".into();
        let diffs = compare_reports(&current, &baseline, 1e-9);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().any(|d| d.contains("missing from current")));
        assert!(diffs.iter().any(|d| d.contains("not present in baseline")));
    }

    #[test]
    fn absent_optional_metrics_compare_equal() {
        let mut baseline = sample_report();
        baseline.cells[0].metrics.max_rho = None;
        let current = baseline.clone();
        assert!(compare_reports(&current, &baseline, 1e-9).is_empty());
        // Absent vs present diverges.
        let mut present = baseline.clone();
        present.cells[0].metrics.max_rho = Some(1.0);
        assert!(!compare_reports(&present, &baseline, 1e-9).is_empty());
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let text = sample_report()
            .to_canonical_string()
            .replace("\"schema_version\": 6", "\"schema_version\": 99");
        let err = SweepReport::parse_str(&text).expect_err("must reject");
        assert!(err.contains("schema version"), "{err}");
    }
}

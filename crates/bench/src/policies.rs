//! Scheduling policies under test, by name.

use themis_baselines::{Drf, Gandiva, Slaq, Tiresias};
use themis_core::actors::DistributedThemisScheduler;
use themis_core::config::ThemisConfig;
use themis_core::scheduler::ThemisScheduler;
use themis_protocol::network::LogMode;
use themis_sim::engine::SimConfig;
use themis_sim::scheduler::Scheduler;

/// A scheduling policy that can be instantiated for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Themis with a given configuration.
    Themis(ThemisConfig),
    /// Themis in distributed mode: the same auction, but every round runs
    /// as the §3.1 message exchange between an Arbiter actor and per-app
    /// Agent actors on the causal, fault-injecting actor transport
    /// (`themis_core::actors`). Picks up the scenario's `FaultConfig`
    /// through [`Policy::build_with`], and supports transport-level
    /// record/replay through [`Policy::build_with_log`].
    ThemisDist(ThemisConfig),
    /// The Gandiva placement-greedy emulation.
    Gandiva,
    /// The Tiresias least-attained-service emulation.
    Tiresias,
    /// The SLAQ quality-driven emulation.
    Slaq,
    /// Instantaneous dominant-resource fairness.
    Drf,
}

impl Policy {
    /// Themis with the paper's recommended defaults (`f = 0.8`).
    pub fn themis_default() -> Policy {
        Policy::Themis(ThemisConfig::default())
    }

    /// Distributed-mode Themis with the paper's recommended defaults.
    pub fn themis_dist_default() -> Policy {
        Policy::ThemisDist(ThemisConfig::default())
    }

    /// The four policies compared in the paper's macro-benchmarks
    /// (Figures 5–7), in presentation order.
    pub fn macrobenchmark_set() -> Vec<Policy> {
        vec![
            Policy::themis_default(),
            Policy::Gandiva,
            Policy::Slaq,
            Policy::Tiresias,
        ]
    }

    /// Every policy the sweep engine can run: both Themis modes plus all
    /// four baselines, in presentation order.
    pub fn all() -> Vec<Policy> {
        vec![
            Policy::themis_default(),
            Policy::themis_dist_default(),
            Policy::Gandiva,
            Policy::Slaq,
            Policy::Tiresias,
            Policy::Drf,
        ]
    }

    /// Parses a policy by its display name (as printed by [`Policy::name`]).
    /// A parsed Themis carries the default config; scenario knobs are
    /// applied by `Scenario::instantiate`.
    pub fn parse(name: &str) -> Option<Policy> {
        Policy::all().into_iter().find(|p| p.name() == name)
    }

    /// Whether this is the Themis auction in either mode (the policies the
    /// scenario fairness-knob and ρ-error axes apply to).
    pub fn is_themis(&self) -> bool {
        matches!(self, Policy::Themis(_) | Policy::ThemisDist(_))
    }

    /// Whether this is the message-driven distributed mode (the only
    /// policy the scenario fault axis applies to).
    pub fn is_distributed(&self) -> bool {
        matches!(self, Policy::ThemisDist(_))
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Themis(_) => "themis",
            Policy::ThemisDist(_) => "themis-dist",
            Policy::Gandiva => "gandiva",
            Policy::Tiresias => "tiresias",
            Policy::Slaq => "slaq",
            Policy::Drf => "drf",
        }
    }

    /// Instantiates the scheduler with default engine plumbing (reliable
    /// transport for distributed mode).
    pub fn build(&self) -> Box<dyn Scheduler> {
        self.build_with(&SimConfig::default())
    }

    /// Instantiates the scheduler for a concrete engine configuration.
    /// Distributed-mode Themis picks up `sim.fault` — this is how a
    /// scenario's fault axis reaches the transport layer; every other
    /// policy ignores the engine config.
    pub fn build_with(&self, sim: &SimConfig) -> Box<dyn Scheduler> {
        self.build_with_log(sim, LogMode::Off)
    }

    /// Like [`Policy::build_with`], but additionally wires a transport
    /// [`LogMode`] into distributed-mode Themis: `Record` transcribes every
    /// send/deliver/timer decision into a `MessageLog`, `Replay` re-executes
    /// a previous run from its log alone. Every other policy has no
    /// transport, so the mode is ignored.
    pub fn build_with_log(&self, sim: &SimConfig, mode: LogMode) -> Box<dyn Scheduler> {
        match self {
            Policy::Themis(config) => Box::new(ThemisScheduler::new(*config)),
            Policy::ThemisDist(config) => {
                let mut scheduler =
                    DistributedThemisScheduler::with_log_mode(*config, sim.fault, mode);
                if let Some(deadline) = sim.bid_deadline {
                    scheduler = scheduler.with_bid_deadline(deadline);
                }
                Box::new(scheduler)
            }
            Policy::Gandiva => Box::new(Gandiva::new()),
            Policy::Tiresias => Box::new(Tiresias::new()),
            Policy::Slaq => Box::new(Slaq::new()),
            Policy::Drf => Box::new(Drf::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_builders() {
        for policy in Policy::macrobenchmark_set() {
            let scheduler = policy.build();
            assert_eq!(scheduler.name(), policy.name());
        }
        assert_eq!(Policy::Drf.build().name(), "drf");
    }

    #[test]
    fn macrobenchmark_set_has_four_policies() {
        let set = Policy::macrobenchmark_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "themis");
    }

    #[test]
    fn parse_round_trips_every_policy() {
        for policy in Policy::all() {
            assert_eq!(Policy::parse(policy.name()), Some(policy));
        }
        assert_eq!(Policy::parse("nope"), None);
        assert_eq!(Policy::all().len(), 6);
    }

    #[test]
    fn only_themis_is_themis() {
        assert!(Policy::themis_default().is_themis());
        assert!(Policy::themis_dist_default().is_themis());
        for policy in [Policy::Gandiva, Policy::Slaq, Policy::Tiresias, Policy::Drf] {
            assert!(!policy.is_themis());
        }
    }

    #[test]
    fn only_dist_is_distributed() {
        assert!(Policy::themis_dist_default().is_distributed());
        assert_eq!(Policy::themis_dist_default().build().name(), "themis-dist");
        for policy in Policy::macrobenchmark_set() {
            assert!(!policy.is_distributed());
        }
    }
}

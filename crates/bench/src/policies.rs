//! Scheduling policies under test, by name.

use themis_baselines::{Drf, Gandiva, Slaq, Tiresias};
use themis_core::config::ThemisConfig;
use themis_core::scheduler::ThemisScheduler;
use themis_sim::scheduler::Scheduler;

/// A scheduling policy that can be instantiated for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Themis with a given configuration.
    Themis(ThemisConfig),
    /// The Gandiva placement-greedy emulation.
    Gandiva,
    /// The Tiresias least-attained-service emulation.
    Tiresias,
    /// The SLAQ quality-driven emulation.
    Slaq,
    /// Instantaneous dominant-resource fairness.
    Drf,
}

impl Policy {
    /// Themis with the paper's recommended defaults (`f = 0.8`).
    pub fn themis_default() -> Policy {
        Policy::Themis(ThemisConfig::default())
    }

    /// The four policies compared in the paper's macro-benchmarks
    /// (Figures 5–7), in presentation order.
    pub fn macrobenchmark_set() -> Vec<Policy> {
        vec![
            Policy::themis_default(),
            Policy::Gandiva,
            Policy::Slaq,
            Policy::Tiresias,
        ]
    }

    /// Every policy the sweep engine can run: Themis plus all four
    /// baselines, in presentation order.
    pub fn all() -> Vec<Policy> {
        vec![
            Policy::themis_default(),
            Policy::Gandiva,
            Policy::Slaq,
            Policy::Tiresias,
            Policy::Drf,
        ]
    }

    /// Parses a policy by its display name (as printed by [`Policy::name`]).
    /// A parsed Themis carries the default config; scenario knobs are
    /// applied by `Scenario::instantiate`.
    pub fn parse(name: &str) -> Option<Policy> {
        Policy::all().into_iter().find(|p| p.name() == name)
    }

    /// Whether this is the Themis auction (the only policy the scenario
    /// fairness-knob and ρ-error axes apply to).
    pub fn is_themis(&self) -> bool {
        matches!(self, Policy::Themis(_))
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Themis(_) => "themis",
            Policy::Gandiva => "gandiva",
            Policy::Tiresias => "tiresias",
            Policy::Slaq => "slaq",
            Policy::Drf => "drf",
        }
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Policy::Themis(config) => Box::new(ThemisScheduler::new(*config)),
            Policy::Gandiva => Box::new(Gandiva::new()),
            Policy::Tiresias => Box::new(Tiresias::new()),
            Policy::Slaq => Box::new(Slaq::new()),
            Policy::Drf => Box::new(Drf::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_builders() {
        for policy in Policy::macrobenchmark_set() {
            let scheduler = policy.build();
            assert_eq!(scheduler.name(), policy.name());
        }
        assert_eq!(Policy::Drf.build().name(), "drf");
    }

    #[test]
    fn macrobenchmark_set_has_four_policies() {
        let set = Policy::macrobenchmark_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "themis");
    }

    #[test]
    fn parse_round_trips_every_policy() {
        for policy in Policy::all() {
            assert_eq!(Policy::parse(policy.name()), Some(policy));
        }
        assert_eq!(Policy::parse("nope"), None);
        assert_eq!(Policy::all().len(), 5);
    }

    #[test]
    fn only_themis_is_themis() {
        assert!(Policy::themis_default().is_themis());
        for policy in [Policy::Gandiva, Policy::Slaq, Policy::Tiresias, Policy::Drf] {
            assert!(!policy.is_themis());
        }
    }
}

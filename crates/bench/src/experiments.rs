//! Regeneration of every table and figure in the paper's evaluation (§8).
//!
//! Each `figN` function reproduces the data series behind the corresponding
//! figure and returns it as a [`Table`] (plain text, one row per data
//! point). The experiments run on the event-driven simulator with the
//! synthetic enterprise trace; absolute numbers therefore differ from the
//! paper's testbed, but the *shape* — which scheduler wins, by roughly what
//! factor, and where the crossovers fall — is what `EXPERIMENTS.md` records
//! and what the assertions in `tests/` check.
//!
//! Every simulation-backed figure is a *thin view* over the scenario
//! subsystem ([`crate::scenarios`]): a figure builds the [`Scenario`] list
//! for one axis of the paper's evaluation matrix and formats the resulting
//! [`SimReport`]s. The scenarios here are constructed to generate exactly
//! the traces and scheduler configurations the figures always used, so the
//! numbers are unchanged — the `sweep` binary runs the same cells through
//! the same code path, just many at a time.

use crate::policies::Policy;
use crate::scenarios::{ClusterKind, Scenario};
use themis_cluster::cluster::Cluster;
use themis_cluster::placement::Locality;
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_sim::engine::{Engine, SimConfig};
use themis_sim::metrics::SimReport;
use themis_workload::app::AppSpec;
use themis_workload::models::ModelArch;
use themis_workload::trace::{duration_cdf, two_app_micro_trace, TraceConfig, TraceGenerator};

/// A printable experiment result: a title, column headers and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment identifier (e.g. "fig5a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Looks up a cell by row index and header name.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a cell as `f64`.
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?.parse().ok()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// How large the simulated experiments are. The defaults keep the full
/// `figures all` run to a few minutes; scale `apps` up for tighter
/// confidence at the cost of runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Number of apps in the simulated 256-GPU experiments.
    pub sim_apps: usize,
    /// Number of apps in the 50-GPU "testbed" macro-benchmarks.
    pub testbed_apps: usize,
    /// RNG seed shared by all experiments.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            sim_apps: 36,
            testbed_apps: 20,
            seed: 42,
        }
    }
}

impl Scale {
    /// A very small scale used by unit/integration tests.
    pub fn tiny() -> Self {
        Scale {
            sim_apps: 6,
            testbed_apps: 5,
            seed: 42,
        }
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Runs one policy over an explicit trace on one cluster (used by the
/// figures whose trace is hand-built, e.g. Figure 8's micro-trace; the
/// generated-trace figures go through [`Scenario::run`] instead).
pub fn run_policy(
    policy: Policy,
    trace: Vec<AppSpec>,
    cluster_spec: &ClusterSpec,
    sim: SimConfig,
) -> SimReport {
    let cluster = Cluster::new(cluster_spec.clone());
    Engine::new(cluster, trace, policy.build_with(&sim), sim).run()
}

/// The base scenario of the 256-GPU simulated experiments (§8.2): the
/// scheduler seed follows the trace seed, as the original figure code did.
fn sim_256_scenario(scale: Scale) -> Scenario {
    Scenario::new(ClusterKind::Sim256, scale.sim_apps, scale.seed).with_scheduler_seed(scale.seed)
}

/// The base scenario of the 50-GPU testbed macro-benchmarks (§8.3): the
/// scheduler keeps its default seed (0), matching `Policy::themis_default`.
fn testbed_scenario(scale: Scale) -> Scenario {
    Scenario::new(ClusterKind::Testbed50, scale.testbed_apps, scale.seed)
}

// ---------------------------------------------------------------------------
// Figure 1 & 2: workload characterization
// ---------------------------------------------------------------------------

/// Figure 1: CDF of task (job) durations in the trace.
pub fn fig1(scale: Scale) -> Table {
    let trace = TraceGenerator::new(
        TraceConfig::default()
            .with_num_apps(scale.sim_apps.max(100))
            .with_seed(scale.seed),
    )
    .generate();
    let cdf = duration_cdf(&trace, 20);
    let mut table = Table::new(
        "fig1",
        "Distribution of task durations for ML training jobs",
        &["duration_minutes", "fraction_of_tasks"],
    );
    for (duration, fraction) in cdf {
        table.push_row(vec![fmt(duration), fmt(fraction)]);
    }
    table
}

/// Figure 2: effect of GPU placement on throughput for each model:
/// 4 GPUs on 1 server vs 4 GPUs across 2 servers (2×2).
pub fn fig2() -> Table {
    let mut table = Table::new(
        "fig2",
        "Throughput (images/sec) for 4 GPUs: 1 server vs 2x2 servers",
        &["model", "one_server", "two_servers", "slowdown"],
    );
    for model in ModelArch::FIGURE2 {
        let local = model.throughput(4, Locality::Machine);
        let spread = model.throughput(4, Locality::Rack);
        table.push_row(vec![
            model.name().to_string(),
            fmt(local),
            fmt(spread),
            fmt(local / spread),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 4: sensitivity to the fairness knob f and the lease time
// ---------------------------------------------------------------------------

fn fairness_stats(report: &SimReport) -> (f64, f64, f64) {
    let mut rhos = report.rhos();
    rhos.sort_by(|a, b| a.partial_cmp(b).expect("finite rho"));
    if rhos.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let min = rhos[0];
    let median = rhos[rhos.len() / 2];
    let max = rhos[rhos.len() - 1];
    (min, median, max)
}

/// The shared sweep behind Figures 4a and 4b: Themis on the 256-GPU cluster
/// with `f` ranging over `[0, 1]`.
pub fn fairness_knob_sweep(scale: Scale) -> Vec<(f64, SimReport)> {
    [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        .into_iter()
        .map(|f| {
            let scenario = sim_256_scenario(scale).with_fairness_knob(f);
            (f, scenario.run(Policy::themis_default()))
        })
        .collect()
}

/// Figure 4a: finish-time fairness (min / median / max) vs the fairness
/// knob f.
pub fn fig4a(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig4a",
        "Finish-time fairness vs fairness knob f",
        &["f", "min_rho", "median_rho", "max_rho"],
    );
    for (f, report) in fairness_knob_sweep(scale) {
        let (min, median, max) = fairness_stats(&report);
        table.push_row(vec![fmt(f), fmt(min), fmt(median), fmt(max)]);
    }
    table
}

/// Figure 4b: total GPU time vs the fairness knob f.
pub fn fig4b(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig4b",
        "GPU time (minutes) vs fairness knob f",
        &["f", "gpu_time_minutes"],
    );
    for (f, report) in fairness_knob_sweep(scale) {
        table.push_row(vec![fmt(f), fmt(report.total_gpu_time.as_minutes())]);
    }
    table
}

/// Figure 4c: maximum finish-time fairness vs the lease duration.
pub fn fig4c(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig4c",
        "Finish-time fairness vs lease time",
        &["lease_minutes", "max_rho"],
    );
    for lease in [5.0, 10.0, 20.0, 30.0, 40.0] {
        let scenario = sim_256_scenario(scale).with_lease_minutes(lease);
        let report = scenario.run(Policy::themis_default());
        let max = report.max_fairness().unwrap_or(0.0);
        table.push_row(vec![fmt(lease), fmt(max)]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 5–7: macro-benchmarks against Gandiva / SLAQ / Tiresias
// ---------------------------------------------------------------------------

/// Runs the 50-GPU macro-benchmark (durations scaled by 1/5, §8.3) for every
/// policy in the comparison set.
pub fn macrobenchmark(scale: Scale) -> Vec<(Policy, SimReport)> {
    let scenario = testbed_scenario(scale);
    let trace = scenario.trace();
    Policy::macrobenchmark_set()
        .into_iter()
        .map(|policy| {
            let report = scenario.run_on_trace(policy, trace.clone());
            (policy, report)
        })
        .collect()
}

/// Figure 5a: maximum finish-time fairness across schedulers.
pub fn fig5a(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig5a",
        "Max finish-time fairness across schedulers (lower is better)",
        &["scheduler", "max_rho", "peak_contention"],
    );
    for (policy, report) in macrobenchmark(scale) {
        table.push_row(vec![
            policy.name().to_string(),
            fmt(report.max_fairness().unwrap_or(f64::NAN)),
            fmt(report.peak_contention),
        ]);
    }
    table
}

/// Figure 5b: Jain's fairness index across schedulers.
pub fn fig5b(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig5b",
        "Jain's fairness index across schedulers (closer to 1 is better)",
        &["scheduler", "jains_index"],
    );
    for (policy, report) in macrobenchmark(scale) {
        table.push_row(vec![
            policy.name().to_string(),
            fmt(report.jains_index().unwrap_or(f64::NAN)),
        ]);
    }
    table
}

/// Figure 6: app completion times across schedulers (mean and percentiles
/// of the CDF).
pub fn fig6(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig6",
        "App completion times across schedulers (minutes)",
        &["scheduler", "mean", "p50", "p90", "max"],
    );
    for (policy, report) in macrobenchmark(scale) {
        let cdf = report.completion_time_cdf();
        let pick = |q: f64| -> f64 {
            if cdf.is_empty() {
                return f64::NAN;
            }
            let idx = ((cdf.len() as f64 * q).ceil() as usize).clamp(1, cdf.len()) - 1;
            cdf[idx].0
        };
        table.push_row(vec![
            policy.name().to_string(),
            fmt(report
                .mean_completion_time()
                .map(|t| t.as_minutes())
                .unwrap_or(f64::NAN)),
            fmt(pick(0.5)),
            fmt(pick(0.9)),
            fmt(pick(1.0)),
        ]);
    }
    table
}

/// Figure 7: CDF of placement scores across schedulers (mean and p10).
pub fn fig7(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig7",
        "Placement score across schedulers (1.0 = tightly packed)",
        &["scheduler", "mean_score", "p10_score"],
    );
    for (policy, report) in macrobenchmark(scale) {
        let cdf = report.placement_score_cdf();
        let p10 = if cdf.is_empty() {
            f64::NAN
        } else {
            cdf[((cdf.len() as f64 * 0.1).floor() as usize).min(cdf.len() - 1)].0
        };
        table.push_row(vec![
            policy.name().to_string(),
            fmt(report.mean_placement_score().unwrap_or(f64::NAN)),
            fmt(p10),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 8: allocation timeline for a short and a long app
// ---------------------------------------------------------------------------

/// Figure 8: GPU allocation timeline of two apps (3× running-time ratio)
/// under Themis on a 4-GPU cluster.
pub fn fig8() -> Table {
    let cluster = ClusterSpec::homogeneous(1, 1, 4);
    let report = run_policy(
        Policy::themis_default(),
        two_app_micro_trace(),
        &cluster,
        SimConfig::default()
            .with_lease(Time::minutes(20.0))
            .with_checkpoint_overhead(Time::ZERO),
    );
    let mut table = Table::new(
        "fig8",
        "Timeline of GPU allocations (short vs long app)",
        &["app", "time_minutes", "gpus"],
    );
    for outcome in &report.apps {
        let label = if outcome.app.0 == 0 { "short" } else { "long" };
        for (time, gpus) in &outcome.gpu_timeline {
            table.push_row(vec![
                label.to_string(),
                fmt(time.as_minutes()),
                gpus.to_string(),
            ]);
        }
        if let Some(finish) = outcome.finished_at {
            table.push_row(vec![
                label.to_string(),
                fmt(finish.as_minutes()),
                "0".to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 9: sensitivity to the fraction of network-intensive apps
// ---------------------------------------------------------------------------

/// The sweep behind Figures 9a and 9b: vary the fraction of
/// network-intensive apps and run each policy on a 50-GPU cluster.
pub fn network_intensity_sweep(scale: Scale, policies: &[Policy]) -> Vec<(f64, Policy, SimReport)> {
    let mut out = Vec::new();
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let scenario = testbed_scenario(scale).with_network_fraction(pct);
        let trace = scenario.trace();
        for policy in policies {
            out.push((pct, *policy, scenario.run_on_trace(*policy, trace.clone())));
        }
    }
    out
}

/// Figure 9a: factor of improvement in max fairness of Themis over Tiresias
/// as the fraction of network-intensive apps grows.
pub fn fig9a(scale: Scale) -> Table {
    let runs = network_intensity_sweep(scale, &[Policy::themis_default(), Policy::Tiresias]);
    let mut table = Table::new(
        "fig9a",
        "Max-fairness improvement of Themis over Tiresias vs % network-intensive apps",
        &[
            "pct_network_intensive",
            "themis_max_rho",
            "tiresias_max_rho",
            "improvement_factor",
        ],
    );
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let find = |name: &str| {
            runs.iter()
                .find(|(p, policy, _)| *p == pct && policy.name() == name)
                .and_then(|(_, _, r)| r.max_fairness())
                .unwrap_or(f64::NAN)
        };
        let themis = find("themis");
        let tiresias = find("tiresias");
        table.push_row(vec![
            fmt(pct * 100.0),
            fmt(themis),
            fmt(tiresias),
            fmt(tiresias / themis),
        ]);
    }
    table
}

/// Figure 9b: total GPU time per scheduler as the fraction of
/// network-intensive apps grows.
pub fn fig9b(scale: Scale) -> Table {
    let policies = Policy::macrobenchmark_set();
    let runs = network_intensity_sweep(scale, &policies);
    let mut table = Table::new(
        "fig9b",
        "GPU time (minutes) vs % network-intensive apps",
        &[
            "pct_network_intensive",
            "themis",
            "gandiva",
            "slaq",
            "tiresias",
        ],
    );
    for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let find = |name: &str| {
            runs.iter()
                .find(|(p, policy, _)| *p == pct && policy.name() == name)
                .map(|(_, _, r)| r.total_gpu_time.as_minutes())
                .unwrap_or(f64::NAN)
        };
        table.push_row(vec![
            fmt(pct * 100.0),
            fmt(find("themis")),
            fmt(find("gandiva")),
            fmt(find("slaq")),
            fmt(find("tiresias")),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 10: sensitivity to cluster contention
// ---------------------------------------------------------------------------

/// Figure 10: Jain's fairness index of Themis vs Tiresias as contention
/// grows (1×, 2×, 4× of the baseline arrival rate).
pub fn fig10(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig10",
        "Jain's index vs contention factor",
        &["contention", "themis_jain", "tiresias_jain"],
    );
    for factor in [1.0, 2.0, 4.0] {
        let scenario = testbed_scenario(scale).with_contention(factor);
        let trace = scenario.trace();
        let themis = scenario.run_on_trace(Policy::themis_default(), trace.clone());
        let tiresias = scenario.run_on_trace(Policy::Tiresias, trace);
        table.push_row(vec![
            format!("{factor}x"),
            fmt(themis.jains_index().unwrap_or(f64::NAN)),
            fmt(tiresias.jains_index().unwrap_or(f64::NAN)),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 11: robustness to errors in bid valuations
// ---------------------------------------------------------------------------

/// Figure 11: max finish-time fairness as the relative error θ injected into
/// bid valuations grows.
pub fn fig11(scale: Scale) -> Table {
    let mut table = Table::new(
        "fig11",
        "Max finish-time fairness vs % error in bid valuations",
        &["pct_error", "max_rho"],
    );
    for theta in [0.0, 0.05, 0.10, 0.20] {
        let scenario = testbed_scenario(scale)
            .with_rho_error(theta)
            .with_scheduler_seed(scale.seed);
        let report = scenario.run(Policy::themis_default());
        table.push_row(vec![
            fmt(theta * 100.0),
            fmt(report.max_fairness().unwrap_or(f64::NAN)),
        ]);
    }
    table
}

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "fig1", "fig2", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9a",
    "fig9b", "fig10", "fig11",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Table> {
    match id {
        "fig1" => Some(fig1(scale)),
        "fig2" => Some(fig2()),
        "fig4a" => Some(fig4a(scale)),
        "fig4b" => Some(fig4b(scale)),
        "fig4c" => Some(fig4c(scale)),
        "fig5a" => Some(fig5a(scale)),
        "fig5b" => Some(fig5b(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig8" => Some(fig8()),
        "fig9a" => Some(fig9a(scale)),
        "fig9b" => Some(fig9b(scale)),
        "fig10" => Some(fig10(scale)),
        "fig11" => Some(fig11(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_is_a_cdf() {
        let table = fig1(Scale::tiny());
        assert_eq!(table.headers.len(), 2);
        assert!(!table.rows.is_empty());
        let last = table
            .cell_f64(table.rows.len() - 1, "fraction_of_tasks")
            .unwrap();
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_shows_vgg_slowdown_and_resnet_insensitivity() {
        let table = fig2();
        assert_eq!(table.rows.len(), 5);
        let vgg_slowdown = table.cell_f64(0, "slowdown").unwrap();
        let resnet_slowdown = table.cell_f64(4, "slowdown").unwrap();
        assert!(vgg_slowdown > 1.5);
        assert!(resnet_slowdown < 1.1);
    }

    #[test]
    fn fig8_produces_timelines_for_both_apps() {
        let table = fig8();
        let apps: std::collections::BTreeSet<&str> =
            table.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(apps.contains("short") && apps.contains("long"));
    }

    #[test]
    fn unknown_experiment_returns_none() {
        assert!(run_experiment("fig99", Scale::tiny()).is_none());
        assert_eq!(ALL_EXPERIMENTS.len(), 14);
    }

    #[test]
    fn table_cell_accessors() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec!["1.5".into(), "hello".into()]);
        assert_eq!(t.cell_f64(0, "a"), Some(1.5));
        assert_eq!(t.cell(0, "b"), Some("hello"));
        assert_eq!(t.cell(1, "a"), None);
        assert_eq!(t.cell(0, "z"), None);
        assert!(t.to_string().contains("hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}

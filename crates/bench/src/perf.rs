//! The machine-readable performance trajectory (`BENCH_PERF.json`).
//!
//! `sweep --bench` runs one or more named matrices and records, per matrix,
//! the full cell reports *with wall-clock timings* into a [`PerfReport`].
//! The committed `BENCH_PERF.json` at the repo root is one such snapshot;
//! CI regenerates it on every push and uploads the result as an artifact,
//! so the per-commit series of artifacts is a real performance trajectory —
//! before→after numbers for any hot-path change are a download away.
//!
//! Two different strictness levels coexist in one file by design:
//!
//! * **metrics are gated** — [`compare_perf`] diffs every cell's metrics
//!   against the baseline exactly like the smoke gate, so a perf run that
//!   silently changed scheduling behavior fails CI;
//! * **wall-clock is advisory** — timings differ across machines and are
//!   never compared, only recorded.

use crate::json::Json;
use crate::report::{compare_reports, SweepReport};

/// Version stamp of the perf-document schema, independent of the sweep
/// report schema it embeds.
pub const PERF_SCHEMA_VERSION: f64 = 1.0;

/// A perf snapshot: one timed [`SweepReport`] per matrix run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// The timed sweep reports, in run order.
    pub matrices: Vec<SweepReport>,
}

impl PerfReport {
    /// Serializes the perf document (always with timings — that is the
    /// point of the file).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::num(PERF_SCHEMA_VERSION)),
            ("kind".into(), Json::str("perf")),
            ("matrix_count".into(), Json::num(self.matrices.len() as f64)),
            (
                "matrices".into(),
                Json::Arr(self.matrices.iter().map(|m| m.to_json(true)).collect()),
            ),
        ])
    }

    /// The canonical textual form (pretty JSON, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a perf document produced by [`PerfReport::to_json`].
    pub fn from_json(value: &Json) -> Result<PerfReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("perf report missing 'schema_version'")?;
        if version != PERF_SCHEMA_VERSION {
            return Err(format!(
                "perf schema version mismatch: file is v{version}, this binary expects \
                 v{PERF_SCHEMA_VERSION} (regenerate BENCH_PERF.json)"
            ));
        }
        let matrices = value
            .get("matrices")
            .and_then(Json::as_arr)
            .ok_or("perf report missing 'matrices' array")?
            .iter()
            .map(SweepReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PerfReport { matrices })
    }

    /// Parses a perf document from its textual JSON form.
    pub fn parse_str(text: &str) -> Result<PerfReport, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        PerfReport::from_json(&json)
    }

    /// One advisory summary line per matrix (total, median cell, slowest
    /// cell) for the human on the other side of the CI log.
    pub fn summary_lines(&self) -> Vec<String> {
        self.matrices
            .iter()
            .map(|report| {
                let mut cell_ms: Vec<f64> = report.cells.iter().map(|c| c.wall_clock_ms).collect();
                cell_ms.sort_by(f64::total_cmp);
                let median = cell_ms.get(cell_ms.len() / 2).copied().unwrap_or(0.0);
                let slowest = report
                    .cells
                    .iter()
                    .max_by(|a, b| a.wall_clock_ms.total_cmp(&b.wall_clock_ms));
                format!(
                    "perf '{}': {} cells, total {:.0} ms, median cell {:.0} ms{}",
                    report.matrix,
                    report.cells.len(),
                    report.total_wall_clock_ms,
                    median,
                    slowest
                        .map(|c| format!(", slowest {} at {:.0} ms", c.id, c.wall_clock_ms))
                        .unwrap_or_default()
                )
            })
            .collect()
    }
}

/// Renders a GitHub-flavored markdown table of per-matrix wall-clock
/// deltas between a fresh perf run and a committed baseline, for CI's
/// `$GITHUB_STEP_SUMMARY`. Purely advisory — the numbers come from
/// different machines and never gate anything; the table exists so a
/// hot-path regression is visible on the PR page without downloading the
/// artifact. Matrices are matched by name; a matrix absent from the
/// baseline shows `n/a`.
pub fn delta_markdown(current: &PerfReport, baseline: &PerfReport) -> String {
    let mut out = String::from(
        "### Perf wall-clock vs committed baseline (advisory)\n\n\
         | matrix | cells | total ms | baseline ms | delta | slowest cell |\n\
         | --- | ---: | ---: | ---: | ---: | --- |\n",
    );
    for matrix in &current.matrices {
        let base = baseline.matrices.iter().find(|b| b.matrix == matrix.matrix);
        let (base_ms, delta) = match base {
            Some(b) if b.total_wall_clock_ms > 0.0 => {
                let pct = 100.0 * (matrix.total_wall_clock_ms - b.total_wall_clock_ms)
                    / b.total_wall_clock_ms;
                (
                    format!("{:.0}", b.total_wall_clock_ms),
                    format!("{pct:+.1}%"),
                )
            }
            _ => ("n/a".to_string(), "n/a".to_string()),
        };
        let slowest = matrix
            .cells
            .iter()
            .max_by(|a, b| a.wall_clock_ms.total_cmp(&b.wall_clock_ms))
            .map(|c| format!("`{}` ({:.0} ms)", c.id, c.wall_clock_ms))
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "| {} | {} | {:.0} | {} | {} | {} |\n",
            matrix.matrix,
            matrix.cells.len(),
            matrix.total_wall_clock_ms,
            base_ms,
            delta,
            slowest
        ));
    }
    out
}

/// Compares a fresh perf run against a committed baseline, **metrics
/// only** — wall-clock never fails the gate. Matrices are matched by name;
/// a baseline matrix absent from the current run is skipped (CI may run a
/// subset), while a current matrix absent from the baseline is reported so
/// a new matrix cannot slip in ungated.
pub fn compare_perf(current: &PerfReport, baseline: &PerfReport, tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    for matrix in &current.matrices {
        match baseline.matrices.iter().find(|b| b.matrix == matrix.matrix) {
            Some(base) => diffs.extend(compare_reports(matrix, base, tol)),
            None => diffs.push(format!(
                "matrix '{}' not present in perf baseline (regenerate BENCH_PERF.json)",
                matrix.matrix
            )),
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Policy;
    use crate::scenarios::{ClusterKind, Matrix};
    use crate::sweep::run_sweep;

    fn tiny_perf() -> PerfReport {
        let matrix = Matrix {
            policies: vec![Policy::Drf],
            ..Matrix::point("tiny", ClusterKind::Rack16, 2, 3)
        };
        PerfReport {
            matrices: vec![run_sweep(&matrix, 1)],
        }
    }

    #[test]
    fn perf_document_round_trips_with_timings() {
        let perf = tiny_perf();
        let text = perf.to_pretty_string();
        assert!(text.contains("\"kind\": \"perf\""));
        assert!(text.contains("wall_clock_ms"), "timings are the point");
        let back = PerfReport::parse_str(&text).expect("perf JSON parses");
        assert_eq!(back.matrices.len(), 1);
        assert_eq!(back.matrices[0].matrix, "tiny");
        assert_eq!(
            back.matrices[0].cells[0].metrics,
            perf.matrices[0].cells[0].metrics
        );
    }

    #[test]
    fn comparison_gates_metrics_but_not_wall_clock() {
        let baseline = tiny_perf();
        let mut current = baseline.clone();
        // Wildly different timings: not a divergence.
        current.matrices[0].total_wall_clock_ms *= 100.0;
        for cell in &mut current.matrices[0].cells {
            cell.wall_clock_ms += 1e6;
        }
        assert!(compare_perf(&current, &baseline, 1e-9).is_empty());
        // A metric change: gated.
        current.matrices[0].cells[0].metrics.gpu_hours += 1.0;
        let diffs = compare_perf(&current, &baseline, 1e-9);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("gpu_hours"));
    }

    #[test]
    fn subset_runs_pass_but_new_matrices_are_flagged() {
        let both = PerfReport {
            matrices: vec![tiny_perf().matrices.remove(0), {
                let mut second = tiny_perf().matrices.remove(0);
                second.matrix = "other".into();
                second
            }],
        };
        let only_first = PerfReport {
            matrices: vec![both.matrices[0].clone()],
        };
        // Current ⊂ baseline: fine.
        assert!(compare_perf(&only_first, &both, 1e-9).is_empty());
        // Current ⊃ baseline: the extra matrix is flagged.
        let diffs = compare_perf(&both, &only_first, 1e-9);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("'other'"));
    }

    #[test]
    fn delta_markdown_tables_matched_and_unmatched_matrices() {
        let baseline = tiny_perf();
        let mut current = baseline.clone();
        current.matrices[0].total_wall_clock_ms = baseline.matrices[0].total_wall_clock_ms * 2.0;
        let table = delta_markdown(&current, &baseline);
        assert!(table.starts_with("### Perf wall-clock"), "{table}");
        assert!(table.contains("| tiny |"), "{table}");
        assert!(table.contains("+100.0%"), "{table}");
        // A matrix the baseline has never seen renders n/a, not a panic.
        current.matrices[0].matrix = "brand-new".into();
        let table = delta_markdown(&current, &baseline);
        assert!(table.contains("| brand-new |"), "{table}");
        assert!(table.contains("n/a"), "{table}");
    }

    #[test]
    fn summary_lines_name_each_matrix() {
        let perf = tiny_perf();
        let lines = perf.summary_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("perf 'tiny'"));
        assert!(lines[0].contains("slowest"));
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let text = tiny_perf()
            .to_pretty_string()
            .replace("\"schema_version\": 1", "\"schema_version\": 9");
        let err = PerfReport::parse_str(&text).expect_err("must reject");
        assert!(err.contains("perf schema version"), "{err}");
    }
}

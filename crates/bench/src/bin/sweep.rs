//! Scenario-matrix sweep runner with machine-readable reports.
//!
//! ```text
//! sweep --list
//! sweep --matrix smoke --jobs 4 --out sweep.json
//! sweep --matrix smoke --policy themis,drf
//! sweep --matrix smoke --jobs 4 --check BENCH_BASELINE.json
//! sweep --matrix smoke --timings --out sweep-timed.json
//! sweep --matrix smoke,stress,scale --bench --out BENCH_PERF.json
//! sweep --matrix scale --bench --out perf.json --check BENCH_PERF.json
//! sweep --matrix faults --replay-gate --log-out msglogs
//! ```
//!
//! The emitted JSON is canonical: identical for `--jobs 1` and `--jobs N`,
//! and free of wall-clock fields unless `--timings` is given (timings are
//! advisory; CI compares metrics only). `--check` diffs the run against a
//! committed baseline and exits 1 on any divergence beyond `--tolerance`.
//!
//! `--bench` switches to perf mode: `--matrix` accepts a comma-separated
//! list, every matrix runs with per-cell wall-clock recorded, and the
//! output is a perf document (see `themis_bench::perf`) — the format of
//! the committed `BENCH_PERF.json` performance trajectory. `--check` then
//! compares *metrics* against a perf baseline; wall-clock never fails.
//!
//! `--replay-gate` switches to the record→replay determinism gate: every
//! distributed-mode cell of the matrix runs once with a message transcript
//! attached, is re-executed from the transcript alone, and the two
//! canonical reports are byte-compared. Any divergence exits 1. With
//! `--log-out DIR` each cell's transcript is written to
//! `DIR/<scenario id>.msglog` (the CI artifact).

use themis_bench::perf::{compare_perf, delta_markdown, PerfReport};
use themis_bench::policies::Policy;
use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::Matrix;
use themis_bench::sweep::{run_replay_gate, run_sweep_filtered};

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--matrix NAME[,NAME..]] [--policy A,B,..] [--jobs N] [--out FILE]\n\
         \x20            [--check BASELINE] [--tolerance T] [--timings] [--bench] [--list]\n\
         \x20            [--replay-gate] [--log-out DIR] [--summary-out FILE]\n\
         known matrices: {}\n\
         known policies: {}",
        Matrix::NAMED.join(", "),
        Policy::all()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn arg_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn fail_check(diffs: &[String], baseline_path: &str) -> ! {
    eprintln!(
        "baseline check FAILED against {baseline_path}: {} divergence(s)",
        diffs.len()
    );
    for diff in diffs {
        eprintln!("  {diff}");
    }
    std::process::exit(1);
}

fn write_or_print(out: &Option<String>, rendered: &str) {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}

fn read_baseline(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut matrix_spec = "smoke".to_string();
    let mut policy_filter: Option<Vec<Policy>> = None;
    let mut jobs: usize = 1;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 1e-9;
    let mut timings = false;
    let mut bench = false;
    let mut list = false;
    let mut replay_gate = false;
    let mut log_out: Option<String> = None;
    let mut summary_out: Option<String> = None;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--matrix" => matrix_spec = arg_value(&mut iter, "--matrix"),
            "--policy" => {
                let spec = arg_value(&mut iter, "--policy");
                let parsed: Vec<Policy> = spec
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        Policy::parse(name).unwrap_or_else(|| {
                            eprintln!("error: unknown policy '{name}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if parsed.is_empty() {
                    eprintln!("error: --policy needs at least one name");
                    std::process::exit(2);
                }
                policy_filter = Some(parsed);
            }
            "--jobs" => {
                jobs = arg_value(&mut iter, "--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("error: --jobs needs a positive number");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("error: --jobs needs a positive number");
                    std::process::exit(2);
                }
            }
            "--out" => out = Some(arg_value(&mut iter, "--out")),
            "--check" => check = Some(arg_value(&mut iter, "--check")),
            "--tolerance" => {
                tolerance = arg_value(&mut iter, "--tolerance")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --tolerance needs a number");
                        std::process::exit(2);
                    });
            }
            "--timings" => timings = true,
            "--bench" => bench = true,
            "--list" => list = true,
            "--replay-gate" => replay_gate = true,
            "--log-out" => log_out = Some(arg_value(&mut iter, "--log-out")),
            "--summary-out" => summary_out = Some(arg_value(&mut iter, "--summary-out")),
            _ => {
                eprintln!("error: unknown argument '{arg}'");
                usage();
            }
        }
    }

    if list {
        for name in Matrix::NAMED {
            let matrix = Matrix::by_name(name).expect("named matrix exists");
            println!(
                "{name}: {} scenarios, {} cells, policies [{}]",
                matrix.expand().len(),
                matrix.cells().len(),
                matrix
                    .policies
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        return;
    }

    if summary_out.is_some() && !bench {
        eprintln!("error: --summary-out needs --bench (it tables perf wall-clock deltas)");
        usage();
    }

    let matrix_names: Vec<&str> = matrix_spec.split(',').filter(|s| !s.is_empty()).collect();
    if matrix_names.is_empty() || (!bench && !replay_gate && matrix_names.len() > 1) {
        eprintln!(
            "error: --matrix takes one name (a comma-separated list needs --bench or --replay-gate)"
        );
        usage();
    }
    let matrices: Vec<Matrix> = matrix_names
        .iter()
        .map(|name| {
            Matrix::by_name(name).unwrap_or_else(|| {
                eprintln!("error: unknown matrix '{name}'");
                usage();
            })
        })
        .collect();

    if replay_gate {
        // Replay-gate mode: record every distributed cell, re-execute it
        // from its transcript alone, byte-diff the canonical reports.
        let mut failed = 0usize;
        for matrix in &matrices {
            let outcomes = run_replay_gate(matrix);
            if outcomes.is_empty() {
                eprintln!(
                    "replay gate: matrix '{}' has no distributed cells",
                    matrix.name
                );
            }
            for outcome in outcomes {
                let verdict = if outcome.matched { "ok" } else { "DIVERGED" };
                eprintln!(
                    "replay gate: {} — {} ({} transport records)",
                    outcome.id, verdict, outcome.records
                );
                if !outcome.matched {
                    failed += 1;
                }
                if let Some(dir) = &log_out {
                    let scenario_id = outcome.id.split('/').next().unwrap_or(&outcome.id);
                    let path = format!("{dir}/{scenario_id}.msglog");
                    if let Err(e) = std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&path, &outcome.log_text))
                    {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        if failed > 0 {
            eprintln!("replay gate FAILED: {failed} cell(s) diverged from their transcript");
            std::process::exit(1);
        }
        eprintln!("replay gate passed: every distributed cell replays byte-identically");
        return;
    }

    if bench {
        // Perf mode: run every matrix with timings, emit the perf document,
        // and (with --check) gate metrics against a perf baseline.
        let perf = PerfReport {
            matrices: matrices
                .iter()
                .map(|m| run_sweep_filtered(m, jobs, policy_filter.as_deref()))
                .collect(),
        };
        for line in perf.summary_lines() {
            eprintln!("{line}");
        }
        write_or_print(&out, &perf.to_pretty_string());
        let baseline = check.as_ref().map(|baseline_path| {
            PerfReport::parse_str(&read_baseline(baseline_path)).unwrap_or_else(|e| {
                eprintln!("error: cannot parse perf baseline {baseline_path}: {e}");
                std::process::exit(2);
            })
        });
        if let Some(path) = &summary_out {
            // The markdown wall-clock delta table (advisory; CI appends it
            // to $GITHUB_STEP_SUMMARY). Without --check there is no
            // baseline, so every delta renders n/a.
            let empty = PerfReport {
                matrices: Vec::new(),
            };
            let table = delta_markdown(&perf, baseline.as_ref().unwrap_or(&empty));
            if let Err(e) = std::fs::write(path, table) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        if let (Some(baseline_path), Some(baseline)) = (check, baseline) {
            let diffs = compare_perf(&perf, &baseline, tolerance);
            if diffs.is_empty() {
                eprintln!(
                    "perf metric check passed: {} matrices match {baseline_path} \
                     (tolerance {tolerance}; wall-clock advisory)",
                    perf.matrices.len()
                );
            } else {
                fail_check(&diffs, &baseline_path);
            }
        }
        return;
    }

    let matrix = &matrices[0];
    let report = run_sweep_filtered(matrix, jobs, policy_filter.as_deref());

    // Advisory timing summary on stderr: never part of the canonical JSON.
    let slowest = report
        .cells
        .iter()
        .max_by(|a, b| a.wall_clock_ms.total_cmp(&b.wall_clock_ms));
    eprintln!(
        "sweep '{}': {} cells, --jobs {jobs}, wall-clock {:.0} ms{}",
        report.matrix,
        report.cells.len(),
        report.total_wall_clock_ms,
        slowest
            .map(|c| format!(" (slowest cell {} at {:.0} ms)", c.id, c.wall_clock_ms))
            .unwrap_or_default()
    );

    let rendered = if timings {
        report.to_json(true).to_pretty_string()
    } else {
        report.to_canonical_string()
    };
    write_or_print(&out, &rendered);

    if let Some(baseline_path) = check {
        let baseline = SweepReport::parse_str(&read_baseline(&baseline_path)).unwrap_or_else(|e| {
            eprintln!("error: cannot parse baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let diffs = compare_reports(&report, &baseline, tolerance);
        if diffs.is_empty() {
            eprintln!(
                "baseline check passed: {} cells match {baseline_path} (tolerance {tolerance})",
                report.cells.len()
            );
        } else {
            fail_check(&diffs, &baseline_path);
        }
    }
}

//! Scenario-matrix sweep runner with machine-readable reports.
//!
//! ```text
//! sweep --list
//! sweep --matrix smoke --jobs 4 --out sweep.json
//! sweep --matrix smoke --policy themis,drf
//! sweep --matrix smoke --jobs 4 --check BENCH_BASELINE.json
//! sweep --matrix smoke --timings --out sweep-timed.json
//! ```
//!
//! The emitted JSON is canonical: identical for `--jobs 1` and `--jobs N`,
//! and free of wall-clock fields unless `--timings` is given (timings are
//! advisory; CI compares metrics only). `--check` diffs the run against a
//! committed baseline and exits 1 on any divergence beyond `--tolerance`.

use themis_bench::policies::Policy;
use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::Matrix;
use themis_bench::sweep::run_sweep_filtered;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--matrix NAME] [--policy A,B,..] [--jobs N] [--out FILE]\n\
         \x20            [--check BASELINE] [--tolerance T] [--timings] [--list]\n\
         known matrices: {}\n\
         known policies: {}",
        Matrix::NAMED.join(", "),
        Policy::all()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn arg_value(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn main() {
    let mut matrix_name = "smoke".to_string();
    let mut policy_filter: Option<Vec<Policy>> = None;
    let mut jobs: usize = 1;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 1e-9;
    let mut timings = false;
    let mut list = false;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--matrix" => matrix_name = arg_value(&mut iter, "--matrix"),
            "--policy" => {
                let spec = arg_value(&mut iter, "--policy");
                let parsed: Vec<Policy> = spec
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        Policy::parse(name).unwrap_or_else(|| {
                            eprintln!("error: unknown policy '{name}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if parsed.is_empty() {
                    eprintln!("error: --policy needs at least one name");
                    std::process::exit(2);
                }
                policy_filter = Some(parsed);
            }
            "--jobs" => {
                jobs = arg_value(&mut iter, "--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("error: --jobs needs a positive number");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("error: --jobs needs a positive number");
                    std::process::exit(2);
                }
            }
            "--out" => out = Some(arg_value(&mut iter, "--out")),
            "--check" => check = Some(arg_value(&mut iter, "--check")),
            "--tolerance" => {
                tolerance = arg_value(&mut iter, "--tolerance")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --tolerance needs a number");
                        std::process::exit(2);
                    });
            }
            "--timings" => timings = true,
            "--list" => list = true,
            _ => {
                eprintln!("error: unknown argument '{arg}'");
                usage();
            }
        }
    }

    if list {
        for name in Matrix::NAMED {
            let matrix = Matrix::by_name(name).expect("named matrix exists");
            println!(
                "{name}: {} scenarios, {} cells, policies [{}]",
                matrix.expand().len(),
                matrix.cells().len(),
                matrix
                    .policies
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        return;
    }

    let Some(matrix) = Matrix::by_name(&matrix_name) else {
        eprintln!("error: unknown matrix '{matrix_name}'");
        usage();
    };

    let report = run_sweep_filtered(&matrix, jobs, policy_filter.as_deref());

    // Advisory timing summary on stderr: never part of the canonical JSON.
    let slowest = report
        .cells
        .iter()
        .max_by(|a, b| a.wall_clock_ms.total_cmp(&b.wall_clock_ms));
    eprintln!(
        "sweep '{}': {} cells, --jobs {jobs}, wall-clock {:.0} ms{}",
        report.matrix,
        report.cells.len(),
        report.total_wall_clock_ms,
        slowest
            .map(|c| format!(" (slowest cell {} at {:.0} ms)", c.id, c.wall_clock_ms))
            .unwrap_or_default()
    );

    let rendered = if timings {
        report.to_json(true).to_pretty_string()
    } else {
        report.to_canonical_string()
    };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = SweepReport::parse_str(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let diffs = compare_reports(&report, &baseline, tolerance);
        if diffs.is_empty() {
            eprintln!(
                "baseline check passed: {} cells match {baseline_path} (tolerance {tolerance})",
                report.cells.len()
            );
        } else {
            eprintln!(
                "baseline check FAILED against {baseline_path}: {} divergence(s)",
                diffs.len()
            );
            for diff in &diffs {
                eprintln!("  {diff}");
            }
            std::process::exit(1);
        }
    }
}

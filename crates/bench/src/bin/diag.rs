//! Ad-hoc diagnostic: per-app outcomes for Themis vs the baselines on the
//! end-to-end test workload. Useful when tuning the scheduler.

use themis_bench::experiments::{run_policy, Scale};
use themis_bench::policies::Policy;
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_sim::engine::SimConfig;
use themis_workload::trace::{TraceConfig, TraceGenerator};

fn main() {
    let scale = Scale {
        sim_apps: 8,
        testbed_apps: 8,
        seed: 42,
    };
    let trace = TraceGenerator::new(
        TraceConfig::testbed()
            .with_num_apps(scale.testbed_apps)
            .with_seed(scale.seed),
    )
    .generate();
    for app in &trace {
        println!(
            "app {} arrives {:.0} jobs {} demand {} ideal {:.1} net={} total_work {:.0}",
            app.id.0,
            app.arrival.as_minutes(),
            app.num_jobs(),
            app.max_parallelism(),
            app.ideal_running_time().as_minutes(),
            app.is_network_intensive(),
            app.total_work().as_minutes(),
        );
    }
    let cluster = ClusterSpec::testbed_50();
    let sim = SimConfig::default().with_max_sim_time(Time::minutes(2_000_000.0));
    for policy in [Policy::themis_default(), Policy::Gandiva, Policy::Tiresias] {
        let report = run_policy(policy, trace.clone(), &cluster, sim);
        println!(
            "\n== {} == max_rho {:.1} jain {:.3} gpu_time {:.0} rounds {}",
            policy.name(),
            report.max_fairness().unwrap_or(f64::NAN),
            report.jains_index().unwrap_or(f64::NAN),
            report.total_gpu_time.as_minutes(),
            report.scheduling_rounds
        );
        for a in &report.apps {
            println!(
                "  app {} rho {:>8.1} ct {:>8.1} ideal {:>6.1} service {:>8.0} placement {:.2}",
                a.app.0,
                a.rho.unwrap_or(f64::NAN),
                a.completion_time
                    .map(|t| t.as_minutes())
                    .unwrap_or(f64::NAN),
                a.ideal_running_time.as_minutes(),
                a.attained_service.as_minutes(),
                a.placement_score
            );
        }
    }
}

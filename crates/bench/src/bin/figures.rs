//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p themis-bench --bin figures -- all
//! cargo run --release -p themis-bench --bin figures -- fig5a fig5b
//! cargo run --release -p themis-bench --bin figures -- --apps 60 fig4a
//! cargo run --release -p themis-bench --bin figures -- --tiny all
//! ```

use themis_bench::experiments::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures [--tiny] [--apps N] [--seed S] <fig-id>... | all");
        eprintln!("known experiments: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let mut scale = Scale::default();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tiny" => scale = Scale::tiny(),
            "--apps" => {
                let n = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --apps needs a number");
                    std::process::exit(2);
                });
                scale.sim_apps = n;
                scale.testbed_apps = n;
            }
            "--seed" => {
                scale.seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --seed needs a number");
                    std::process::exit(2);
                });
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    let mut failed = false;
    for id in ids {
        match run_experiment(&id, scale) {
            Some(table) => {
                println!("{table}");
            }
            None => {
                eprintln!("unknown experiment: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

//! # themis-bench
//!
//! Experiment harness for the Themis reproduction (NSDI 2020).
//!
//! This crate turns the building blocks of the workspace (cluster model,
//! trace generator, simulator, Themis and the baselines) into the concrete
//! experiments of the paper's evaluation section. Every table and figure
//! has a function in [`experiments`] that regenerates its rows, and the
//! `figures` binary prints them (`cargo run -p themis-bench --bin figures --
//! all`). The Criterion benches in `benches/` measure the §8.3.2 system
//! overheads (bid preparation and partial-allocation solve times).
//!
//! The paper's evaluation is a *matrix* of such experiments, and the
//! scenario subsystem makes that matrix first-class:
//!
//! * [`scenarios`] — the declarative [`scenarios::Scenario`] cell and the
//!   cartesian [`scenarios::Matrix`] expander with the named matrices
//!   (`smoke`, `full`, `lease`, `stress`, `faults`, `scale`),
//! * [`sweep`] — the multi-threaded batch runner executing every
//!   `(scenario × policy)` cell via `themis_sim::batch`,
//! * [`report`] — the machine-readable [`report::SweepReport`] and the
//!   `BENCH_BASELINE.json` regression gate CI diffs against,
//! * [`perf`] — the timed [`perf::PerfReport`] behind `sweep --bench` and
//!   the committed `BENCH_PERF.json` performance trajectory,
//! * [`json`] — the deterministic JSON writer/parser backing it (the
//!   vendored `serde` is an inert stub, see `vendor/README.md`).
//!
//! The `sweep` binary drives it all:
//! `cargo run --release -p themis-bench --bin sweep -- --matrix smoke
//! --jobs 4 --out sweep.json --check BENCH_BASELINE.json`, or in perf mode
//! `-- --matrix smoke,stress,scale --bench --out BENCH_PERF.json`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;
pub mod perf;
pub mod policies;
pub mod report;
pub mod scenarios;
pub mod sweep;

pub use experiments::*;
pub use perf::{compare_perf, PerfReport};
pub use policies::Policy;
pub use report::{compare_reports, CellMetrics, CellReport, SweepReport};
pub use scenarios::{ClusterKind, Matrix, Scenario};
pub use sweep::{run_cell, run_sweep, run_sweep_filtered};

//! # themis-bench
//!
//! Experiment harness for the Themis reproduction (NSDI 2020).
//!
//! This crate turns the building blocks of the workspace (cluster model,
//! trace generator, simulator, Themis and the baselines) into the concrete
//! experiments of the paper's evaluation section. Every table and figure
//! has a function in [`experiments`] that regenerates its rows, and the
//! `figures` binary prints them (`cargo run -p themis-bench --bin figures --
//! all`). The Criterion benches in `benches/` measure the §8.3.2 system
//! overheads (bid preparation and partial-allocation solve times).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod policies;

pub use experiments::*;
pub use policies::Policy;

//! Declarative simulation scenarios and the cartesian scenario matrix.
//!
//! The paper's evaluation (§8) is a *matrix* of experiments: contention
//! levels × fairness-knob settings × lease durations × estimator error ×
//! placement-sensitivity mixes, each run for Themis and four baselines.
//! This module makes that matrix a first-class value:
//!
//! * [`Scenario`] pins down one simulation cell — cluster shape, trace
//!   configuration, fairness/lease/error knobs and the seeds — and can
//!   [`run`](Scenario::run) any [`Policy`] on it deterministically,
//! * [`Matrix`] is a declarative set of axis values whose
//!   [`expand`](Matrix::expand) takes the cartesian product,
//! * the named matrices ([`Matrix::smoke`], [`Matrix::full`],
//!   [`Matrix::lease`], [`Matrix::stress`], [`Matrix::faults`]) are the
//!   sweeps the `sweep` binary and CI run.
//!
//! The `figN` experiment functions in [`crate::experiments`] are thin views
//! over scenarios: each figure builds the scenario list for one axis and
//! reads the reports back.

use crate::policies::Policy;
use parking_lot::Mutex;
use std::sync::Arc;
use themis_cluster::cluster::Cluster;
use themis_cluster::time::Time;
use themis_cluster::topology::{ClusterSpec, GpuGeneration};
use themis_core::config::ThemisConfig;
use themis_protocol::log::MessageLog;
use themis_protocol::network::LogMode;
use themis_protocol::transport::FaultConfig;
use themis_sim::arrivals::{ArrivalProcess, ArrivalShape};
use themis_sim::engine::{Engine, SimConfig};
use themis_sim::metrics::SimReport;
use themis_sim::service::{ServiceConfig, ServiceEngine, ServiceReport, StreamSource};
use themis_sim::window::SteadyConfig;
use themis_workload::app::AppSpec;
use themis_workload::stream::TraceStream;
use themis_workload::trace::{TraceConfig, TraceGenerator};

/// The GPU-generation mix of a scenario's cluster: which speed classes the
/// machines cycle through (see [`ClusterSpec::with_generation_cycle`]).
///
/// This is the heterogeneity axis of the scenario matrix. [`GenMix::Uniform`]
/// reproduces the paper's identical-GPU fleet exactly (every machine at the
/// reference speed 1.0), so uniform cells are byte-identical to the
/// pre-heterogeneity sweep; the mixed values open the axis the paper's §8
/// leaves closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenMix {
    /// Every machine at the reference generation (speed 1.0) — the paper's
    /// uniform fleet.
    #[default]
    Uniform,
    /// Two generations at a 2:1 speed ratio, alternating per machine
    /// (Volta 2.0 / Pascal 1.0).
    TwoGen,
    /// Three generations at 4:2:1 speeds cycling per machine
    /// (Volta 2.0 / Pascal 1.0 / Kepler 0.5).
    ThreeGen,
}

impl GenMix {
    /// Every mix, uniform first.
    pub const ALL: [GenMix; 3] = [GenMix::Uniform, GenMix::TwoGen, GenMix::ThreeGen];

    /// Stable identifier used in scenario ids and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            GenMix::Uniform => "uni",
            GenMix::TwoGen => "2gen",
            GenMix::ThreeGen => "3gen",
        }
    }

    /// Parses the identifier produced by [`GenMix::name`].
    pub fn parse(name: &str) -> Option<GenMix> {
        GenMix::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The machine-generation cycle this mix assigns round-robin.
    pub fn cycle(&self) -> &'static [GpuGeneration] {
        match self {
            GenMix::Uniform => &[GpuGeneration::Pascal],
            GenMix::TwoGen => &[GpuGeneration::Volta, GpuGeneration::Pascal],
            GenMix::ThreeGen => &[
                GpuGeneration::Volta,
                GpuGeneration::Pascal,
                GpuGeneration::Kepler,
            ],
        }
    }
}

impl std::fmt::Display for GenMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The burst shape of a service-mode cell's arrival process — which
/// time-varying rate modulation the open-system [`ArrivalProcess`] applies.
/// Concrete shape parameters (cycle period, storm position) are derived
/// from the cell's horizon in [`ServiceShape::arrival_shape`], so the axis
/// stays a single stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceShape {
    /// Constant-rate Poisson arrivals.
    #[default]
    Poisson,
    /// A day/night cycle: the rate swings ±80% over a period of a quarter
    /// of the horizon (so every cell sees several full cycles).
    Diurnal,
    /// A flash crowd: 4× the base rate for one eighth of the horizon,
    /// starting a quarter of the way in.
    Flash,
}

impl ServiceShape {
    /// Every shape, stationary first.
    pub const ALL: [ServiceShape; 3] = [
        ServiceShape::Poisson,
        ServiceShape::Diurnal,
        ServiceShape::Flash,
    ];

    /// Stable identifier used in scenario ids and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceShape::Poisson => "poisson",
            ServiceShape::Diurnal => "diurnal",
            ServiceShape::Flash => "flash",
        }
    }

    /// Parses the identifier produced by [`ServiceShape::name`].
    pub fn parse(name: &str) -> Option<ServiceShape> {
        ServiceShape::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The concrete arrival-process shape for a cell with this horizon.
    pub fn arrival_shape(&self, horizon: Time) -> ArrivalShape {
        match self {
            ServiceShape::Poisson => ArrivalShape::Poisson,
            ServiceShape::Diurnal => ArrivalShape::Diurnal {
                period: horizon / 4.0,
                amplitude: 0.8,
            },
            ServiceShape::Flash => ArrivalShape::FlashCrowd {
                at: horizon / 4.0,
                width: horizon / 8.0,
                factor: 4.0,
            },
        }
    }
}

impl std::fmt::Display for ServiceShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The service-mode axis of a scenario. When present, the cell runs the
/// open-system [`ServiceEngine`] (continuous admission/retirement, rolling
/// windows, incremental rounds) instead of the batch engine, and the
/// scenario's `apps` count is ignored — the arrival stream is unbounded up
/// to the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceAxis {
    /// Burst shape of the arrival process.
    pub shape: ServiceShape,
    /// Arrival-rate multiplier over the scenario's trace mean inter-arrival
    /// time — the utilization target of the open system. Values below 1
    /// under-load the cluster (the incremental hot path's home turf);
    /// values above 1 run it in sustained overload.
    pub rate: f64,
    /// Admission/simulation horizon in simulated minutes.
    pub horizon_minutes: f64,
}

impl ServiceAxis {
    /// A service axis with the given shape, rate and horizon.
    pub fn new(shape: ServiceShape, rate: f64, horizon_minutes: f64) -> ServiceAxis {
        assert!(rate > 0.0, "service arrival rate must be positive");
        assert!(horizon_minutes > 0.0, "service horizon must be positive");
        ServiceAxis {
            shape,
            rate,
            horizon_minutes,
        }
    }
}

/// The storm axis of a scenario. When present, every app in the trace
/// arrives at time zero — the all-at-once fan-in that stresses the
/// Arbiter's inbox — and the auction's round deadline is overridden with
/// the axis value. Combined with the `FaultConfig` arbiter-service-time
/// and batching knobs this is the grid the `storm` matrix sweeps: how
/// does per-round completion degrade as the message storm grows with app
/// count, and does coalescing (or a longer deadline) buy it back?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormAxis {
    /// Round (bid) deadline in minutes; ρ reports are due at half of it.
    /// The actor runtime's default is 0.5 (30 s).
    pub bid_deadline_minutes: f64,
}

impl StormAxis {
    /// A storm axis with the given round deadline.
    pub fn new(bid_deadline_minutes: f64) -> StormAxis {
        assert!(
            bid_deadline_minutes > 0.0,
            "storm bid deadline must be positive"
        );
        StormAxis {
            bid_deadline_minutes,
        }
    }
}

/// The cluster shapes scenarios can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// The paper's simulated 256-GPU heterogeneous cluster (§8.1).
    Sim256,
    /// The paper's 50-GPU testbed (durations scaled 1/5, §8.3).
    Testbed50,
    /// A small 16-GPU rack (1 rack × 4 machines × 4 GPUs) for smoke tests
    /// and property tests where contention is easy to provoke.
    Rack16,
    /// A synthetic 1024-GPU cluster (16 racks × 16 machines × 4 GPUs) for
    /// scale studies beyond the paper's evaluation.
    Scale1024,
    /// A synthetic 4096-GPU cluster (32 racks × 32 machines × 4 GPUs) —
    /// the `scale` matrix's largest cell. Only tractable with the dense
    /// arena-backed scheduler core.
    Scale4096,
}

impl ClusterKind {
    /// All cluster kinds, in size order.
    pub const ALL: [ClusterKind; 5] = [
        ClusterKind::Rack16,
        ClusterKind::Testbed50,
        ClusterKind::Sim256,
        ClusterKind::Scale1024,
        ClusterKind::Scale4096,
    ];

    /// Stable identifier used in scenario ids and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterKind::Sim256 => "sim256",
            ClusterKind::Testbed50 => "testbed50",
            ClusterKind::Rack16 => "rack16",
            ClusterKind::Scale1024 => "scale1024",
            ClusterKind::Scale4096 => "scale4096",
        }
    }

    /// Parses the identifier produced by [`ClusterKind::name`].
    pub fn parse(name: &str) -> Option<ClusterKind> {
        ClusterKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds the concrete topology.
    pub fn spec(&self) -> ClusterSpec {
        match self {
            ClusterKind::Sim256 => ClusterSpec::heterogeneous_256(),
            ClusterKind::Testbed50 => ClusterSpec::testbed_50(),
            ClusterKind::Rack16 => ClusterSpec::homogeneous(1, 4, 4),
            ClusterKind::Scale1024 => ClusterSpec::synthetic(16, 16, 4),
            ClusterKind::Scale4096 => ClusterSpec::synthetic(32, 32, 4),
        }
    }

    /// The trace configuration the paper pairs with this cluster:
    /// full-length durations for the simulated cluster, 1/5-scaled
    /// durations for the 50-GPU testbed, the small rack and the synthetic
    /// scale clusters (the scale matrix studies round cost, not long-run
    /// convergence, so short jobs keep its wall-clock in seconds).
    pub fn base_trace_config(&self) -> TraceConfig {
        match self {
            ClusterKind::Sim256 => TraceConfig::default(),
            ClusterKind::Testbed50
            | ClusterKind::Rack16
            | ClusterKind::Scale1024
            | ClusterKind::Scale4096 => TraceConfig::testbed(),
        }
    }
}

/// One fully specified simulation cell, minus the policy.
///
/// Two scenarios with equal fields produce byte-identical traces and — for
/// a fixed policy — byte-identical [`SimReport`]s; that determinism is what
/// the sweep baseline in CI leans on.
///
/// ```
/// use themis_bench::policies::Policy;
/// use themis_bench::scenarios::{ClusterKind, GenMix, Scenario};
///
/// // A contended 16-GPU cell on a two-generation cluster, run end to end.
/// let scenario = Scenario::new(ClusterKind::Rack16, 3, 42)
///     .with_contention(2.0)
///     .with_gen_mix(GenMix::TwoGen);
/// assert_eq!(scenario.cluster_spec().total_gpus(), 16);
/// assert!(!scenario.cluster_spec().is_unit_speed());
///
/// let report = scenario.run(Policy::themis_default());
/// assert_eq!(report.finished_apps(), 3);
/// // Same axes ⇒ byte-identical report (the CI determinism contract).
/// assert_eq!(report, scenario.run(Policy::themis_default()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Cluster shape.
    pub cluster: ClusterKind,
    /// GPU-generation mix applied to the cluster (the heterogeneity axis).
    pub gen_mix: GenMix,
    /// Number of apps in the generated trace.
    pub apps: usize,
    /// Contention factor: arrival rate multiplier (§8.4.2; 2.0 halves the
    /// mean inter-arrival time).
    pub contention: f64,
    /// Fraction of network-intensive (placement-sensitive) apps (§8.4.1).
    pub network_fraction: f64,
    /// Themis fairness knob `f` (§8.2). Ignored by the baselines.
    pub fairness_knob: f64,
    /// Lease duration in minutes (§8.2).
    pub lease_minutes: f64,
    /// Relative ρ-estimation error θ injected into Themis bids (§8.4.3).
    /// Ignored by the baselines.
    pub rho_error: f64,
    /// Fraction of apps arriving in bursts (trace knob; 0 = pure Poisson).
    pub burst_fraction: f64,
    /// Fraction of jobs demanding 8 GPUs (trace knob; 0 = paper workload).
    pub heavy_job_fraction: f64,
    /// Transport fault injection for the distributed-mode policy
    /// (`themis-dist`): message-drop probability, delivery delay and the
    /// agent-crash schedule. Ignored by every in-process policy. The
    /// fault RNG seed is derived from `scheduler_seed` at run time, so a
    /// cell stays a pure function of its axis values.
    pub fault: FaultConfig,
    /// Trace-generator seed.
    pub seed: u64,
    /// Seed for the scheduler's internal tie-breaking / error-injection
    /// randomness. Kept separate from the trace seed so the experiment
    /// views can reproduce the paper figures exactly.
    pub scheduler_seed: u64,
    /// Service-mode axis: `None` (the default) runs the closed-system batch
    /// engine; `Some` runs the open-system service engine instead (see
    /// [`Scenario::run_service`]).
    pub service: Option<ServiceAxis>,
    /// Storm axis: `None` (the default) leaves arrivals and the round
    /// deadline alone; `Some` collapses every arrival to time zero and
    /// overrides the auction's bid deadline (see [`StormAxis`]).
    pub storm: Option<StormAxis>,
}

impl Scenario {
    /// A scenario on `cluster` with `apps` apps and the paper's default
    /// knobs (contention 1×, 40% network-intensive, `f = 0.8`, 20-minute
    /// lease, no error, pure Poisson arrivals, no heavy jobs).
    pub fn new(cluster: ClusterKind, apps: usize, seed: u64) -> Scenario {
        Scenario {
            cluster,
            gen_mix: GenMix::Uniform,
            apps,
            contention: 1.0,
            network_fraction: 0.4,
            fairness_knob: 0.8,
            lease_minutes: 20.0,
            rho_error: 0.0,
            burst_fraction: 0.0,
            heavy_job_fraction: 0.0,
            fault: FaultConfig::reliable(),
            seed,
            scheduler_seed: 0,
            service: None,
            storm: None,
        }
    }

    /// Sets the contention factor.
    pub fn with_contention(mut self, factor: f64) -> Scenario {
        self.contention = factor;
        self
    }

    /// Sets the network-intensive app fraction.
    pub fn with_network_fraction(mut self, fraction: f64) -> Scenario {
        self.network_fraction = fraction;
        self
    }

    /// Sets the Themis fairness knob.
    pub fn with_fairness_knob(mut self, f: f64) -> Scenario {
        self.fairness_knob = f;
        self
    }

    /// Sets the lease duration in minutes.
    pub fn with_lease_minutes(mut self, lease: f64) -> Scenario {
        self.lease_minutes = lease;
        self
    }

    /// Sets the ρ-error injection range.
    pub fn with_rho_error(mut self, theta: f64) -> Scenario {
        self.rho_error = theta;
        self
    }

    /// Sets the bursty-arrival fraction.
    pub fn with_burst_fraction(mut self, fraction: f64) -> Scenario {
        self.burst_fraction = fraction;
        self
    }

    /// Sets the heavy-job fraction.
    pub fn with_heavy_job_fraction(mut self, fraction: f64) -> Scenario {
        self.heavy_job_fraction = fraction;
        self
    }

    /// Sets the scheduler-internal seed.
    pub fn with_scheduler_seed(mut self, seed: u64) -> Scenario {
        self.scheduler_seed = seed;
        self
    }

    /// Sets the transport fault injection for distributed-mode cells.
    pub fn with_fault(mut self, fault: FaultConfig) -> Scenario {
        self.fault = fault;
        self
    }

    /// Sets the GPU-generation mix of the cluster.
    pub fn with_gen_mix(mut self, gen_mix: GenMix) -> Scenario {
        self.gen_mix = gen_mix;
        self
    }

    /// Switches the scenario to service mode with the given axis.
    pub fn with_service(mut self, axis: ServiceAxis) -> Scenario {
        self.service = Some(axis);
        self
    }

    /// Switches the scenario to storm mode with the given axis.
    pub fn with_storm(mut self, axis: StormAxis) -> Scenario {
        self.storm = Some(axis);
        self
    }

    /// The concrete cluster topology this scenario runs on: the cluster
    /// kind's base spec with the generation mix applied. [`GenMix::Uniform`]
    /// yields the base spec unchanged (every constructor already builds
    /// reference-generation machines), preserving speed-1.0 purity.
    pub fn cluster_spec(&self) -> ClusterSpec {
        match self.gen_mix {
            GenMix::Uniform => self.cluster.spec(),
            mix => self.cluster.spec().with_generation_cycle(mix.cycle()),
        }
    }

    /// A compact, stable identifier encoding every axis value, e.g.
    /// `testbed50-guni-a8-x2-n0.4-f0.8-l20-e0-b0-h0-d0-y0-c0x0-j0-w0-p0x0-o0-q0-s42`
    /// (`g` is the generation mix, `d` the drop probability, `y` the
    /// delivery delay in minutes, `c` the crash period × duration, `j` the
    /// delivery jitter in minutes, `w` the link bandwidth, `p` the
    /// partition period × duration, `o` the Arbiter-failover period, `q`
    /// the fault RNG seed). Arbiter-backpressure knobs append only when
    /// engaged: `u` the per-message service time in minutes, `k` the batch
    /// size; a storm axis appends `t` (the round deadline in minutes).
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}-g{}-a{}-x{}-n{}-f{}-l{}-e{}-b{}-h{}-d{}-y{}-c{}x{}-j{}-w{}-p{}x{}-o{}-q{}-s{}",
            self.cluster.name(),
            self.gen_mix.name(),
            self.apps,
            self.contention,
            self.network_fraction,
            self.fairness_knob,
            self.lease_minutes,
            self.rho_error,
            self.burst_fraction,
            self.heavy_job_fraction,
            self.fault.drop_probability,
            self.fault.delay.as_minutes(),
            self.fault.crash_period,
            self.fault.crash_rounds,
            self.fault.jitter.as_minutes(),
            self.fault.bandwidth,
            self.fault.partition_period,
            self.fault.partition_rounds,
            self.fault.failover_period,
            self.fault.seed,
            self.seed
        );
        // Arbiter-backpressure suffixes only when the knobs are engaged, so
        // every pre-backpressure id (and with it every committed baseline)
        // is unchanged by the knobs existing.
        if self.fault.arbiter_service_time > Time::ZERO {
            id.push_str(&format!(
                "-u{}",
                self.fault.arbiter_service_time.as_minutes()
            ));
        }
        if self.fault.arbiter_batch > 0 {
            id.push_str(&format!("-k{}", self.fault.arbiter_batch));
        }
        // Service-mode suffix only when the axis is present, so every
        // closed-system id (and with it every committed baseline) is
        // unchanged by the axis existing.
        if let Some(axis) = &self.service {
            id.push_str(&format!(
                "-v{}-r{}-z{}",
                axis.shape.name(),
                axis.rate,
                axis.horizon_minutes
            ));
        }
        // Storm suffix, same contract as the service suffix.
        if let Some(axis) = &self.storm {
            id.push_str(&format!("-t{}", axis.bid_deadline_minutes));
        }
        id
    }

    /// The trace configuration this scenario generates apps from.
    pub fn trace_config(&self) -> TraceConfig {
        let mut config = self
            .cluster
            .base_trace_config()
            .with_num_apps(self.apps)
            .with_seed(self.seed)
            .with_network_intensive_fraction(self.network_fraction)
            .with_contention(self.contention)
            .with_heavy_job_fraction(self.heavy_job_fraction);
        if self.burst_fraction > 0.0 {
            config = config.with_burstiness(self.burst_fraction, 8.0);
        }
        config
    }

    /// Generates the (deterministic) trace. A storm scenario collapses
    /// every arrival to time zero *after* generation, so the trace RNG
    /// stream — and with it every job's shape — is untouched by the axis.
    pub fn trace(&self) -> Vec<AppSpec> {
        let mut trace = TraceGenerator::new(self.trace_config()).generate();
        if self.storm.is_some() {
            for spec in &mut trace {
                spec.arrival = Time::ZERO;
            }
        }
        trace
    }

    /// The engine configuration: the scenario's lease, the paper's 1-minute
    /// checkpoint overhead, the experiment harness's 2M-minute horizon and
    /// the fault plumbing for distributed-mode cells (the fault RNG is
    /// seeded from the scheduler seed). Faulty scenarios also enable the
    /// engine's no-progress retry so a round fully lost to message faults
    /// is re-attempted instead of stranding the event queue.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig::default()
            .with_lease(Time::minutes(self.lease_minutes))
            .with_max_sim_time(Time::minutes(2_000_000.0))
            .with_faults(
                self.fault
                    .with_seed(self.scheduler_seed.wrapping_add(self.fault.seed)),
            );
        if !self.fault.is_reliable() {
            config = config.with_retry_interval(Time::minutes(1.0));
        }
        if let Some(storm) = &self.storm {
            config = config
                .with_bid_deadline(Time::minutes(storm.bid_deadline_minutes))
                // Storm cells measure round completion under congestion,
                // not long-run convergence. A reliable storm finishes in a
                // few thousand simulated minutes; a congested Arbiter can
                // starve apps for hundreds of thousands, so the horizon is
                // capped — a cell that hits it reports unfinished apps,
                // which is itself the degradation signal.
                .with_max_sim_time(Time::minutes(Matrix::STORM_HORIZON_MINUTES));
        }
        config
    }

    /// Applies the scenario's Themis knobs to a policy. Themis picks up the
    /// fairness knob, ρ-error and scheduler seed; baselines are returned
    /// unchanged (they have no tunables).
    pub fn instantiate(&self, policy: Policy) -> Policy {
        let themis_config = || {
            ThemisConfig::default()
                .with_fairness_knob(self.fairness_knob)
                .with_rho_error(self.rho_error)
                .with_seed(self.scheduler_seed)
        };
        match policy {
            Policy::Themis(_) => Policy::Themis(themis_config()),
            Policy::ThemisDist(_) => Policy::ThemisDist(themis_config()),
            other => other,
        }
    }

    /// Runs `policy` on this scenario to completion.
    pub fn run(&self, policy: Policy) -> SimReport {
        self.run_on_trace(policy, self.trace())
    }

    /// Runs `policy` on a prebuilt trace (which must come from
    /// [`Scenario::trace`]). Callers comparing several policies on one
    /// scenario generate the trace once and clone it, instead of
    /// regenerating it per policy.
    pub fn run_on_trace(&self, policy: Policy, trace: Vec<AppSpec>) -> SimReport {
        self.run_on_trace_with_log(policy, trace, LogMode::Off)
    }

    /// Runs `policy` on a prebuilt trace with an explicit transport
    /// [`LogMode`]. Only distributed-mode Themis has a transport; every
    /// other policy ignores the mode (see `Policy::build_with_log`).
    pub fn run_on_trace_with_log(
        &self,
        policy: Policy,
        trace: Vec<AppSpec>,
        mode: LogMode,
    ) -> SimReport {
        let cluster = Cluster::new(self.cluster_spec());
        let config = self.sim_config();
        Engine::new(
            cluster,
            trace,
            self.instantiate(policy).build_with_log(&config, mode),
            config,
        )
        .run()
    }

    /// Runs `policy` to completion while transcribing every transport
    /// decision — send fates, deliveries, timers — into the returned
    /// [`MessageLog`]. For a non-distributed policy the log comes back
    /// empty: only the actor transport makes decisions worth recording.
    pub fn run_recorded(&self, policy: Policy) -> (SimReport, MessageLog) {
        let log = Arc::new(Mutex::new(MessageLog::new()));
        let report =
            self.run_on_trace_with_log(policy, self.trace(), LogMode::record(Arc::clone(&log)));
        let log = Arc::try_unwrap(log)
            .expect("engine dropped its log handle at run end")
            .into_inner();
        (report, log)
    }

    /// Re-runs `policy` taking every transport decision from `log` instead
    /// of the fault RNG. A faithful log reproduces the recorded run
    /// byte-for-byte (the replay-gate invariant); a divergent, truncated
    /// or corrupted log panics with a record-index diagnostic.
    pub fn run_replayed(&self, policy: Policy, log: MessageLog) -> SimReport {
        self.run_on_trace_with_log(policy, self.trace(), LogMode::replay(Arc::new(log)))
    }

    /// The service-engine configuration of a service-mode scenario: the
    /// axis horizon, a heartbeat of half the lease (so windowed metrics
    /// keep moving through idle stretches), and rolling-window/steady-state
    /// parameters scaled to the horizon. The ρ window is a quarter of the
    /// horizon and the detector asks for few samples in it: apps on these
    /// traces live for hundreds of simulated minutes, so retirements — the
    /// only source of achieved-ρ samples — are scarce, and a tight window
    /// would starve the detector no matter how stable the system is. The
    /// backlog-swing guard, not the ρ band, is what separates a storm from
    /// steady state. Panics if the scenario has no service axis.
    pub fn service_config(&self) -> ServiceConfig {
        let axis = self
            .service
            .expect("service_config() needs a service axis (use with_service)");
        let horizon = Time::minutes(axis.horizon_minutes);
        ServiceConfig {
            horizon,
            tick_interval: Some(Time::minutes(self.lease_minutes / 2.0)),
            window: horizon / 4.0,
            steady: SteadyConfig {
                warmup: horizon / 8.0,
                check_interval: horizon / 40.0,
                min_samples: 3,
                tolerance: 0.5,
                consecutive: 3,
                backlog_slack: 4,
            },
        }
    }

    /// Runs `policy` on this scenario's service axis: an open-system run
    /// where the [`ArrivalProcess`] (seeded from the scenario seed,
    /// modulated by the axis shape) paces an unbounded [`TraceStream`] of
    /// apps into the [`ServiceEngine`] until the horizon. Incremental
    /// rounds are enabled — schedulers that support the skip contract get
    /// the hot path, everything else transparently runs every auction.
    /// Panics if the scenario has no service axis.
    pub fn run_service(&self, policy: Policy) -> ServiceReport {
        let axis = self
            .service
            .expect("run_service() needs a service axis (use with_service)");
        let horizon = Time::minutes(axis.horizon_minutes);
        let trace_config = self.trace_config();
        let mean = trace_config.mean_interarrival / axis.rate;
        let arrivals = ArrivalProcess::new(axis.shape.arrival_shape(horizon), mean, self.seed);
        let source = StreamSource::new(arrivals, TraceStream::new(trace_config), horizon);
        let cluster = Cluster::new(self.cluster_spec());
        let sim = self.sim_config().with_incremental(true);
        let scheduler = self.instantiate(policy).build_with(&sim);
        ServiceEngine::new(cluster, scheduler, sim, self.service_config(), source).run()
    }
}

/// A declarative scenario matrix: every field is an axis, and
/// [`Matrix::expand`] takes the cartesian product of all of them.
///
/// Axes that only affect Themis (`fairness_knob`, `rho_error`) are deduped
/// per baseline by [`Matrix::cells`]: a baseline runs only the first value
/// of each Themis-only axis, since the remaining combinations would be
/// byte-identical re-runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Name of the matrix ("smoke", "full", ...), recorded in the report.
    pub name: String,
    /// Cluster axis.
    pub clusters: Vec<ClusterKind>,
    /// GPU-generation-mix axis (every policy is speed-aware, so — unlike
    /// the Themis-only knobs — no cell is deduped along it).
    pub gen_mix: Vec<GenMix>,
    /// Trace-size axis (number of apps).
    pub apps: Vec<usize>,
    /// Contention-factor axis.
    pub contention: Vec<f64>,
    /// Network-intensive-fraction axis.
    pub network_fraction: Vec<f64>,
    /// Fairness-knob axis (Themis only).
    pub fairness_knob: Vec<f64>,
    /// Lease-duration axis (minutes).
    pub lease_minutes: Vec<f64>,
    /// ρ-error axis (Themis only).
    pub rho_error: Vec<f64>,
    /// Bursty-arrival axis.
    pub burst_fraction: Vec<f64>,
    /// Heavy-job axis.
    pub heavy_job_fraction: Vec<f64>,
    /// Transport-fault axis (`themis-dist` only).
    pub faults: Vec<FaultConfig>,
    /// Service-mode axis. `[None]` (the default) keeps a matrix fully
    /// closed-system; service matrices put their shape × rate grid here.
    /// Like the generation mix, the axis affects every policy, so no cell
    /// is deduped along it.
    pub service: Vec<Option<ServiceAxis>>,
    /// Storm axis. `[None]` (the default) keeps arrivals and the round
    /// deadline untouched; the `storm` matrix puts its deadline grid here.
    pub storm: Vec<Option<StormAxis>>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Policies to run on every scenario.
    pub policies: Vec<Policy>,
}

impl Matrix {
    /// A single-point matrix (one value per axis) that scenarios can be
    /// grown from. Uses the paper's default knobs and all five policies.
    pub fn point(name: &str, cluster: ClusterKind, apps: usize, seed: u64) -> Matrix {
        Matrix {
            name: name.to_string(),
            clusters: vec![cluster],
            gen_mix: vec![GenMix::Uniform],
            apps: vec![apps],
            contention: vec![1.0],
            network_fraction: vec![0.4],
            fairness_knob: vec![0.8],
            lease_minutes: vec![20.0],
            rho_error: vec![0.0],
            burst_fraction: vec![0.0],
            heavy_job_fraction: vec![0.0],
            faults: vec![FaultConfig::reliable()],
            service: vec![None],
            storm: vec![None],
            seeds: vec![seed],
            policies: Policy::all(),
        }
    }

    /// The CI smoke matrix: small, pinned-seed, covers the contention,
    /// fairness-knob and burstiness axes on the 16-GPU rack. This is the
    /// matrix `BENCH_BASELINE.json` is generated from; keep it fast — CI
    /// runs it on every push.
    pub fn smoke() -> Matrix {
        Matrix {
            contention: vec![1.0, 2.0],
            fairness_knob: vec![0.8, 0.2],
            burst_fraction: vec![0.0, 0.5],
            ..Matrix::point("smoke", ClusterKind::Rack16, 6, 42)
        }
    }

    /// The paper-shaped evaluation matrix on the 50-GPU testbed: contention
    /// × placement mix × fairness knob × estimator error × two seeds.
    /// Hours of simulated sweep — run it locally, not in CI.
    pub fn full() -> Matrix {
        Matrix {
            apps: vec![20],
            contention: vec![1.0, 2.0, 4.0],
            network_fraction: vec![0.0, 0.5, 1.0],
            fairness_knob: vec![0.2, 0.8],
            rho_error: vec![0.0, 0.1],
            seeds: vec![42, 43],
            ..Matrix::point("full", ClusterKind::Testbed50, 20, 42)
        }
    }

    /// The lease-sensitivity matrix behind Figure 4c, extended with both
    /// cluster scales.
    pub fn lease() -> Matrix {
        Matrix {
            clusters: vec![ClusterKind::Rack16, ClusterKind::Testbed50],
            apps: vec![8],
            lease_minutes: vec![5.0, 10.0, 20.0, 40.0],
            policies: vec![Policy::themis_default(), Policy::Tiresias],
            ..Matrix::point("lease", ClusterKind::Testbed50, 8, 42)
        }
    }

    /// A stress matrix for the new workload knobs: bursty arrivals and
    /// heavy 8-GPU jobs under elevated contention.
    pub fn stress() -> Matrix {
        Matrix {
            contention: vec![2.0],
            burst_fraction: vec![0.0, 0.5, 0.9],
            heavy_job_fraction: vec![0.0, 0.3],
            apps: vec![10],
            ..Matrix::point("stress", ClusterKind::Testbed50, 10, 42)
        }
    }

    /// The control-plane robustness matrix: distributed-mode Themis under
    /// escalating transport faults (message drops, delivery delay and
    /// jitter, constrained link bandwidth, agent crashes, network
    /// partitions, Arbiter failover), with in-process Themis on the
    /// reliable point as the degradation reference. The delay cell sits at
    /// 5 s — under the actor runtime a round completes only when the
    /// one-way delay stays within a quarter of the 30 s bid deadline, so
    /// 5 s exercises slow-but-completing rounds while the combined cell
    /// stresses the deadline itself. Pinned seed — CI gates it exactly
    /// against `BENCH_FAULTS_BASELINE.json`, so a protocol regression
    /// fails fast.
    pub fn faults() -> Matrix {
        Matrix {
            policies: vec![Policy::themis_default(), Policy::themis_dist_default()],
            contention: vec![2.0],
            faults: vec![
                FaultConfig::reliable(),
                FaultConfig::reliable().with_drop_probability(0.2),
                FaultConfig::reliable().with_delay(Time::seconds(5.0)),
                // Reordering: small fixed delay, dominant jitter.
                FaultConfig::reliable()
                    .with_delay(Time::seconds(2.0))
                    .with_jitter(Time::seconds(6.0)),
                // Serialized links: offers/bids queue behind each other.
                FaultConfig::reliable().with_bandwidth(120.0),
                // Split-and-heal partitions every 4th round, 2 rounds long.
                FaultConfig::reliable().with_partition(4, 2),
                // Arbiter crash-failover every 6th round voids in-flight Wins.
                FaultConfig::reliable().with_failover(6),
                FaultConfig::reliable()
                    .with_drop_probability(0.3)
                    .with_delay(Time::seconds(5.0))
                    .with_crash(5, 2),
            ],
            ..Matrix::point("faults", ClusterKind::Rack16, 6, 42)
        }
    }

    /// The scale matrix: synthetic 1024- and 4096-GPU clusters under
    /// 100- and 500-app traces — cluster sizes far beyond the paper's 256
    /// GPUs, only tractable with the dense arena-backed scheduler core
    /// (the auction's exact solver hands over to the greedy fallback, and
    /// the whole matrix finishes in seconds in release). Runs Themis plus
    /// the cheapest baseline (Tiresias/LAS) as a non-auction engine-loop
    /// reference; the quadratic greedy baselines (Gandiva, DRF, SLAQ)
    /// would dominate the wall-clock and measure themselves, not the
    /// auction core. Intended for `sweep --bench`: its per-cell wall-clock
    /// is the perf trajectory CI accumulates per commit.
    pub fn scale() -> Matrix {
        Matrix {
            clusters: vec![ClusterKind::Scale1024, ClusterKind::Scale4096],
            apps: vec![100, 500],
            policies: vec![Policy::themis_default(), Policy::Tiresias],
            ..Matrix::point("scale", ClusterKind::Scale1024, 100, 42)
        }
    }

    /// The heterogeneity matrix: the full generation-mix axis (uniform /
    /// two-generation 2:1 / three-generation 4:2:1) under two contention
    /// levels on the 16-GPU rack, for Themis and all four baselines.
    /// Pinned seed — CI gates it exactly against
    /// `BENCH_HETERO_BASELINE.json`; the uniform column doubles as a
    /// standing speed-1.0-purity witness (its metrics must match the same
    /// cells of any uniform matrix).
    pub fn hetero() -> Matrix {
        Matrix {
            gen_mix: GenMix::ALL.to_vec(),
            contention: vec![1.0, 2.0],
            policies: vec![
                Policy::themis_default(),
                Policy::Gandiva,
                Policy::Slaq,
                Policy::Tiresias,
                Policy::Drf,
            ],
            ..Matrix::point("hetero", ClusterKind::Rack16, 6, 42)
        }
    }

    /// The horizon (simulated minutes) of a `service` matrix cell; the
    /// nightly `soak` matrix runs 10× this. Sized so the sustained-overload
    /// cells (~75 admitted apps on the 16-GPU rack) stay tractable in the
    /// debug-mode determinism test as well as the release CI gate.
    pub const SERVICE_HORIZON_MINUTES: f64 = 1_000.0;

    /// The open-system service matrix: burst shape × utilization target on
    /// the 16-GPU rack, for Themis and all four in-process baselines. The
    /// 0.25 rate is a mostly-idle cluster (the incremental hot path's
    /// skip-ratio showcase); 1.5 is sustained overload. Pinned seed — CI
    /// gates it exactly against `BENCH_SERVICE_BASELINE.json`.
    /// Distributed-mode Themis is excluded: its scheduler doubles as the
    /// actor-runtime pump, so service cells would measure the transport,
    /// not the service loop.
    pub fn service() -> Matrix {
        Matrix {
            service: ServiceShape::ALL
                .into_iter()
                .flat_map(|shape| {
                    [0.25, 1.5].into_iter().map(move |rate| {
                        Some(ServiceAxis::new(shape, rate, Self::SERVICE_HORIZON_MINUTES))
                    })
                })
                .collect(),
            policies: vec![
                Policy::themis_default(),
                Policy::Gandiva,
                Policy::Slaq,
                Policy::Tiresias,
                Policy::Drf,
            ],
            ..Matrix::point("service", ClusterKind::Rack16, 6, 42)
        }
    }

    /// The nightly long-soak matrix: sustained overload (Poisson, 1.5×)
    /// over a horizon 10× the service matrix's, for Themis and the cheapest
    /// baseline. Minutes of wall-clock — run it from the nightly scheduled
    /// CI job (or locally), never on push/PR.
    pub fn soak() -> Matrix {
        Matrix {
            service: vec![Some(ServiceAxis::new(
                ServiceShape::Poisson,
                1.5,
                10.0 * Self::SERVICE_HORIZON_MINUTES,
            ))],
            policies: vec![Policy::themis_default(), Policy::Tiresias],
            ..Matrix::point("soak", ClusterKind::Rack16, 6, 42)
        }
    }

    /// The simulated-time cap of a storm cell (see
    /// [`Scenario::sim_config`]). Every *converging* storm cell ends well
    /// inside it (the slowest, Rack16 × 32 apps at the 4× deadline, ends
    /// near 5,600 simulated minutes); a *collapsed* cell — an over-capacity
    /// inbox whose backlog diverges, e.g. Scale1024 × 32 apps unbatched at
    /// the default deadline — runs to exactly this cap, so the cap also
    /// bounds that cell's wall-clock (its event cost is linear in the
    /// horizon).
    pub const STORM_HORIZON_MINUTES: f64 = 7_500.0;

    /// The per-message Arbiter service time of the storm matrix's
    /// congested cells, in seconds. Chosen so the server stays *stable*
    /// (five phases × 32 messages × 0.25 s ≈ 40 s of work per ~60 s round
    /// cadence) while the ρ fan-in still overruns its deadline at 32 apps:
    /// the query fan-out plus the serialized report fan-in take
    /// 2 × 32 × 0.25 s = 16 s, just past the default 15 s ρ half-deadline —
    /// while an 8-app storm (4 s) clears it comfortably. Batching (4
    /// coalesced sends each way) and the 4× deadline each restore headroom.
    ///
    /// Stability additionally depends on the *round cadence*, which is a
    /// cluster property: Rack16 auctions roughly once a simulated minute,
    /// so 40 s of service work per round leaves slack, while Scale1024's
    /// dense lease traffic fires rounds back-to-back and the same 32-app
    /// unbatched load is over capacity — the backlog diverges, every round
    /// misses, and the cell runs to the horizon cap with its apps starved.
    /// That collapse is deliberate: it is the matrix's existence proof that
    /// an uncoalesced Arbiter inbox does not survive cluster scale, and
    /// both remedies under test (batching, deadline scaling) restore it to
    /// near-zero missed rounds.
    pub const STORM_SERVICE_SECONDS: f64 = 0.25;

    /// The coalescing factor of the storm matrix's batched cells.
    pub const STORM_BATCH: u64 = 8;

    /// The Arbiter-backpressure storm matrix: every app arrives at time
    /// zero (trace arrivals collapsed, job shapes untouched) on three
    /// cluster scales, and distributed-mode Themis auctions the whole
    /// population at once under three Arbiter regimes — free (the control:
    /// must be metric-identical to an unstormed reliable run of the same
    /// trace), congested ([`Matrix::STORM_SERVICE_SECONDS`] per message,
    /// M/D/1-style inbox), and congested-but-coalesced (the same service
    /// time with [`Matrix::STORM_BATCH`]-way `RhoBatch`/`OfferBatch`/
    /// `WinBatch` messages) — each at the default 30 s round deadline and
    /// at a 4× one. Pinned seed — CI gates it exactly against
    /// `BENCH_STORM_BASELINE.json`. This is the experiment behind the
    /// ROADMAP question "does the round deadline need to scale with
    /// cluster size?": compare the missed-round rate across the deadline
    /// columns as the app count grows.
    pub fn storm() -> Matrix {
        let congested = FaultConfig::reliable()
            .with_arbiter_service_time(Time::seconds(Self::STORM_SERVICE_SECONDS));
        Matrix {
            clusters: vec![
                ClusterKind::Rack16,
                ClusterKind::Testbed50,
                ClusterKind::Scale1024,
            ],
            apps: vec![8, 32],
            policies: vec![Policy::themis_dist_default()],
            faults: vec![
                FaultConfig::reliable(),
                congested,
                congested.with_arbiter_batch(Self::STORM_BATCH),
            ],
            storm: vec![Some(StormAxis::new(0.5)), Some(StormAxis::new(2.0))],
            ..Matrix::point("storm", ClusterKind::Rack16, 8, 42)
        }
    }

    /// Names accepted by [`Matrix::by_name`].
    pub const NAMED: [&'static str; 10] = [
        "smoke", "full", "lease", "stress", "faults", "scale", "hetero", "service", "soak", "storm",
    ];

    /// Looks up a named matrix.
    pub fn by_name(name: &str) -> Option<Matrix> {
        match name {
            "smoke" => Some(Matrix::smoke()),
            "full" => Some(Matrix::full()),
            "lease" => Some(Matrix::lease()),
            "stress" => Some(Matrix::stress()),
            "faults" => Some(Matrix::faults()),
            "scale" => Some(Matrix::scale()),
            "hetero" => Some(Matrix::hetero()),
            "service" => Some(Matrix::service()),
            "soak" => Some(Matrix::soak()),
            "storm" => Some(Matrix::storm()),
            _ => None,
        }
    }

    /// Expands the cartesian product of all axes into concrete scenarios,
    /// in a fixed lexicographic axis order. Every scenario's scheduler seed
    /// is its trace seed, so a cell is a pure function of its axis values.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &cluster in &self.clusters {
            for &gen_mix in &self.gen_mix {
                for &apps in &self.apps {
                    for &contention in &self.contention {
                        for &network_fraction in &self.network_fraction {
                            for &fairness_knob in &self.fairness_knob {
                                for &lease_minutes in &self.lease_minutes {
                                    for &rho_error in &self.rho_error {
                                        for &burst_fraction in &self.burst_fraction {
                                            for &heavy_job_fraction in &self.heavy_job_fraction {
                                                for &fault in &self.faults {
                                                    for &service in &self.service {
                                                        for &storm in &self.storm {
                                                            for &seed in &self.seeds {
                                                                out.push(Scenario {
                                                                    cluster,
                                                                    gen_mix,
                                                                    apps,
                                                                    contention,
                                                                    network_fraction,
                                                                    fairness_knob,
                                                                    lease_minutes,
                                                                    rho_error,
                                                                    burst_fraction,
                                                                    heavy_job_fraction,
                                                                    fault,
                                                                    seed,
                                                                    scheduler_seed: seed,
                                                                    service,
                                                                    storm,
                                                                });
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The concrete `(scenario, policy)` cells of the sweep, with
    /// byte-identical baseline re-runs along policy-specific axes deduped:
    /// a non-Themis policy only runs scenarios holding the *first* value
    /// of the `fairness_knob` and `rho_error` axes, and a non-distributed
    /// policy only the first value of the `faults` axis (transport faults
    /// cannot touch an in-process scheduler).
    pub fn cells(&self) -> Vec<(Scenario, Policy)> {
        let first_knob = self.fairness_knob.first().copied();
        let first_error = self.rho_error.first().copied();
        let first_fault = self.faults.first().copied();
        let mut out = Vec::new();
        for scenario in self.expand() {
            for &policy in &self.policies {
                if !policy.is_themis()
                    && (Some(scenario.fairness_knob) != first_knob
                        || Some(scenario.rho_error) != first_error)
                {
                    continue;
                }
                if !policy.is_distributed() && Some(scenario.fault) != first_fault {
                    continue;
                }
                out.push((scenario.clone(), policy));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_cartesian_product() {
        let matrix = Matrix::smoke();
        let scenarios = matrix.expand();
        assert_eq!(
            scenarios.len(),
            matrix.contention.len() * matrix.fairness_knob.len() * matrix.burst_fraction.len()
        );
        // Ids are unique.
        let ids: std::collections::BTreeSet<String> = scenarios.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), scenarios.len());
    }

    #[test]
    fn cells_dedupe_baselines_along_themis_axes() {
        let matrix = Matrix::smoke();
        let cells = matrix.cells();
        let themis = cells.iter().filter(|(_, p)| p.name() == "themis").count();
        let dist = cells
            .iter()
            .filter(|(_, p)| p.name() == "themis-dist")
            .count();
        let gandiva = cells.iter().filter(|(_, p)| p.name() == "gandiva").count();
        // Both Themis modes run every scenario; each baseline skips the
        // extra fairness-knob value.
        assert_eq!(themis, matrix.expand().len());
        assert_eq!(dist, themis);
        assert_eq!(gandiva, themis / matrix.fairness_knob.len());
        // Every baseline cell uses the first knob value.
        for (scenario, policy) in &cells {
            if !policy.is_themis() {
                assert_eq!(scenario.fairness_knob, matrix.fairness_knob[0]);
            }
        }
    }

    #[test]
    fn named_matrices_resolve() {
        for name in Matrix::NAMED {
            let matrix = Matrix::by_name(name).expect("named matrix exists");
            assert_eq!(matrix.name, name);
            assert!(!matrix.cells().is_empty());
        }
        assert!(Matrix::by_name("nope").is_none());
    }

    #[test]
    fn scenario_roundtrips_cluster_names() {
        for kind in ClusterKind::ALL {
            assert_eq!(ClusterKind::parse(kind.name()), Some(kind));
            assert!(kind.spec().total_gpus() > 0);
        }
        assert_eq!(ClusterKind::parse("nope"), None);
        assert_eq!(ClusterKind::Rack16.spec().total_gpus(), 16);
    }

    #[test]
    fn scenario_id_encodes_axes() {
        let s = Scenario::new(ClusterKind::Testbed50, 8, 7)
            .with_contention(2.0)
            .with_fairness_knob(0.4);
        assert_eq!(
            s.id(),
            "testbed50-guni-a8-x2-n0.4-f0.4-l20-e0-b0-h0-d0-y0-c0x0-j0-w0-p0x0-o0-q0-s7"
        );
        let faulty = s.clone().with_fault(
            FaultConfig::reliable()
                .with_drop_probability(0.25)
                .with_crash(5, 2)
                .with_partition(4, 2)
                .with_failover(6),
        );
        assert_eq!(
            faulty.id(),
            "testbed50-guni-a8-x2-n0.4-f0.4-l20-e0-b0-h0-d0.25-y0-c5x2-j0-w0-p4x2-o6-q0-s7"
        );
        let mixed = s.with_gen_mix(GenMix::TwoGen);
        assert_eq!(
            mixed.id(),
            "testbed50-g2gen-a8-x2-n0.4-f0.4-l20-e0-b0-h0-d0-y0-c0x0-j0-w0-p0x0-o0-q0-s7"
        );
    }

    #[test]
    fn instantiate_applies_knobs_to_themis_only() {
        let s = Scenario::new(ClusterKind::Rack16, 4, 1)
            .with_fairness_knob(0.3)
            .with_rho_error(0.1)
            .with_scheduler_seed(9);
        match s.instantiate(Policy::themis_default()) {
            Policy::Themis(cfg) => {
                assert_eq!(cfg.fairness_knob, 0.3);
                assert_eq!(cfg.rho_error_theta, 0.1);
                assert_eq!(cfg.seed, 9);
            }
            other => panic!("expected Themis, got {other:?}"),
        }
        match s.instantiate(Policy::themis_dist_default()) {
            Policy::ThemisDist(cfg) => {
                assert_eq!(cfg.fairness_knob, 0.3);
                assert_eq!(cfg.seed, 9);
            }
            other => panic!("expected ThemisDist, got {other:?}"),
        }
        assert_eq!(s.instantiate(Policy::Drf), Policy::Drf);
    }

    #[test]
    fn fault_axis_reaches_only_distributed_cells() {
        let matrix = Matrix::faults();
        let cells = matrix.cells();
        // In-process Themis runs only the reliable (first) fault value;
        // themis-dist runs the whole axis.
        let dist = cells.iter().filter(|(_, p)| p.is_distributed()).count();
        let in_process = cells.iter().filter(|(_, p)| !p.is_distributed()).count();
        assert_eq!(dist, matrix.faults.len());
        assert_eq!(in_process, 1);
        for (scenario, policy) in &cells {
            if !policy.is_distributed() {
                assert!(scenario.fault.is_reliable());
            }
        }
        // Faulty scenarios enable the engine retry and seed the fault RNG.
        let faulty = Scenario::new(ClusterKind::Rack16, 2, 1)
            .with_scheduler_seed(5)
            .with_fault(FaultConfig::reliable().with_drop_probability(0.5));
        let config = faulty.sim_config();
        assert!(config.retry_interval.is_some());
        assert_eq!(config.fault.seed, 5);
        assert!(Scenario::new(ClusterKind::Rack16, 2, 1)
            .sim_config()
            .retry_interval
            .is_none());
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let s = Scenario::new(ClusterKind::Rack16, 3, 5);
        let a = s.run(Policy::themis_default());
        let b = s.run(Policy::themis_default());
        assert_eq!(a, b);
        assert!(a.scheduling_rounds > 0);
    }

    #[test]
    fn gen_mix_round_trips_and_builds_mixed_specs() {
        for mix in GenMix::ALL {
            assert_eq!(GenMix::parse(mix.name()), Some(mix));
            assert!(!mix.cycle().is_empty());
            assert_eq!(mix.to_string(), mix.name());
        }
        assert_eq!(GenMix::parse("4gen"), None);
        assert_eq!(GenMix::default(), GenMix::Uniform);

        let s = Scenario::new(ClusterKind::Rack16, 2, 1);
        // Uniform: the base spec, untouched.
        assert_eq!(s.cluster_spec(), ClusterKind::Rack16.spec());
        assert!(s.cluster_spec().is_unit_speed());
        // Mixed: same topology, different speeds.
        let mixed = s.with_gen_mix(GenMix::ThreeGen).cluster_spec();
        assert_eq!(mixed.total_gpus(), 16);
        assert_eq!(mixed.uniform_generation(), None);
        assert!(mixed.total_speed() != 16.0);
    }

    #[test]
    fn hetero_matrix_covers_the_mix_axis_for_every_policy() {
        let matrix = Matrix::hetero();
        assert_eq!(matrix.gen_mix.len(), 3);
        assert_eq!(matrix.policies.len(), 5, "themis + all four baselines");
        let cells = matrix.cells();
        // Every policy runs every mix (no dedupe along the hetero axis).
        for policy in &matrix.policies {
            for mix in GenMix::ALL {
                assert!(
                    cells
                        .iter()
                        .any(|(s, p)| p.name() == policy.name() && s.gen_mix == mix),
                    "{} missing a {} cell",
                    policy.name(),
                    mix
                );
            }
        }
        assert_eq!(
            cells.len(),
            matrix.expand().len() * matrix.policies.len(),
            "no dedupe applies: every policy runs the full expansion"
        );
    }

    #[test]
    fn service_matrix_covers_the_shape_rate_grid_for_every_policy() {
        let matrix = Matrix::service();
        assert_eq!(matrix.service.len(), 6, "3 shapes x 2 rates");
        assert_eq!(matrix.policies.len(), 5, "themis + all four baselines");
        assert!(
            matrix.policies.iter().all(|p| !p.is_distributed()),
            "distributed mode opts out of incremental rounds and is excluded"
        );
        let cells = matrix.cells();
        // Every policy runs every (shape, rate) point: the service axis is
        // policy-agnostic, so no dedupe applies along it.
        for policy in &matrix.policies {
            for shape in ServiceShape::ALL {
                for rate in [0.25, 1.5] {
                    assert!(
                        cells.iter().any(|(s, p)| {
                            p.name() == policy.name()
                                && s.service
                                    .is_some_and(|a| a.shape == shape && a.rate == rate)
                        }),
                        "{} missing the ({shape}, {rate}) cell",
                        policy.name()
                    );
                }
            }
        }
        assert_eq!(cells.len(), matrix.expand().len() * matrix.policies.len());
        // Every cell carries the axis, and ids encode it.
        for (scenario, _) in &cells {
            let axis = scenario
                .service
                .expect("service matrix cells carry the axis");
            assert_eq!(axis.horizon_minutes, Matrix::SERVICE_HORIZON_MINUTES);
            assert!(scenario
                .id()
                .contains(&format!("-v{}-r{}", axis.shape, axis.rate)));
        }
    }

    #[test]
    fn soak_matrix_is_the_long_horizon_overload_cell() {
        let matrix = Matrix::soak();
        let axis = matrix.service[0].expect("soak carries one service axis");
        assert_eq!(axis.shape, ServiceShape::Poisson);
        assert_eq!(axis.rate, 1.5);
        assert_eq!(
            axis.horizon_minutes,
            10.0 * Matrix::SERVICE_HORIZON_MINUTES,
            "the nightly soak runs 10x the service horizon"
        );
        assert_eq!(matrix.cells().len(), 2, "themis + one baseline");
    }

    #[test]
    fn service_axis_round_trips_through_the_id_suffix() {
        let s = Scenario::new(ClusterKind::Rack16, 6, 42);
        let base_id = s.id();
        let with_axis = s.with_service(ServiceAxis::new(ServiceShape::Diurnal, 1.5, 2_000.0));
        assert_eq!(
            with_axis.id(),
            format!("{base_id}-vdiurnal-r1.5-z2000"),
            "the suffix appends; closed-system ids are untouched"
        );
        for shape in ServiceShape::ALL {
            assert_eq!(ServiceShape::parse(shape.name()), Some(shape));
            assert_eq!(shape.to_string(), shape.name());
        }
        assert_eq!(ServiceShape::parse("wavy"), None);
    }

    #[test]
    fn storm_matrix_covers_the_backpressure_grid() {
        let matrix = Matrix::storm();
        assert_eq!(matrix.clusters.len(), 3, "Rack16 through Scale1024");
        assert_eq!(matrix.apps, vec![8, 32]);
        assert_eq!(
            matrix.faults.len(),
            3,
            "free, congested, congested-but-coalesced"
        );
        assert_eq!(matrix.storm.len(), 2, "default and 4x round deadline");
        assert!(
            matrix.policies.iter().all(|p| p.is_distributed()),
            "only distributed mode has an Arbiter inbox to congest"
        );
        let cells = matrix.cells();
        assert_eq!(cells.len(), 3 * 2 * 3 * 2);
        for (scenario, _) in &cells {
            let axis = scenario.storm.expect("storm matrix cells carry the axis");
            assert!(axis.bid_deadline_minutes == 0.5 || axis.bid_deadline_minutes == 2.0);
        }
        // The three Arbiter regimes are all present.
        assert!(cells.iter().any(|(s, _)| s.fault.is_reliable()));
        assert!(cells.iter().any(|(s, _)| {
            s.fault.arbiter_service_time > Time::ZERO && s.fault.arbiter_batch == 0
        }));
        assert!(cells.iter().any(|(s, _)| {
            s.fault.arbiter_service_time > Time::ZERO
                && s.fault.arbiter_batch == Matrix::STORM_BATCH
        }));
    }

    #[test]
    fn storm_axis_round_trips_through_the_id_suffix() {
        let s = Scenario::new(ClusterKind::Rack16, 6, 42);
        let base_id = s.id();
        assert!(
            !base_id.contains("-u") && !base_id.contains("-t"),
            "arbiter and storm suffixes are conditional; pre-backpressure ids are untouched"
        );
        let stormed = s.clone().with_storm(StormAxis::new(0.5));
        assert_eq!(stormed.id(), format!("{base_id}-t0.5"));
        let congested = stormed.with_fault(
            FaultConfig::reliable()
                .with_arbiter_service_time(Time::seconds(0.3))
                .with_arbiter_batch(8),
        );
        assert_eq!(congested.id(), format!("{base_id}-u0.005-k8-t0.5"));
    }

    #[test]
    fn storm_collapses_arrivals_but_not_job_shapes() {
        let s = Scenario::new(ClusterKind::Rack16, 6, 42);
        let plain = s.trace();
        let stormed = s.clone().with_storm(StormAxis::new(0.5)).trace();
        assert!(
            plain.iter().any(|spec| spec.arrival > Time::ZERO),
            "the unstormed trace staggers arrivals"
        );
        assert!(stormed.iter().all(|spec| spec.arrival == Time::ZERO));
        // Same trace RNG stream: only the arrivals differ.
        assert_eq!(plain.len(), stormed.len());
        for (mut p, q) in plain.into_iter().zip(stormed) {
            p.arrival = Time::ZERO;
            assert_eq!(p, q, "the storm axis must not perturb job shapes");
        }
    }

    #[test]
    fn storm_sim_config_carries_deadline_and_horizon() {
        let s = Scenario::new(ClusterKind::Rack16, 6, 42).with_storm(StormAxis::new(2.0));
        let config = s.sim_config();
        assert_eq!(config.bid_deadline, Some(Time::minutes(2.0)));
        assert_eq!(
            config.max_sim_time,
            Time::minutes(Matrix::STORM_HORIZON_MINUTES)
        );
        // A congested Arbiter is a fault: the engine retry must engage so a
        // fully-missed round is re-attempted.
        let congested =
            s.with_fault(FaultConfig::reliable().with_arbiter_service_time(Time::seconds(0.25)));
        assert!(congested.sim_config().retry_interval.is_some());
        // Batching alone is not a fault; no retry, no id noise beyond -k.
        let batched = Scenario::new(ClusterKind::Rack16, 6, 42)
            .with_fault(FaultConfig::reliable().with_arbiter_batch(8));
        assert!(batched.sim_config().retry_interval.is_none());
    }

    #[test]
    fn uniform_mix_cells_match_the_speed_blind_run() {
        // The purity witness in miniature: a uniform-mix scenario is the
        // *same cell* as the pre-heterogeneity scenario, report for report.
        let s = Scenario::new(ClusterKind::Rack16, 3, 7).with_contention(2.0);
        let uniform = s.clone().with_gen_mix(GenMix::Uniform);
        for policy in [Policy::themis_default(), Policy::Tiresias] {
            assert_eq!(s.run(policy), uniform.run(policy));
        }
    }
}

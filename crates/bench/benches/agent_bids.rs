//! Micro-benchmark of Agent bid preparation time.
//!
//! Reproduces the §8.3.2 overhead measurement: the paper reports 29 ms
//! median / 334 ms 95th-percentile per bid, with the tail driven by rounds
//! that offer many GPUs (larger subset enumeration). The bench sweeps the
//! offer size and the number of jobs in the app.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_core::agent::Agent;
use themis_core::config::ThemisConfig;
use themis_sim::app_runtime::AppRuntime;
use themis_workload::app::AppSpec;
use themis_workload::job::JobSpec;
use themis_workload::models::ModelArch;

fn runtime(num_jobs: usize) -> AppRuntime {
    let jobs = (0..num_jobs)
        .map(|i| {
            JobSpec::new(
                JobId(i as u32),
                ModelArch::Vgg16,
                2000.0,
                Time::minutes(0.05),
                4,
            )
        })
        .collect();
    AppRuntime::with_default_hpo(AppSpec::new(AppId(0), Time::ZERO, jobs))
}

fn bench_bid_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bid_preparation");

    // Sweep the number of free GPUs in the offer (fixed 16-job app).
    for &(racks, machines, gpus) in &[(1usize, 2usize, 4usize), (2, 4, 4), (4, 8, 4), (4, 16, 4)] {
        let cluster = Cluster::new(ClusterSpec::homogeneous(racks, machines, gpus));
        let offer = cluster.free_vector();
        let rt = runtime(16);
        let config = ThemisConfig::default();
        group.bench_with_input(
            BenchmarkId::new("offered_gpus", offer.total()),
            &offer,
            |b, offer| {
                b.iter(|| {
                    let mut agent = Agent::new(AppId(0), &config);
                    agent.prepare_bid(
                        Time::minutes(10.0),
                        std::hint::black_box(&rt),
                        std::hint::black_box(&cluster),
                        std::hint::black_box(offer),
                    )
                })
            },
        );
    }

    // Sweep the number of jobs in the app (fixed 64-GPU offer).
    for &jobs in &[1usize, 8, 32, 96] {
        let cluster = Cluster::new(ClusterSpec::homogeneous(2, 8, 4));
        let offer = cluster.free_vector();
        let rt = runtime(jobs);
        let config = ThemisConfig::default();
        group.bench_with_input(BenchmarkId::new("jobs_per_app", jobs), &jobs, |b, _| {
            b.iter(|| {
                let mut agent = Agent::new(AppId(0), &config);
                agent.prepare_bid(
                    Time::minutes(10.0),
                    std::hint::black_box(&rt),
                    std::hint::black_box(&cluster),
                    std::hint::black_box(&offer),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bid_preparation);
criterion_main!(benches);

//! Micro-benchmark of the partial-allocation auction solve time.
//!
//! Reproduces the §8.3.2 overhead measurement: the paper reports 354 ms
//! median / 1398 ms 95th-percentile for the Gurobi-based solve, with the
//! tail driven by rounds with many offered GPUs and many bidding apps. The
//! bench sweeps both dimensions so the same shape (solve time grows with
//! offer size and bidder count) can be observed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::{AppId, MachineId};
use themis_core::auction::partial_allocation;
use themis_protocol::bid::BidTable;

/// Builds a bid table for `app` over `machines` machines with up to
/// `max_gpus` GPUs per entry, following the homogeneous rho/k scaling.
fn bid(app: u32, current_rho: f64, machines: &[u32], max_gpus: usize) -> BidTable {
    let mut table = BidTable::empty(AppId(app), current_rho);
    for k in 1..=max_gpus {
        // Spread k GPUs over the app's preferred machines round-robin.
        let mut counts = vec![0usize; machines.len()];
        for i in 0..k {
            counts[i % machines.len()] += 1;
        }
        let fv = FreeVector::from_counts(
            machines
                .iter()
                .zip(counts)
                .filter(|(_, c)| *c > 0)
                .map(|(m, c)| (MachineId(*m), c)),
        );
        table.push(fv, current_rho / k as f64);
    }
    table
}

fn offer(machines: u32, gpus_per_machine: usize) -> FreeVector {
    FreeVector::from_counts((0..machines).map(|m| (MachineId(m), gpus_per_machine)))
}

fn bench_partial_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_allocation");
    for &num_apps in &[2usize, 4, 8, 16] {
        let machines: u32 = 16;
        let bids: Vec<BidTable> = (0..num_apps)
            .map(|i| {
                let prefer: Vec<u32> = (0..4).map(|j| ((i as u32) + j) % machines).collect();
                bid(i as u32, 20.0 + i as f64, &prefer, 8)
            })
            .collect();
        let off = offer(machines, 4);
        group.bench_with_input(
            BenchmarkId::new("bidding_apps", num_apps),
            &num_apps,
            |b, _| {
                b.iter(|| {
                    partial_allocation(std::hint::black_box(&bids), std::hint::black_box(&off))
                })
            },
        );
    }
    for &gpus in &[16usize, 64, 128, 256] {
        let machines = (gpus / 4) as u32;
        let bids: Vec<BidTable> = (0..8)
            .map(|i| {
                let prefer: Vec<u32> = (0..4).map(|j| ((i as u32) + j) % machines).collect();
                bid(i as u32, 20.0 + i as f64, &prefer, 8)
            })
            .collect();
        let off = offer(machines, 4);
        group.bench_with_input(BenchmarkId::new("offered_gpus", gpus), &gpus, |b, _| {
            b.iter(|| partial_allocation(std::hint::black_box(&bids), std::hint::black_box(&off)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partial_allocation);
criterion_main!(benches);

//! End-to-end simulator throughput benchmark, a full-cluster
//! scheduling-round benchmark, and the hidden-payment ablation called out
//! in DESIGN.md.
//!
//! `end_to_end` measures the wall-clock cost of simulating a full workload
//! under Themis vs the baselines (useful when scaling the figure
//! experiments); `scheduling_round` times *one* complete Themis round —
//! ρ probes, participant selection, bidding, the PA auction, leftover
//! assignment and grant materialization — over the paper's 256-GPU
//! cluster, the quantity the dense-arena refactor targets;
//! `hidden_payment_ablation` compares auction solve time with and without
//! the truth-telling payment, quantifying the cost of incentive
//! compatibility.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use themis_bench::policies::Policy;
use themis_cluster::alloc::FreeVector;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, MachineId};
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_core::auction::partial_allocation_with;
use themis_core::scheduler::ThemisScheduler;
use themis_protocol::bid::BidTable;
use themis_sim::app_runtime::AppRuntime;
use themis_sim::arena::AppArena;
use themis_sim::engine::{Engine, SimConfig};
use themis_sim::scheduler::Scheduler;
use themis_workload::trace::{TraceConfig, TraceGenerator};

/// One full 256-GPU scheduling round: every app's Agent is probed, the
/// worst-off fraction bids on the whole free cluster, the auction solves,
/// and the grants are materialized through a borrowed `ClusterView`.
fn bench_scheduling_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_round");
    for &apps in &[8usize, 32] {
        let cluster = Cluster::new(ClusterSpec::heterogeneous_256());
        let trace =
            TraceGenerator::new(TraceConfig::default().with_num_apps(apps).with_seed(7)).generate();
        let arena: AppArena = trace
            .into_iter()
            .map(AppRuntime::with_default_hpo)
            .collect();
        // Late enough that every app has arrived and demands GPUs.
        let now = Time::minutes(1_000_000.0);
        group.bench_with_input(
            BenchmarkId::new("themis_256gpu", apps),
            &arena,
            |b, arena| {
                let mut scheduler = ThemisScheduler::with_defaults();
                b.iter(|| {
                    scheduler.schedule(
                        now,
                        std::hint::black_box(&cluster),
                        std::hint::black_box(arena),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_simulation");
    group.sample_size(10);
    for policy in [Policy::themis_default(), Policy::Tiresias, Policy::Gandiva] {
        group.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let cluster = Cluster::new(ClusterSpec::testbed_50());
                    let trace =
                        TraceGenerator::new(TraceConfig::testbed().with_num_apps(6).with_seed(1))
                            .generate();
                    let sim = SimConfig::default().with_max_sim_time(Time::minutes(500_000.0));
                    Engine::new(cluster, trace, policy.build(), sim).run()
                })
            },
        );
    }
    group.finish();
}

fn bench_hidden_payment_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hidden_payment_ablation");
    let machines: u32 = 12;
    let offer = FreeVector::from_counts((0..machines).map(|m| (MachineId(m), 4)));
    let bids: Vec<BidTable> = (0..8u32)
        .map(|i| {
            let mut t = BidTable::empty(AppId(i), 30.0 + i as f64);
            for k in 1..=8usize {
                let mut counts = [0usize; 4];
                for j in 0..k {
                    counts[j % 4] += 1;
                }
                let fv = FreeVector::from_counts(
                    counts
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(j, c)| (MachineId((i + j as u32) % machines), *c)),
                );
                t.push(fv, (30.0 + i as f64) / k as f64);
            }
            t
        })
        .collect();
    group.bench_function("with_hidden_payments", |b| {
        b.iter(|| {
            partial_allocation_with(
                std::hint::black_box(&bids),
                std::hint::black_box(&offer),
                true,
            )
        })
    });
    group.bench_function("without_hidden_payments", |b| {
        b.iter(|| {
            partial_allocation_with(
                std::hint::black_box(&bids),
                std::hint::black_box(&offer),
                false,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduling_round,
    bench_end_to_end,
    bench_hidden_payment_ablation
);
criterion_main!(benches);

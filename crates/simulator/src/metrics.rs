//! Evaluation metrics.
//!
//! The paper's evaluation (§8.1, "Metrics") reports:
//!
//! * **Max fairness** — the worst finish-time fairness ρ across apps
//!   (lower is better; ideal equals the cluster contention level),
//! * **Jain's fairness index** over ρ values (closer to 1 is better),
//! * **Placement score** — how tightly packed each app's GPUs were,
//! * **GPU time** — total GPU-minutes consumed (lower = more efficient),
//! * **App completion times** and their distribution.
//!
//! [`SimReport`] gathers all of these from the engine's final state.

use crate::app_runtime::AppRuntime;
use crate::arena::AppArena;
use crate::scheduler::ControlPlaneStats;
use serde::{Deserialize, Serialize};
use themis_cluster::ids::AppId;
use themis_cluster::time::Time;

/// Per-app outcome extracted at the end of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// The app.
    pub app: AppId,
    /// Arrival time.
    pub arrival: Time,
    /// Finish time, if the app completed before the simulation ended.
    pub finished_at: Option<Time>,
    /// Completion time (finish − arrival), if finished.
    pub completion_time: Option<Time>,
    /// Ideal (dedicated-cluster) running time T_ID.
    pub ideal_running_time: Time,
    /// Achieved finish-time fairness ρ = completion_time / T_ID.
    pub rho: Option<f64>,
    /// GPU-minutes of service the app received.
    pub attained_service: Time,
    /// Duration-weighted average placement score of the app's allocations.
    pub placement_score: f64,
    /// Whether the app trains a network-intensive model.
    pub network_intensive: bool,
    /// Timeline of the app's GPU count (time, GPUs held).
    pub gpu_timeline: Vec<(Time, usize)>,
}

impl AppOutcome {
    /// Extracts the outcome from an app's runtime state. Once an app has
    /// finished, every field here is frozen (the engine neither advances
    /// nor re-records a finished app), so service mode extracts outcomes at
    /// retirement time and gets exactly what an end-of-run extraction
    /// would.
    pub fn from_runtime(rt: &AppRuntime) -> Self {
        AppOutcome {
            app: rt.id(),
            arrival: rt.spec.arrival,
            finished_at: rt.finished_at,
            completion_time: rt.completion_time(),
            ideal_running_time: rt.spec.ideal_running_time(),
            rho: rt.achieved_rho(),
            attained_service: rt.attained_service,
            placement_score: rt.average_placement_score(),
            network_intensive: rt.spec.is_network_intensive(),
            gpu_timeline: rt.gpu_timeline.clone(),
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the scheduling policy that produced this report.
    pub scheduler: String,
    /// Per-app outcomes, in app-id order.
    pub apps: Vec<AppOutcome>,
    /// Total GPU time consumed across all apps (GPU-minutes).
    pub total_gpu_time: Time,
    /// Simulated time at which the run ended.
    pub end_time: Time,
    /// Peak contention observed: aggregate GPU demand of active apps divided
    /// by cluster size (the paper reports 4.76× for its testbed workload).
    pub peak_contention: f64,
    /// Number of scheduling rounds (auctions) that were run.
    pub scheduling_rounds: u64,
    /// Control-plane round counters, present only for message-driven
    /// schedulers (the distributed Themis modes). See
    /// [`ControlPlaneStats`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub control: Option<ControlPlaneStats>,
}

impl SimReport {
    /// Builds a report from the engine's final app states.
    pub fn from_apps(
        scheduler: &str,
        apps: &AppArena,
        end_time: Time,
        peak_contention: f64,
        scheduling_rounds: u64,
    ) -> Self {
        let outcomes: Vec<AppOutcome> = apps.iter().map(AppOutcome::from_runtime).collect();
        let total_gpu_time = outcomes
            .iter()
            .fold(Time::ZERO, |acc, o| acc + o.attained_service);
        SimReport {
            scheduler: scheduler.to_string(),
            apps: outcomes,
            total_gpu_time,
            end_time,
            peak_contention,
            scheduling_rounds,
            control: None,
        }
    }

    /// Attaches the scheduler's control-plane counters (the engine calls
    /// this when building the final report).
    #[must_use]
    pub fn with_control(mut self, control: Option<ControlPlaneStats>) -> Self {
        self.control = control;
        self
    }

    /// Splices retirement-time outcomes back into a report over the apps
    /// that were still live at the end of a service run, restoring global
    /// app-id order and re-deriving `total_gpu_time` with the same
    /// id-ordered fold [`from_apps`](SimReport::from_apps) uses — so a
    /// merged service report is byte-identical to the batch report over the
    /// same history.
    pub fn with_merged_outcomes(mut self, mut retired: Vec<AppOutcome>) -> Self {
        self.apps.append(&mut retired);
        self.apps.sort_by_key(|o| o.app);
        self.total_gpu_time = self
            .apps
            .iter()
            .fold(Time::ZERO, |acc, o| acc + o.attained_service);
        self
    }

    /// ρ values of all finished apps.
    pub fn rhos(&self) -> Vec<f64> {
        self.apps.iter().filter_map(|a| a.rho).collect()
    }

    /// The worst (maximum) finish-time fairness across finished apps — the
    /// paper's "Max Fairness" metric. `None` if no app finished.
    pub fn max_fairness(&self) -> Option<f64> {
        self.rhos().into_iter().fold(None, |acc, r| match acc {
            None => Some(r),
            Some(m) => Some(m.max(r)),
        })
    }

    /// Jain's fairness index over the finished apps' ρ values:
    /// `(Σρ)² / (n · Σρ²)`. Closer to 1 means lower variance.
    pub fn jains_index(&self) -> Option<f64> {
        let rhos = self.rhos();
        if rhos.is_empty() {
            return None;
        }
        let n = rhos.len() as f64;
        let sum: f64 = rhos.iter().sum();
        let sum_sq: f64 = rhos.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return Some(1.0);
        }
        Some(sum * sum / (n * sum_sq))
    }

    /// Mean completion time over finished apps.
    pub fn mean_completion_time(&self) -> Option<Time> {
        let cts: Vec<Time> = self.apps.iter().filter_map(|a| a.completion_time).collect();
        if cts.is_empty() {
            return None;
        }
        let total = cts.iter().fold(Time::ZERO, |acc, t| acc + *t);
        Some(total / cts.len() as f64)
    }

    /// Empirical CDF of completion times: `(minutes, fraction of apps)`.
    pub fn completion_time_cdf(&self) -> Vec<(f64, f64)> {
        let mut cts: Vec<f64> = self
            .apps
            .iter()
            .filter_map(|a| a.completion_time.map(|t| t.as_minutes()))
            .collect();
        cts.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = cts.len();
        cts.into_iter()
            .enumerate()
            .map(|(i, t)| (t, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Empirical CDF of per-app placement scores (finished apps only).
    pub fn placement_score_cdf(&self) -> Vec<(f64, f64)> {
        let mut scores: Vec<f64> = self
            .apps
            .iter()
            .filter(|a| a.finished_at.is_some())
            .map(|a| a.placement_score)
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let n = scores.len();
        scores
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Mean per-app placement score over finished apps.
    pub fn mean_placement_score(&self) -> Option<f64> {
        let scores: Vec<f64> = self
            .apps
            .iter()
            .filter(|a| a.finished_at.is_some())
            .map(|a| a.placement_score)
            .collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }

    /// Number of apps that finished within the simulation horizon.
    pub fn finished_apps(&self) -> usize {
        self.apps.iter().filter(|a| a.finished_at.is_some()).count()
    }

    /// Number of apps that did not finish (e.g. the simulation hit its time
    /// cap first).
    pub fn unfinished_apps(&self) -> usize {
        self.apps.len() - self.finished_apps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        app: u32,
        rho: Option<f64>,
        ct: Option<f64>,
        score: f64,
        service: f64,
    ) -> AppOutcome {
        AppOutcome {
            app: AppId(app),
            arrival: Time::ZERO,
            finished_at: ct.map(Time::minutes),
            completion_time: ct.map(Time::minutes),
            ideal_running_time: Time::minutes(10.0),
            rho,
            attained_service: Time::minutes(service),
            placement_score: score,
            network_intensive: false,
            gpu_timeline: Vec::new(),
        }
    }

    fn report(outcomes: Vec<AppOutcome>) -> SimReport {
        let total = outcomes
            .iter()
            .fold(Time::ZERO, |acc, o| acc + o.attained_service);
        SimReport {
            scheduler: "test".into(),
            apps: outcomes,
            total_gpu_time: total,
            end_time: Time::minutes(100.0),
            peak_contention: 2.0,
            scheduling_rounds: 5,
            control: None,
        }
    }

    #[test]
    fn max_fairness_and_jain() {
        let r = report(vec![
            outcome(0, Some(2.0), Some(20.0), 1.0, 40.0),
            outcome(1, Some(4.0), Some(40.0), 0.8, 60.0),
            outcome(2, None, None, 1.0, 0.0),
        ]);
        assert_eq!(r.max_fairness(), Some(4.0));
        // Jain over {2, 4}: (6)^2 / (2 * 20) = 36/40 = 0.9
        assert!((r.jains_index().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(r.finished_apps(), 2);
        assert_eq!(r.unfinished_apps(), 1);
    }

    #[test]
    fn jain_is_one_for_equal_rhos() {
        let r = report(vec![
            outcome(0, Some(3.0), Some(30.0), 1.0, 10.0),
            outcome(1, Some(3.0), Some(30.0), 1.0, 10.0),
        ]);
        assert!((r.jains_index().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_no_metrics() {
        let r = report(vec![outcome(0, None, None, 1.0, 0.0)]);
        assert_eq!(r.max_fairness(), None);
        assert_eq!(r.jains_index(), None);
        assert_eq!(r.mean_completion_time(), None);
        assert!(r.completion_time_cdf().is_empty());
    }

    #[test]
    fn cdfs_are_sorted_and_end_at_one() {
        let r = report(vec![
            outcome(0, Some(1.0), Some(30.0), 0.9, 10.0),
            outcome(1, Some(2.0), Some(10.0), 0.6, 10.0),
            outcome(2, Some(3.0), Some(20.0), 1.0, 10.0),
        ]);
        let cdf = r.completion_time_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 10.0);
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
        let pcdf = r.placement_score_cdf();
        assert_eq!(pcdf[0].0, 0.6);
        assert!((pcdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((r.mean_placement_score().unwrap() - (0.9 + 0.6 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_completion_and_gpu_time() {
        let r = report(vec![
            outcome(0, Some(1.0), Some(30.0), 1.0, 100.0),
            outcome(1, Some(2.0), Some(10.0), 1.0, 50.0),
        ]);
        assert_eq!(r.mean_completion_time(), Some(Time::minutes(20.0)));
        assert_eq!(r.total_gpu_time, Time::minutes(150.0));
    }
}

//! The simulator's event queue.
//!
//! Three kinds of events drive the simulation forward: an app arriving, a
//! GPU lease expiring (which triggers a new auction / scheduling round), and
//! a job's projected completion. Events at the same timestamp are processed
//! in insertion order, which keeps the whole simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::time::Time;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An app from the trace arrives and becomes schedulable.
    AppArrival(AppId),
    /// At least one GPU lease expires at this time; the engine reclaims
    /// expired leases and runs a scheduling round.
    LeaseExpiry,
    /// A job is projected to finish at this time (validated when the event
    /// fires — allocations may have changed since it was scheduled).
    JobFinish(AppId, JobId),
    /// A periodic scheduling tick (used when the cluster is idle but apps
    /// are waiting).
    Tick,
    /// A retry of a scheduling round that granted nothing while demand and
    /// free GPUs both existed. Only scheduled when
    /// [`SimConfig::retry_interval`](crate::engine::SimConfig) is set —
    /// distributed-mode schedulers need it so a round lost to message
    /// faults is re-attempted instead of wedging the event queue.
    Retry,
    /// A wakeup requested by the scheduler itself via
    /// [`Scheduler::next_wakeup`](crate::scheduler::Scheduler::next_wakeup):
    /// a message delivery or protocol timer is due at this time and the
    /// actor runtime needs a scheduling call to process it. The engine
    /// deduplicates wakeups per timestamp.
    Wakeup,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// Tie-breaking sequence number (insertion order).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earlier times pop first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of [`Event`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::minutes(30.0), EventKind::LeaseExpiry);
        q.push(Time::minutes(10.0), EventKind::AppArrival(AppId(0)));
        q.push(
            Time::minutes(20.0),
            EventKind::JobFinish(AppId(0), JobId(1)),
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::minutes(10.0)));
        assert_eq!(q.pop().unwrap().kind, EventKind::AppArrival(AppId(0)));
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::JobFinish(AppId(0), JobId(1))
        );
        assert_eq!(q.pop().unwrap().kind, EventKind::LeaseExpiry);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::minutes(5.0);
        q.push(t, EventKind::AppArrival(AppId(0)));
        q.push(t, EventKind::AppArrival(AppId(1)));
        q.push(t, EventKind::AppArrival(AppId(2)));
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            order,
            vec![
                EventKind::AppArrival(AppId(0)),
                EventKind::AppArrival(AppId(1)),
                EventKind::AppArrival(AppId(2)),
            ]
        );
    }

    #[test]
    fn infinity_sorts_last() {
        let mut q = EventQueue::new();
        q.push(Time::INFINITY, EventKind::Tick);
        q.push(Time::minutes(1.0), EventKind::LeaseExpiry);
        assert_eq!(q.pop().unwrap().kind, EventKind::LeaseExpiry);
        assert_eq!(q.pop().unwrap().kind, EventKind::Tick);
    }
}

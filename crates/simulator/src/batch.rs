//! Parallel fan-out of independent simulation runs.
//!
//! Every [`Engine`](crate::engine::Engine) run is self-contained — the
//! engine owns its cluster, app runtimes and event queue, and the whole
//! simulator is deterministic — so a *batch* of runs shards perfectly
//! across OS threads with no shared mutable state. [`run_batch`] is the
//! entry point the experiment harness uses to execute a scenario matrix:
//! it hands task indices to a pool of scoped worker threads and collects
//! the results **in task order**, so the output is byte-for-byte identical
//! regardless of the number of workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `tasks` independent jobs, at most `jobs` at a time, and returns
/// their results in task order.
///
/// `run(i)` must be a pure function of the task index `i` (each call
/// typically builds and runs one simulation engine). Workers pull indices
/// from a shared counter, so long tasks do not starve short ones behind a
/// fixed pre-partition.
///
/// With `jobs <= 1` (or fewer than two tasks) everything runs on the
/// calling thread; the result is identical either way, which is what the
/// sweep determinism test pins down.
///
/// # Panics
/// Propagates the panic of any task (scoped threads re-raise on join).
pub fn run_batch<T, F>(tasks: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || tasks <= 1 {
        return (0..tasks).map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..tasks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(tasks) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let result = run(i);
                slots.lock().expect("batch slots mutex poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("batch slots mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every task index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_batch(17, 1, |i| i * i);
        let parallel = run_batch(17, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[16], 256);
    }

    #[test]
    fn results_are_in_task_order() {
        // Make early tasks slower than late ones so out-of-order completion
        // is likely under real parallelism.
        let out = run_batch(8, 8, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i as u64) * 2));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_batches() {
        assert_eq!(run_batch(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_batch(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        assert_eq!(run_batch(3, 64, |i| i), vec![0, 1, 2]);
        assert_eq!(run_batch(3, 0, |i| i), vec![0, 1, 2]);
    }
}

//! The cross-app scheduler interface and shared placement helpers.
//!
//! Every policy evaluated in the paper — Themis itself (`themis-core`) and
//! the Gandiva / Tiresias / SLAQ / DRF baselines (`themis-baselines`) —
//! implements [`Scheduler`]: at every scheduling event the engine hands the
//! policy the current cluster state and the dense app arena, and the policy
//! returns concrete GPU-to-job assignments for (a subset of) the free GPUs.
//!
//! The placement helpers are generic over
//! [`ClusterState`], so policies call them against a borrowed
//! [`themis_cluster::view::ClusterView`] shadow instead of cloning the
//! cluster per round.

use crate::app_runtime::AppRuntime;
use crate::arena::AppArena;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, GpuId, JobId, MachineId};
use themis_cluster::time::Time;
use themis_cluster::view::ClusterState;

/// One allocation decision: grant these GPUs to this job of this app for the
/// next lease period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationDecision {
    /// The app receiving the GPUs.
    pub app: AppId,
    /// The job (within the app) the GPUs are assigned to.
    pub job: JobId,
    /// The concrete GPUs granted. Must be free in the cluster at decision
    /// time; the engine validates this.
    pub gpus: Vec<GpuId>,
}

/// Control-plane round counters reported by message-driven schedulers.
///
/// The distributed Themis modes run each auction round as a real message
/// exchange with phase deadlines; these counters summarize how the protocol
/// fared — how many rounds ran, how many collected every queried ρ report
/// in time, and how much traffic missed its phase. In-process policies have
/// no control plane and report nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ControlPlaneStats {
    /// Auction rounds started.
    pub rounds: u64,
    /// Rounds in which every queried agent's ρ report arrived by the ρ
    /// deadline (a round with nobody to query counts as complete).
    pub completed_rounds: u64,
    /// ρ reports that missed their round's ρ deadline.
    pub missed_rho_reports: u64,
    /// Offered participants whose bid or pass missed the bid deadline.
    pub missed_bids: u64,
    /// Win notifications voided (lost in transit past the win deadline, or
    /// wiped by an Arbiter failover).
    pub voided_wins: u64,
}

impl ControlPlaneStats {
    /// Fraction of started rounds that missed at least one queried ρ
    /// report — the storm matrix's headline degradation metric. `NaN`
    /// before any round has started.
    pub fn missed_round_rate(&self) -> f64 {
        if self.rounds == 0 {
            return f64::NAN;
        }
        1.0 - self.completed_rounds as f64 / self.rounds as f64
    }
}

/// A cross-app scheduling policy.
pub trait Scheduler {
    /// Short name used in reports ("themis", "gandiva", "tiresias", ...).
    fn name(&self) -> &'static str;

    /// Called at every scheduling event (app arrival, lease expiry, job
    /// completion). Returns the allocations to apply. GPUs not covered by
    /// any decision stay free until the next event.
    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision>;

    /// The next simulated time at which this scheduler has internal work
    /// pending — a message delivery or a protocol timer for the actor-based
    /// distributed mode. The engine queries this after every round and
    /// enqueues a [`Wakeup`](crate::events::EventKind::Wakeup) event so the
    /// work is processed even when no workload event lands on that time.
    /// Purely event-driven policies (the default) have none.
    fn next_wakeup(&self) -> Option<Time> {
        None
    }

    /// Whether the engine may skip calling [`schedule`](Scheduler::schedule)
    /// on a round where the offer set is clean and no grant is possible
    /// (zero free GPUs, or no schedulable app with unmet demand).
    ///
    /// Returning `true` is a purity contract: in exactly that state,
    /// `schedule` must return no decisions *and* leave the policy's
    /// observable behavior unchanged — no RNG draws, no internal state that
    /// a later round's decisions depend on. Every in-process policy in this
    /// workspace satisfies it (they all early-return before consuming
    /// randomness or mutating per-round state). Message-driven schedulers
    /// must override this to `false`: their `schedule` call doubles as the
    /// actor runtime's pump, and skipping it would stall pending message
    /// deliveries and protocol timers.
    fn supports_incremental(&self) -> bool {
        true
    }

    /// Control-plane round counters, for schedulers that run a real message
    /// protocol. The engine copies them into the final
    /// [`SimReport`](crate::metrics::SimReport) so benchmarks can report
    /// missed-round rates. In-process policies (the default) report `None`.
    fn control_stats(&self) -> Option<ControlPlaneStats> {
        None
    }
}

impl Scheduler for Box<dyn Scheduler> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        (**self).schedule(now, cluster, apps)
    }

    fn next_wakeup(&self) -> Option<Time> {
        (**self).next_wakeup()
    }

    fn supports_incremental(&self) -> bool {
        (**self).supports_incremental()
    }

    fn control_stats(&self) -> Option<ControlPlaneStats> {
        (**self).control_stats()
    }
}

/// Picks `count` free GPUs, packing them as tightly as possible:
///
/// 1. prefer a machine that already hosts GPUs in `prefer_machines` and can
///    fit the whole request,
/// 2. otherwise the machine with the fewest free GPUs that still fits the
///    whole request (best-fit, reduces fragmentation),
/// 3. otherwise spill across machines of one rack, then across racks.
///
/// Ties at every step break toward the *faster* machine (higher GPU
/// generation) before falling back to the lowest machine id, so on a
/// mixed-generation cluster an equally-local fast offer beats a slow one.
/// On a uniform-speed cluster every speed comparison is a tie and the pick
/// is identical to the speed-blind one — the speed-1.0 purity the
/// determinism baselines pin.
///
/// Returns fewer than `count` GPUs only if the cluster does not have enough
/// free GPUs in total.
pub fn pick_gpus_packed<C: ClusterState>(
    cluster: &C,
    count: usize,
    prefer_machines: &BTreeSet<MachineId>,
) -> Vec<GpuId> {
    if count == 0 {
        return Vec::new();
    }
    let spec = cluster.spec();
    // Free GPUs per machine.
    let mut free_by_machine: BTreeMap<MachineId, Vec<GpuId>> = BTreeMap::new();
    for gpu in cluster.free_gpus() {
        if let Some(m) = spec.machine_of(gpu) {
            free_by_machine.entry(m).or_default().push(gpu);
        }
    }
    let speed = |m: MachineId| spec.machine_speed(m).unwrap_or(1.0);

    // 1. A preferred machine that fits the whole request: fewest free GPUs
    //    first (best fit), faster machine on ties.
    let preferred_fit = prefer_machines
        .iter()
        .filter_map(|m| free_by_machine.get(m).map(|gpus| (*m, gpus.len())))
        .filter(|(_, n)| *n >= count)
        .min_by(|a, b| {
            a.1.cmp(&b.1)
                .then_with(|| speed(b.0).total_cmp(&speed(a.0)))
                .then_with(|| a.0.cmp(&b.0))
        });
    if let Some((machine, _)) = preferred_fit {
        return free_by_machine[&machine]
            .iter()
            .take(count)
            .copied()
            .collect();
    }

    // 2. Best-fit single machine, faster machine on ties.
    let best_fit = free_by_machine
        .iter()
        .filter(|(_, gpus)| gpus.len() >= count)
        .min_by(|a, b| {
            a.1.len()
                .cmp(&b.1.len())
                .then_with(|| speed(*b.0).total_cmp(&speed(*a.0)))
                .then_with(|| a.0.cmp(b.0))
        });
    if let Some((_, gpus)) = best_fit {
        return gpus.iter().take(count).copied().collect();
    }

    // 3. Spill: fill machines rack by rack, preferring racks with the most
    //    free GPUs so the allocation stays within as few racks as possible,
    //    and preferring preferred machines first within a rack.
    let mut rack_free: BTreeMap<_, usize> = BTreeMap::new();
    for (machine, gpus) in &free_by_machine {
        if let Some(m) = spec.machine(*machine) {
            *rack_free.entry(m.rack).or_insert(0) += gpus.len();
        }
    }
    let mut racks: Vec<_> = rack_free.into_iter().collect();
    racks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut chosen = Vec::with_capacity(count);
    for (rack, _) in racks {
        let mut machines: Vec<_> = free_by_machine
            .iter()
            .filter(|(m, _)| spec.machine(**m).map(|ms| ms.rack) == Some(rack))
            .collect();
        // Preferred machines first, then most-free first (pack densely),
        // then faster first.
        machines.sort_by(|a, b| {
            let ap = prefer_machines.contains(a.0);
            let bp = prefer_machines.contains(b.0);
            bp.cmp(&ap)
                .then(b.1.len().cmp(&a.1.len()))
                .then_with(|| speed(*b.0).total_cmp(&speed(*a.0)))
                .then(a.0.cmp(b.0))
        });
        for (_, gpus) in machines {
            for gpu in gpus {
                if chosen.len() == count {
                    return chosen;
                }
                chosen.push(*gpu);
            }
        }
    }
    chosen
}

/// All free GPUs ordered fastest-first (generation speed descending, GPU id
/// ascending within a generation). This is the speed-aware replacement for
/// "free GPUs in id order" used by the placement-*insensitive* baselines
/// (Tiresias, DRF): they still ignore locality, but on a mixed-generation
/// cluster the least-served / smallest-share app is handed the fastest
/// available silicon first. On a uniform-speed cluster the order is exactly
/// id order (the stable sort never reorders equal speeds), preserving
/// speed-1.0 purity.
pub fn free_gpus_fastest_first<C: ClusterState>(cluster: &C) -> Vec<GpuId> {
    let mut free = cluster.free_gpus();
    let spec = cluster.spec();
    if spec.uniform_generation().is_none() {
        free.sort_by(|a, b| {
            spec.speed_of(*b)
                .unwrap_or(1.0)
                .total_cmp(&spec.speed_of(*a).unwrap_or(1.0))
                .then(a.cmp(b))
        });
    }
    free
}

/// Splits an app-level GPU budget among the app's active jobs.
///
/// An app finishes when its fastest job converges (the best model has been
/// identified), so the budget is handed out to jobs in order of *least work
/// left* first, each receiving up to its remaining unmet parallelism.
/// Returns `(job, gpu_count)` pairs with positive counts.
pub fn split_among_jobs<C: ClusterState>(
    app: &AppRuntime,
    cluster: &C,
    budget: usize,
) -> Vec<(JobId, usize)> {
    // Active jobs ordered by the work they still have to do (ascending).
    let mut order: Vec<JobId> = app.active_jobs();
    order.sort_by(|a, b| {
        let wa = app
            .job_spec(*a)
            .map(|s| app.progress[a].work_left(s))
            .unwrap_or(Time::ZERO);
        let wb = app
            .job_spec(*b)
            .map(|s| app.progress[b].work_left(s))
            .unwrap_or(Time::ZERO);
        wa.cmp(&wb).then(a.cmp(b))
    });

    let mut budget = budget;
    let mut granted: Vec<(JobId, usize)> = Vec::new();
    for job in order {
        if budget == 0 {
            break;
        }
        let held = cluster.gpus_of_job(app.id(), job).len();
        let unmet = app.effective_max_parallelism(job).saturating_sub(held);
        let take = unmet.min(budget);
        if take > 0 {
            granted.push((job, take));
            budget -= take;
        }
    }
    granted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_runtime::AppRuntime;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn cluster() -> Cluster {
        // 2 racks, 2 machines each, 4 GPUs per machine.
        Cluster::new(ClusterSpec::homogeneous(2, 2, 4))
    }

    #[test]
    fn packed_pick_prefers_single_machine() {
        let c = cluster();
        let gpus = pick_gpus_packed(&c, 4, &BTreeSet::new());
        assert_eq!(gpus.len(), 4);
        let machines: BTreeSet<_> = gpus
            .iter()
            .filter_map(|g| c.spec().machine_of(*g))
            .collect();
        assert_eq!(machines.len(), 1, "4 GPUs should fit on one machine");
    }

    #[test]
    fn packed_pick_respects_preference() {
        let c = cluster();
        let prefer: BTreeSet<MachineId> = [MachineId(3)].into_iter().collect();
        let gpus = pick_gpus_packed(&c, 2, &prefer);
        assert!(gpus
            .iter()
            .all(|g| c.spec().machine_of(*g) == Some(MachineId(3))));
    }

    #[test]
    fn packed_pick_spills_within_rack_first() {
        let mut c = cluster();
        // Occupy 2 GPUs on every machine so no machine can fit 4.
        for machine in 0..4u32 {
            let free = c.free_gpus_on(MachineId(machine));
            for gpu in free.into_iter().take(2) {
                c.allocate(gpu, AppId(9), JobId(0), Time::ZERO, Time::minutes(10.0))
                    .unwrap();
            }
        }
        let gpus = pick_gpus_packed(&c, 4, &BTreeSet::new());
        assert_eq!(gpus.len(), 4);
        let racks: BTreeSet<_> = gpus.iter().filter_map(|g| c.spec().rack_of(*g)).collect();
        assert_eq!(racks.len(), 1, "should stay within one rack: {gpus:?}");
    }

    #[test]
    fn packed_pick_returns_partial_when_scarce() {
        let mut c = cluster();
        for gpu in c.free_gpus().into_iter().skip(3) {
            c.allocate(gpu, AppId(9), JobId(0), Time::ZERO, Time::minutes(10.0))
                .unwrap();
        }
        let gpus = pick_gpus_packed(&c, 8, &BTreeSet::new());
        assert_eq!(gpus.len(), 3);
        assert!(pick_gpus_packed(&c, 0, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn packed_pick_sees_view_overlays() {
        let c = cluster();
        let mut view = c.view();
        // Tentatively fill machine 0 through the view; the next packed pick
        // must avoid it.
        for gpu in view.free_gpus_on(MachineId(0)) {
            view.allocate(gpu, AppId(9), JobId(0)).unwrap();
        }
        let gpus = pick_gpus_packed(&view, 4, &BTreeSet::new());
        assert_eq!(gpus.len(), 4);
        assert!(gpus
            .iter()
            .all(|g| c.spec().machine_of(*g) != Some(MachineId(0))));
    }

    #[test]
    fn packed_pick_prefers_faster_machines_at_equal_locality() {
        use themis_cluster::topology::GpuGeneration;
        // Machines 0/2 are Pascal (1.0), machines 1/3 are Volta (2.0); all
        // idle, so every machine fits the request equally well.
        let spec = themis_cluster::topology::ClusterSpec::synthetic_mixed(
            2,
            2,
            4,
            &[GpuGeneration::Pascal, GpuGeneration::Volta],
        );
        let c = Cluster::new(spec);
        let gpus = pick_gpus_packed(&c, 4, &BTreeSet::new());
        assert_eq!(gpus.len(), 4);
        let machines: BTreeSet<_> = gpus
            .iter()
            .filter_map(|g| c.spec().machine_of(*g))
            .collect();
        assert_eq!(
            machines,
            [MachineId(1)].into_iter().collect(),
            "the fast machine wins the best-fit tie"
        );
        // An explicit preference for a slow machine still wins (locality
        // and footprint outrank speed).
        let prefer: BTreeSet<MachineId> = [MachineId(2)].into_iter().collect();
        let gpus = pick_gpus_packed(&c, 4, &prefer);
        assert!(gpus
            .iter()
            .all(|g| c.spec().machine_of(*g) == Some(MachineId(2))));
    }

    #[test]
    fn fastest_first_order_is_id_order_at_uniform_speed() {
        use themis_cluster::topology::{ClusterSpec, GpuGeneration};
        let uniform = Cluster::new(ClusterSpec::homogeneous(1, 2, 2));
        assert_eq!(free_gpus_fastest_first(&uniform), uniform.free_gpus());

        // Mixed: Volta machine 1's GPUs come first, id order within a tier.
        let mixed = Cluster::new(ClusterSpec::synthetic_mixed(
            1,
            2,
            2,
            &[GpuGeneration::Pascal, GpuGeneration::Volta],
        ));
        assert_eq!(
            free_gpus_fastest_first(&mixed),
            vec![GpuId(2), GpuId(3), GpuId(0), GpuId(1)]
        );
        // The view sees the same order, minus overlay grants.
        let mut view = mixed.view();
        view.allocate(GpuId(2), AppId(0), JobId(0)).unwrap();
        assert_eq!(
            free_gpus_fastest_first(&view),
            vec![GpuId(3), GpuId(0), GpuId(1)]
        );
    }

    fn app_with_jobs(pars: &[usize]) -> AppRuntime {
        let jobs = pars
            .iter()
            .enumerate()
            .map(|(i, p)| {
                JobSpec::new(
                    JobId(i as u32),
                    ModelArch::ResNet50,
                    100.0,
                    Time::minutes(0.1),
                    *p,
                )
            })
            .collect();
        AppRuntime::with_default_hpo(AppSpec::new(AppId(0), Time::ZERO, jobs))
    }

    #[test]
    fn split_respects_max_parallelism() {
        let app = app_with_jobs(&[2, 4]);
        let c = cluster();
        let split = split_among_jobs(&app, &c, 10);
        let total: usize = split.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 6, "cannot exceed aggregate max parallelism");
        for (job, n) in split {
            assert!(n <= app.effective_max_parallelism(job));
        }
    }

    #[test]
    fn split_serves_the_shortest_job_first() {
        // Two identical jobs: the tie breaks toward the lower id, which gets
        // the whole budget up to its parallelism limit (the app finishes as
        // soon as its fastest job converges, so concentrating helps).
        let app = app_with_jobs(&[4, 4]);
        let c = cluster();
        let split: BTreeMap<JobId, usize> = split_among_jobs(&app, &c, 4).into_iter().collect();
        assert_eq!(split[&JobId(0)], 4);
        assert_eq!(split.get(&JobId(1)), None);
        // A larger budget spills over to the second job.
        let split: BTreeMap<JobId, usize> = split_among_jobs(&app, &c, 6).into_iter().collect();
        assert_eq!(split[&JobId(0)], 4);
        assert_eq!(split[&JobId(1)], 2);
    }

    #[test]
    fn split_accounts_for_already_held_gpus() {
        let app = app_with_jobs(&[4]);
        let mut c = cluster();
        for gpu in c.free_gpus().into_iter().take(3) {
            c.allocate(gpu, AppId(0), JobId(0), Time::ZERO, Time::minutes(10.0))
                .unwrap();
        }
        let split = split_among_jobs(&app, &c, 4);
        assert_eq!(split, vec![(JobId(0), 1)], "only one more GPU is useful");
    }
}

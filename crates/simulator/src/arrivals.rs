//! Unbounded arrival processes for the open-system service mode.
//!
//! A closed (batch) run materializes a finite trace up front; service mode
//! instead draws arrival times from an [`ArrivalProcess`] for as long as
//! the run's horizon lasts. Three shapes cover the scenario family the
//! paper's closed traces cannot express:
//!
//! * [`ArrivalShape::Poisson`] — a stationary Poisson process (exponential
//!   inter-arrival gaps at a constant rate), the steady-state baseline;
//! * [`ArrivalShape::Diurnal`] — a sinusoidally rate-modulated process
//!   modelling the day/night load swing of a shared cluster;
//! * [`ArrivalShape::FlashCrowd`] — a stationary process with one bounded
//!   interval at a multiplied rate: an arrival storm against which the
//!   steady-state detector must *not* report convergence.
//!
//! Every process owns a [`SmallRng`] derived from an explicit seed, draws
//! nothing at construction time, and consumes exactly one draw per
//! arrival — so pinned seeds give bit-reproducible arrival sequences, and
//! two processes with the same seed but different shapes stay comparable
//! draw-for-draw.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_cluster::time::Time;
use themis_workload::distributions::sample_exponential;

/// The shape of the arrival rate over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Constant rate: exponential inter-arrival gaps with the configured
    /// mean.
    Poisson,
    /// Sinusoidal rate modulation with the given period: the instantaneous
    /// rate is `base × (1 + amplitude × sin(2πt/period))`, clamped so it
    /// never drops below 10% of the base rate. `amplitude` in `[0, 1]`.
    Diurnal {
        /// Length of one full day/night cycle.
        period: Time,
        /// Relative swing of the rate around its base (0 = flat, 1 = the
        /// trough nearly stalls).
        amplitude: f64,
    },
    /// A stationary process whose rate is multiplied by `factor` while
    /// `t ∈ [at, at + width)` — a bounded arrival storm.
    FlashCrowd {
        /// Start of the storm.
        at: Time,
        /// Duration of the storm.
        width: Time,
        /// Rate multiplier during the storm (e.g. 8.0).
        factor: f64,
    },
}

impl ArrivalShape {
    /// The rate multiplier at simulated time `t` (1.0 = the base rate).
    fn modulation(&self, t: Time) -> f64 {
        match *self {
            ArrivalShape::Poisson => 1.0,
            ArrivalShape::Diurnal { period, amplitude } => {
                let phase = 2.0 * std::f64::consts::PI * t.as_minutes() / period.as_minutes();
                (1.0 + amplitude * phase.sin()).max(0.1)
            }
            ArrivalShape::FlashCrowd { at, width, factor } => {
                if t >= at && t < at + width {
                    factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Short stable name used in scenario ids ("poisson", "diurnal",
    /// "flash").
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Diurnal { .. } => "diurnal",
            ArrivalShape::FlashCrowd { .. } => "flash",
        }
    }
}

/// A deterministic, unbounded stream of arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    shape: ArrivalShape,
    mean_interarrival: Time,
    rng: SmallRng,
    clock: Time,
}

impl ArrivalProcess {
    /// Creates a process with the given shape, base mean inter-arrival gap
    /// and seed. Panics on a non-positive mean.
    pub fn new(shape: ArrivalShape, mean_interarrival: Time, seed: u64) -> Self {
        assert!(
            mean_interarrival > Time::ZERO,
            "mean inter-arrival must be positive"
        );
        ArrivalProcess {
            shape,
            mean_interarrival,
            // Decorrelate from the workload generator, which seeds its rng
            // with the raw scenario seed.
            rng: SmallRng::seed_from_u64(seed ^ 0xA55A_1234_5678_9ABC),
            clock: Time::ZERO,
        }
    }

    /// A stationary Poisson process.
    pub fn poisson(mean_interarrival: Time, seed: u64) -> Self {
        Self::new(ArrivalShape::Poisson, mean_interarrival, seed)
    }

    /// The process's shape.
    pub fn shape(&self) -> ArrivalShape {
        self.shape
    }

    /// Draws the next absolute arrival time (strictly non-decreasing). The
    /// rate modulation is sampled at the current clock: a draw landing
    /// inside a flash crowd or a diurnal peak uses that instant's rate,
    /// which keeps the sampler one-draw-per-arrival and fully
    /// deterministic.
    pub fn next_arrival(&mut self) -> Time {
        let rate_scale = self.shape.modulation(self.clock);
        let mean = self.mean_interarrival.as_minutes() / rate_scale;
        let gap = sample_exponential(&mut self.rng, mean);
        self.clock += Time::minutes(gap);
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_until(process: &mut ArrivalProcess, horizon: Time) -> Vec<Time> {
        let mut out = Vec::new();
        loop {
            let t = process.next_arrival();
            if t > horizon {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn poisson_is_deterministic_and_roughly_calibrated() {
        let horizon = Time::minutes(100_000.0);
        let mean = Time::minutes(20.0);
        let a = collect_until(&mut ArrivalProcess::poisson(mean, 7), horizon);
        let b = collect_until(&mut ArrivalProcess::poisson(mean, 7), horizon);
        assert_eq!(a, b, "pinned seed must reproduce the arrival sequence");
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrivals non-decreasing"
        );
        // ~5000 expected arrivals; allow a generous CLT band.
        let n = a.len() as f64;
        assert!(
            (4500.0..5500.0).contains(&n),
            "poisson arrival count {n} far from expectation"
        );
        let other_seed = collect_until(&mut ArrivalProcess::poisson(mean, 8), horizon);
        assert_ne!(a, other_seed, "different seeds give different sequences");
    }

    #[test]
    fn diurnal_peak_half_outdraws_trough_half() {
        let period = Time::minutes(1440.0);
        let mut process = ArrivalProcess::new(
            ArrivalShape::Diurnal {
                period,
                amplitude: 0.9,
            },
            Time::minutes(10.0),
            3,
        );
        // sin is positive on the first half of each cycle, negative on the
        // second: count arrivals falling in each half over many cycles.
        let horizon = Time::minutes(1440.0 * 50.0);
        let arrivals = collect_until(&mut process, horizon);
        let half = period.as_minutes() / 2.0;
        let (mut peak, mut trough) = (0usize, 0usize);
        for t in &arrivals {
            if t.as_minutes() % period.as_minutes() < half {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "diurnal peak half ({peak}) should clearly outdraw the trough half ({trough})"
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_storm() {
        let at = Time::minutes(500.0);
        let width = Time::minutes(100.0);
        let mut process = ArrivalProcess::new(
            ArrivalShape::FlashCrowd {
                at,
                width,
                factor: 10.0,
            },
            Time::minutes(10.0),
            11,
        );
        let arrivals = collect_until(&mut process, Time::minutes(1100.0));
        let in_storm = arrivals
            .iter()
            .filter(|t| **t >= at && **t < at + width)
            .count();
        let outside = arrivals.len() - in_storm;
        // The storm window is 1/11 of the horizon but runs 10× hot: it must
        // hold a disproportionate share of the arrivals.
        assert!(
            in_storm as f64 > outside as f64 * 0.5,
            "storm window holds {in_storm} of {} arrivals — not a storm",
            arrivals.len()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_interarrival_is_rejected() {
        let _ = ArrivalProcess::poisson(Time::ZERO, 1);
    }
}

//! Per-app runtime state.
//!
//! [`AppRuntime`] bundles everything the simulator (and the schedulers it
//! drives) needs to know about one app while it is in the system: its static
//! spec, the training progress of every job, the app's own hyper-parameter
//! scheduler, per-job parallelism overrides, attained GPU service (the
//! Tiresias metric), restart penalties from checkpoint/restore, and the
//! samples used for the evaluation metrics.

use std::collections::BTreeMap;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::time::Time;
use themis_cluster::view::ClusterState;
use themis_hpo::api::{AppScheduler, JobEstimate, JobView, SchedulerUpdate};
use themis_workload::app::AppSpec;
use themis_workload::job::{JobProgress, JobSpec};

/// Mutable runtime state of one app inside the simulator.
pub struct AppRuntime {
    /// Static description of the app.
    pub spec: AppSpec,
    /// Per-job training progress.
    pub progress: BTreeMap<JobId, JobProgress>,
    /// The app's own hyper-parameter tuning scheduler (top level of the
    /// two-level architecture).
    pub hpo: Box<dyn AppScheduler>,
    /// Per-job max-parallelism overrides set by the HPO scheduler.
    pub max_par_override: BTreeMap<JobId, usize>,
    /// Total GPU service attained so far (GPU-minutes held), the metric the
    /// Tiresias baseline equalizes.
    pub attained_service: Time,
    /// Per-job "no progress before" timestamps modelling checkpoint/restore
    /// overhead when an allocation changes (§8.3.2).
    pub restart_until: BTreeMap<JobId, Time>,
    /// Time the app finished (all jobs converged or killed).
    pub finished_at: Option<Time>,
    /// Duration-weighted placement-score accumulator: (score · GPU-minutes,
    /// GPU-minutes).
    pub placement_acc: (f64, f64),
    /// Timeline of the app's total GPU count: appended whenever it changes.
    pub gpu_timeline: Vec<(Time, usize)>,
}

impl std::fmt::Debug for AppRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppRuntime")
            .field("app", &self.spec.id)
            .field("jobs", &self.spec.num_jobs())
            .field("finished_at", &self.finished_at)
            .finish_non_exhaustive()
    }
}

impl AppRuntime {
    /// Creates runtime state for an app with the given HPO scheduler.
    pub fn new(spec: AppSpec, hpo: Box<dyn AppScheduler>) -> Self {
        let progress = spec
            .jobs
            .iter()
            .map(|j| (j.id, JobProgress::new()))
            .collect();
        AppRuntime {
            spec,
            progress,
            hpo,
            max_par_override: BTreeMap::new(),
            attained_service: Time::ZERO,
            restart_until: BTreeMap::new(),
            finished_at: None,
            placement_acc: (0.0, 0.0),
            gpu_timeline: Vec::new(),
        }
    }

    /// Creates runtime state with the default HPO scheduler for the app
    /// (HyperBand for multi-job apps, a no-op for single-job apps).
    pub fn with_default_hpo(spec: AppSpec) -> Self {
        let hpo = themis_hpo::default_scheduler_for(&spec);
        AppRuntime::new(spec, hpo)
    }

    /// The app id.
    pub fn id(&self) -> AppId {
        self.spec.id
    }

    /// Whether the app has arrived by `now`.
    pub fn has_arrived(&self, now: Time) -> bool {
        self.spec.arrival <= now
    }

    /// Whether the app has identified its best model: every exploration job
    /// has either converged to the target accuracy or been terminated by
    /// the app's hyper-parameter scheduler (§2.1 — the finish time of an
    /// app is when the best model and hyper-parameters have been
    /// identified, which requires the exploration to have run its course).
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
            || self
                .spec
                .jobs
                .iter()
                .all(|j| self.progress[&j.id].is_finished(j))
    }

    /// Whether the app is eligible for scheduling at `now`: it has arrived
    /// and still has unfinished jobs.
    pub fn is_schedulable(&self, now: Time) -> bool {
        self.has_arrived(now) && !self.is_finished()
    }

    /// The spec of a job.
    pub fn job_spec(&self, job: JobId) -> Option<&JobSpec> {
        self.spec.job(job)
    }

    /// Jobs that are still running (not converged, not killed), in id order.
    pub fn active_jobs(&self) -> Vec<JobId> {
        self.spec
            .jobs
            .iter()
            .filter(|j| !self.progress[&j.id].is_finished(j))
            .map(|j| j.id)
            .collect()
    }

    /// The effective max parallelism of a job: the HPO override if present,
    /// otherwise the spec value.
    pub fn effective_max_parallelism(&self, job: JobId) -> usize {
        self.max_par_override
            .get(&job)
            .copied()
            .unwrap_or_else(|| self.job_spec(job).map(|j| j.max_parallelism).unwrap_or(0))
    }

    /// Total GPU demand of the app right now: the sum of active jobs'
    /// effective max parallelism.
    pub fn total_demand(&self) -> usize {
        self.active_jobs()
            .iter()
            .map(|j| self.effective_max_parallelism(*j))
            .sum()
    }

    /// GPUs the app still wants beyond what it currently holds. Works
    /// against the committed [`Cluster`] or a mid-round
    /// [`themis_cluster::view::ClusterView`] shadow.
    pub fn unmet_demand<C: ClusterState>(&self, cluster: &C) -> usize {
        let held = cluster.gpus_held_by(self.id());
        self.total_demand().saturating_sub(held)
    }

    /// Read-only views of every job, for the HPO scheduler API.
    pub fn job_views(&self) -> Vec<JobView<'_>> {
        self.spec
            .jobs
            .iter()
            .map(|j| JobView {
                spec: j,
                progress: &self.progress[&j.id],
            })
            .collect()
    }

    /// Per-job estimates for bid preparation (work left, max parallelism,
    /// placement sensitivity), honouring HPO parallelism overrides.
    pub fn estimates(&self) -> Vec<JobEstimate> {
        let views = self.job_views();
        let mut estimates = self.hpo.estimates(&views);
        for est in &mut estimates {
            est.max_parallelism = self.effective_max_parallelism(est.job);
        }
        estimates
    }

    /// Runs the app's HPO scheduler and applies its decisions (kills and
    /// parallelism overrides). Returns the jobs that were killed.
    pub fn run_hpo(&mut self, now: Time) -> Vec<JobId> {
        // Build the views from `spec`/`progress` directly so the borrow of
        // `self.hpo` stays disjoint.
        let views: Vec<JobView<'_>> = self
            .spec
            .jobs
            .iter()
            .map(|j| JobView {
                spec: j,
                progress: &self.progress[&j.id],
            })
            .collect();
        let update: SchedulerUpdate = self.hpo.update(now, &views);
        drop(views);
        for (job, par) in update.max_parallelism {
            self.max_par_override.insert(job, par);
        }
        let mut killed = Vec::new();
        for job in update.kill {
            if let Some(progress) = self.progress.get_mut(&job) {
                if !progress.killed {
                    progress.kill(now);
                    killed.push(job);
                }
            }
        }
        killed
    }

    /// Marks the app finished once every exploration job has converged or
    /// been terminated. Returns `true` the first time the app transitions
    /// to finished.
    pub fn try_finish(&mut self, now: Time) -> bool {
        if self.finished_at.is_none() && self.is_finished() {
            self.finished_at = Some(now);
            true
        } else {
            false
        }
    }

    /// Advances every running job by `dt` according to the GPUs it holds in
    /// `cluster`, honouring restart penalties, and accumulates metrics.
    pub fn advance(&mut self, cluster: &Cluster, from: Time, dt: Time) {
        if dt <= Time::ZERO || !self.has_arrived(from + dt) {
            return;
        }
        let app = self.id();
        let to = from + dt;
        // One pass over the cluster's assignment table for this app rather
        // than one per job (apps can have up to ~98 jobs).
        let by_job = cluster.jobs_of_app(app);
        if by_job.is_empty() {
            return;
        }
        for job_spec in &self.spec.jobs {
            let progress = self
                .progress
                .get_mut(&job_spec.id)
                .expect("progress exists for every job");
            if progress.is_finished(job_spec) {
                continue;
            }
            let Some(alloc) = by_job.get(&job_spec.id) else {
                continue;
            };
            let gpus = alloc.len();
            if gpus == 0 {
                continue;
            }
            let locality = themis_cluster::placement::spread(alloc, cluster.spec());
            // Attained service and placement score accrue for the full
            // interval the GPUs are held — physical GPU-minutes, never
            // speed-weighted (a slow GPU occupies the cluster just as long).
            let gpu_minutes = dt.as_minutes() * gpus as f64;
            self.attained_service += Time::minutes(gpu_minutes);
            let score = cluster.scorer().score(alloc, cluster.spec());
            self.placement_acc.0 += score * gpu_minutes;
            self.placement_acc.1 += gpu_minutes;
            // Training progress only accrues after any restart penalty, at
            // the generation-weighted effective rate G_eff = Σ speed_i × S.
            let start = self
                .restart_until
                .get(&job_spec.id)
                .copied()
                .unwrap_or(Time::ZERO)
                .max(from);
            if start < to {
                let usable_speed = cluster.spec().capped_speed(alloc, job_spec.max_parallelism);
                progress.advance_weighted(job_spec, to - start, gpus, usable_speed, locality);
            }
            if progress.is_converged(job_spec) {
                progress.mark_finished(to);
            }
        }
    }

    /// Records a change in the app's total GPU count for the timeline.
    pub fn record_gpu_count(&mut self, now: Time, gpus: usize) {
        match self.gpu_timeline.last() {
            Some((_, last)) if *last == gpus => {}
            _ => self.gpu_timeline.push((now, gpus)),
        }
    }

    /// Duration-weighted average placement score over the app's lifetime
    /// (1.0 when it never held a GPU, matching "trivially well placed").
    pub fn average_placement_score(&self) -> f64 {
        if self.placement_acc.1 <= 0.0 {
            1.0
        } else {
            self.placement_acc.0 / self.placement_acc.1
        }
    }

    /// The app's completion time (finish − arrival), if finished.
    pub fn completion_time(&self) -> Option<Time> {
        self.finished_at.map(|f| f - self.spec.arrival)
    }

    /// The app's *achieved* finish-time fairness ρ = (finish − arrival) /
    /// T_ID, if finished. This is the quantity the paper's evaluation
    /// reports (lower is better, ideal is the cluster contention level).
    pub fn achieved_rho(&self) -> Option<f64> {
        self.completion_time().map(|ct| {
            let ideal = self.spec.ideal_running_time().as_minutes().max(1e-9);
            ct.as_minutes() / ideal
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::GpuId;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::models::ModelArch;

    fn app(num_jobs: usize) -> AppSpec {
        let jobs = (0..num_jobs)
            .map(|i| {
                JobSpec::new(
                    JobId(i as u32),
                    ModelArch::ResNet50,
                    100.0,
                    Time::minutes(0.1),
                    2,
                )
            })
            .collect();
        AppSpec::new(AppId(0), Time::minutes(10.0), jobs)
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::homogeneous(1, 2, 4))
    }

    #[test]
    fn arrival_and_schedulability() {
        let rt = AppRuntime::with_default_hpo(app(1));
        assert!(!rt.has_arrived(Time::minutes(5.0)));
        assert!(rt.has_arrived(Time::minutes(10.0)));
        assert!(rt.is_schedulable(Time::minutes(10.0)));
        assert!(!rt.is_schedulable(Time::minutes(5.0)));
        assert!(!rt.is_finished());
    }

    #[test]
    fn demand_respects_overrides() {
        let mut rt = AppRuntime::with_default_hpo(app(2));
        assert_eq!(rt.total_demand(), 4);
        rt.max_par_override.insert(JobId(0), 6);
        assert_eq!(rt.effective_max_parallelism(JobId(0)), 6);
        assert_eq!(rt.total_demand(), 8);
        let cluster = cluster();
        assert_eq!(rt.unmet_demand(&cluster), 8);
    }

    #[test]
    fn advance_progresses_only_allocated_jobs() {
        let mut rt = AppRuntime::with_default_hpo(app(2));
        let mut cluster = cluster();
        cluster
            .allocate(
                GpuId(0),
                AppId(0),
                JobId(0),
                Time::minutes(10.0),
                Time::minutes(30.0),
            )
            .unwrap();
        cluster
            .allocate(
                GpuId(1),
                AppId(0),
                JobId(0),
                Time::minutes(10.0),
                Time::minutes(30.0),
            )
            .unwrap();
        rt.advance(&cluster, Time::minutes(10.0), Time::minutes(5.0));
        assert!(rt.progress[&JobId(0)].iterations_done > 0.0);
        assert_eq!(rt.progress[&JobId(1)].iterations_done, 0.0);
        assert_eq!(rt.attained_service, Time::minutes(10.0));
        assert!(rt.average_placement_score() > 0.0);
    }

    #[test]
    fn restart_penalty_delays_progress() {
        let mut rt = AppRuntime::with_default_hpo(app(1));
        let mut cluster = cluster();
        cluster
            .allocate(
                GpuId(0),
                AppId(0),
                JobId(0),
                Time::minutes(10.0),
                Time::minutes(30.0),
            )
            .unwrap();
        rt.restart_until.insert(JobId(0), Time::minutes(12.0));
        rt.advance(&cluster, Time::minutes(10.0), Time::minutes(2.0));
        assert_eq!(rt.progress[&JobId(0)].iterations_done, 0.0);
        // Attained service still accrues while the GPU is held.
        assert_eq!(rt.attained_service, Time::minutes(2.0));
        rt.advance(&cluster, Time::minutes(12.0), Time::minutes(2.0));
        assert!(rt.progress[&JobId(0)].iterations_done > 0.0);
    }

    #[test]
    fn app_finishes_when_all_jobs_finish() {
        let mut rt = AppRuntime::with_default_hpo(app(2));
        let mut cluster = cluster();
        for job in [JobId(0), JobId(1)] {
            for gpu in cluster.free_gpus().into_iter().take(2) {
                cluster
                    .allocate(
                        gpu,
                        AppId(0),
                        job,
                        Time::minutes(10.0),
                        Time::minutes(1000.0),
                    )
                    .unwrap();
            }
        }
        // 100 iterations * 0.1 min / 2 GPUs = 5 minutes each.
        rt.advance(&cluster, Time::minutes(10.0), Time::minutes(6.0));
        assert!(rt.is_finished());
        assert!(rt.try_finish(Time::minutes(16.0)));
        assert!(!rt.try_finish(Time::minutes(17.0)), "only transitions once");
        assert_eq!(rt.completion_time(), Some(Time::minutes(6.0)));
        // rho = completion / ideal = 6 / 5.
        assert!((rt.achieved_rho().unwrap() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn gpu_timeline_deduplicates() {
        let mut rt = AppRuntime::with_default_hpo(app(1));
        rt.record_gpu_count(Time::ZERO, 0);
        rt.record_gpu_count(Time::minutes(1.0), 0);
        rt.record_gpu_count(Time::minutes(2.0), 4);
        rt.record_gpu_count(Time::minutes(3.0), 4);
        rt.record_gpu_count(Time::minutes(4.0), 0);
        assert_eq!(rt.gpu_timeline.len(), 3);
    }

    #[test]
    fn estimates_follow_active_jobs() {
        let mut rt = AppRuntime::with_default_hpo(app(3));
        assert_eq!(rt.estimates().len(), 3);
        rt.progress.get_mut(&JobId(1)).unwrap().kill(Time::ZERO);
        assert_eq!(rt.estimates().len(), 2);
        assert_eq!(rt.active_jobs(), vec![JobId(0), JobId(2)]);
    }
}

//! The dense app arena.
//!
//! The engine used to keep its per-app runtime state in a
//! `BTreeMap<AppId, AppRuntime>`, paying an ordered-tree walk on every
//! lookup and every per-round iteration. App ids are dense (trace
//! generators and builders assign them from zero), so [`AppArena`] stores
//! runtimes in a flat `Vec<Option<AppRuntime>>` indexed by app id: O(1)
//! lookup, cache-friendly in-order iteration, and — like the map it
//! replaces — iteration is always ascending by app id, which the
//! simulator's determinism guarantees rely on.

use crate::app_runtime::AppRuntime;
use std::ops::{Index, IndexMut};
use themis_cluster::ids::AppId;

/// Dense id-indexed storage for every app's runtime state.
#[derive(Default)]
pub struct AppArena {
    slots: Vec<Option<AppRuntime>>,
    count: usize,
}

impl std::fmt::Debug for AppArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppArena")
            .field("apps", &self.count)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl AppArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an arena from pre-built runtimes. A runtime with a duplicate
    /// app id replaces the earlier one (matching `BTreeMap::insert`).
    pub fn from_runtimes(runtimes: impl IntoIterator<Item = AppRuntime>) -> Self {
        let mut arena = AppArena::new();
        for rt in runtimes {
            arena.insert(rt);
        }
        arena
    }

    /// Inserts a runtime at its own app id, returning any replaced runtime.
    pub fn insert(&mut self, rt: AppRuntime) -> Option<AppRuntime> {
        let idx = rt.id().index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(rt);
        if old.is_none() {
            self.count += 1;
        }
        old
    }

    /// Removes and returns an app's runtime, if present. The slot stays
    /// reserved (app ids are never reused), so later inserts and lookups
    /// keep their O(1) index math; service mode uses this to retire
    /// finished apps from a long-running arena.
    pub fn remove(&mut self, app: AppId) -> Option<AppRuntime> {
        let taken = self.slots.get_mut(app.index()).and_then(Option::take);
        if taken.is_some() {
            self.count -= 1;
        }
        taken
    }

    /// Number of apps in the arena.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if the arena holds no apps.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether an app is present.
    pub fn contains(&self, app: AppId) -> bool {
        self.get(app).is_some()
    }

    /// The runtime for an app, if present.
    pub fn get(&self, app: AppId) -> Option<&AppRuntime> {
        self.slots.get(app.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the runtime for an app, if present.
    pub fn get_mut(&mut self, app: AppId) -> Option<&mut AppRuntime> {
        self.slots.get_mut(app.index()).and_then(Option::as_mut)
    }

    /// Iterates over every runtime in ascending app-id order.
    pub fn iter(&self) -> impl Iterator<Item = &AppRuntime> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutably iterates over every runtime in ascending app-id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut AppRuntime> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Iterates over every app id in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = AppId> + '_ {
        self.iter().map(|rt| rt.id())
    }
}

impl Index<AppId> for AppArena {
    type Output = AppRuntime;
    fn index(&self, app: AppId) -> &AppRuntime {
        self.get(app)
            .unwrap_or_else(|| panic!("app {app} not in arena"))
    }
}

impl IndexMut<AppId> for AppArena {
    fn index_mut(&mut self, app: AppId) -> &mut AppRuntime {
        self.get_mut(app)
            .unwrap_or_else(|| panic!("app {app} not in arena"))
    }
}

impl FromIterator<AppRuntime> for AppArena {
    fn from_iter<T: IntoIterator<Item = AppRuntime>>(iter: T) -> Self {
        AppArena::from_runtimes(iter)
    }
}

impl<'a> IntoIterator for &'a AppArena {
    type Item = &'a AppRuntime;
    type IntoIter = Box<dyn Iterator<Item = &'a AppRuntime> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;
    use themis_cluster::time::Time;
    use themis_workload::app::AppSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;

    fn rt(id: u32) -> AppRuntime {
        let job = JobSpec::new(JobId(0), ModelArch::ResNet50, 100.0, Time::minutes(0.1), 2);
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(id), Time::ZERO, job))
    }

    #[test]
    fn insert_get_and_iterate_in_id_order() {
        let arena = AppArena::from_runtimes([rt(5), rt(0), rt(3)]);
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
        assert!(arena.contains(AppId(3)));
        assert!(!arena.contains(AppId(1)));
        assert_eq!(arena.get(AppId(5)).unwrap().id(), AppId(5));
        assert!(arena.get(AppId(99)).is_none());
        let ids: Vec<AppId> = arena.ids().collect();
        assert_eq!(ids, vec![AppId(0), AppId(3), AppId(5)]);
        assert_eq!(arena[AppId(0)].id(), AppId(0));
    }

    #[test]
    fn remove_retires_an_app_and_keeps_the_slot_reserved() {
        let mut arena = AppArena::from_runtimes([rt(0), rt(1), rt(2)]);
        let removed = arena.remove(AppId(1)).expect("app 1 present");
        assert_eq!(removed.id(), AppId(1));
        assert_eq!(arena.len(), 2);
        assert!(!arena.contains(AppId(1)));
        assert!(arena.remove(AppId(1)).is_none());
        assert!(arena.remove(AppId(99)).is_none());
        let ids: Vec<AppId> = arena.ids().collect();
        assert_eq!(ids, vec![AppId(0), AppId(2)]);
        // The slot is still addressable: a later insert at the same id works.
        assert!(arena.insert(rt(1)).is_none());
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn duplicate_ids_replace_like_a_map() {
        let mut arena = AppArena::new();
        assert!(arena.insert(rt(2)).is_none());
        let replaced = arena.insert(rt(2)).expect("second insert replaces");
        assert_eq!(replaced.id(), AppId(2));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn mutable_iteration_touches_every_app() {
        let mut arena: AppArena = [rt(0), rt(1)].into_iter().collect();
        for rt in arena.iter_mut() {
            rt.attained_service = Time::minutes(7.0);
        }
        assert!(arena
            .iter()
            .all(|r| r.attained_service == Time::minutes(7.0)));
        arena[AppId(1)].attained_service = Time::minutes(9.0);
        assert_eq!(
            arena.get_mut(AppId(1)).unwrap().attained_service,
            Time::minutes(9.0)
        );
    }

    #[test]
    #[should_panic(expected = "not in arena")]
    fn indexing_a_missing_app_panics() {
        let arena = AppArena::new();
        let _ = &arena[AppId(0)];
    }
}

//! Rolling-window metrics and steady-state detection for service mode.
//!
//! A long-running open system has no "end of trace" to aggregate over; the
//! operationally meaningful quantities are windowed percentiles — what p99
//! finish-time fairness looks like *lately*, how long apps are queueing
//! *right now*. [`RollingWindow`] keeps time-stamped samples over a fixed
//! trailing width; [`ServiceWindows`] groups the windows service mode
//! maintains (ρ at retirement, queueing delay at first grant, lease-renewal
//! latency at re-grant) plus a monotone starvation audit (the maximum
//! number of consecutive scheduling rounds any app spent schedulable but
//! holding zero GPUs). [`SteadyStateDetector`] runs the warmup-discard +
//! convergence test on windowed p99 ρ that decides when a measurement
//! interval has left its transient.
//!
//! Everything here is driven by *simulated* time and recorded at discrete
//! events (retirement, grant, round), never by wall-clock sampling — so a
//! service run is exactly as deterministic as the batch engine underneath.

use std::collections::VecDeque;
use themis_cluster::time::Time;

/// Time-stamped samples over a fixed trailing window.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    width: Time,
    samples: VecDeque<(Time, f64)>,
}

impl RollingWindow {
    /// Creates an empty window of the given width. Panics on a non-positive
    /// width.
    pub fn new(width: Time) -> Self {
        assert!(width > Time::ZERO, "window width must be positive");
        RollingWindow {
            width,
            samples: VecDeque::new(),
        }
    }

    /// Records a sample at time `t`, evicting samples older than the
    /// window. Sample times must be non-decreasing (event order).
    pub fn push(&mut self, t: Time, value: f64) {
        self.samples.push_back((t, value));
        self.evict(t);
    }

    /// Drops samples that have aged out of the window as of `now`.
    pub fn evict(&mut self, now: Time) {
        let cutoff = now - self.width;
        while let Some((t, _)) = self.samples.front() {
            if *t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank percentile (`p` in `[0, 100]`) over the samples
    /// currently in the window, or `None` while empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let [value] = self.percentiles([p]);
        value
    }

    /// Several nearest-rank percentiles over one sort of the window —
    /// callers snapshotting p50 and p99 together pay the clone-and-sort
    /// once instead of per percentile. `None`s while empty.
    pub fn percentiles<const N: usize>(&self, ps: [f64; N]) -> [Option<f64>; N] {
        if self.samples.is_empty() {
            return [None; N];
        }
        let mut values: Vec<f64> = self.samples.iter().map(|(_, v)| *v).collect();
        values.sort_by(|a, b| a.total_cmp(b));
        let n = values.len();
        ps.map(|p| {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            Some(values[rank.clamp(1, n) - 1])
        })
    }
}

/// A snapshot of the windowed service metrics, taken at one instant.
///
/// `None` means the corresponding window was empty (e.g. no app has
/// retired within the last window width).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// When the snapshot was taken.
    pub at: Time,
    /// Median finish-time fairness ρ over recently retired apps.
    pub p50_rho: Option<f64>,
    /// p99 finish-time fairness ρ over recently retired apps.
    pub p99_rho: Option<f64>,
    /// Median queueing delay (arrival → first GPU grant), minutes.
    pub p50_queueing_minutes: Option<f64>,
    /// p99 queueing delay, minutes.
    pub p99_queueing_minutes: Option<f64>,
    /// p99 lease-renewal latency (allocation shrink → next grant), minutes.
    pub p99_renewal_minutes: Option<f64>,
    /// Starvation audit: the maximum number of consecutive scheduling
    /// rounds any app spent schedulable with zero GPUs (post-warmup,
    /// monotone over the run).
    pub max_queue_rounds: u64,
    /// Apps retired within the current ρ window.
    pub rho_samples: usize,
}

/// The rolling windows service mode maintains, plus the starvation audit.
#[derive(Debug, Clone)]
pub struct ServiceWindows {
    rho: RollingWindow,
    queueing: RollingWindow,
    renewal: RollingWindow,
    warmup: Time,
    max_queue_rounds: u64,
}

impl ServiceWindows {
    /// Creates the windows with a shared width. Samples recorded before
    /// `warmup` never count toward the starvation audit (the windows
    /// themselves age transient samples out naturally).
    pub fn new(width: Time, warmup: Time) -> Self {
        ServiceWindows {
            rho: RollingWindow::new(width),
            queueing: RollingWindow::new(width),
            renewal: RollingWindow::new(width),
            warmup,
            max_queue_rounds: 0,
        }
    }

    /// Records a retired app's achieved ρ.
    pub fn record_rho(&mut self, t: Time, rho: f64) {
        self.rho.push(t, rho);
    }

    /// Records a queueing delay (arrival → first grant), in minutes.
    pub fn record_queueing(&mut self, t: Time, minutes: f64) {
        self.queueing.push(t, minutes);
    }

    /// Records a lease-renewal latency (shrink → re-grant), in minutes.
    pub fn record_renewal(&mut self, t: Time, minutes: f64) {
        self.renewal.push(t, minutes);
    }

    /// Feeds one app's current consecutive zero-GPU round count into the
    /// starvation audit (ignored during warmup).
    pub fn note_queue_rounds(&mut self, t: Time, rounds: u64) {
        if t >= self.warmup && rounds > self.max_queue_rounds {
            self.max_queue_rounds = rounds;
        }
    }

    /// Read access to the ρ window (the steady-state detector's input).
    pub fn rho_window(&self) -> &RollingWindow {
        &self.rho
    }

    /// Snapshots every windowed metric at `now`, sorting each window at
    /// most once.
    pub fn summary(&mut self, now: Time) -> WindowSummary {
        self.rho.evict(now);
        self.queueing.evict(now);
        self.renewal.evict(now);
        let [p50_rho, p99_rho] = self.rho.percentiles([50.0, 99.0]);
        let [p50_queueing_minutes, p99_queueing_minutes] = self.queueing.percentiles([50.0, 99.0]);
        WindowSummary {
            at: now,
            p50_rho,
            p99_rho,
            p50_queueing_minutes,
            p99_queueing_minutes,
            p99_renewal_minutes: self.renewal.percentile(99.0),
            max_queue_rounds: self.max_queue_rounds,
            rho_samples: self.rho.len(),
        }
    }
}

/// Configuration of the steady-state convergence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyConfig {
    /// Simulated time discarded before the first check.
    pub warmup: Time,
    /// Gap between convergence checks.
    pub check_interval: Time,
    /// Minimum ρ samples the window must hold for a check to count.
    pub min_samples: usize,
    /// Relative band around the median of the recent p99 values within
    /// which a check reads as stable.
    pub tolerance: f64,
    /// Number of consecutive stable checks required to declare steady
    /// state.
    pub consecutive: usize,
    /// Maximum backlog swing (waiting-app count, max − min) across those
    /// checks: an arrival storm inflates the backlog faster than it moves
    /// windowed ρ, so this is what keeps a flash crowd from reading as
    /// steady.
    pub backlog_slack: usize,
}

impl Default for SteadyConfig {
    fn default() -> Self {
        SteadyConfig {
            warmup: Time::minutes(2_000.0),
            check_interval: Time::minutes(500.0),
            min_samples: 10,
            tolerance: 0.25,
            consecutive: 4,
            backlog_slack: 4,
        }
    }
}

/// Warmup discard + rolling-window convergence test on p99 ρ.
///
/// Driven at observation points (service mode calls
/// [`observe`](SteadyStateDetector::observe) after every round): once past
/// warmup, every `check_interval` of simulated time it snapshots windowed
/// p99 ρ and the current backlog. Steady state is declared at the first
/// instant the last `consecutive` snapshots sit inside the relative
/// `tolerance` band around their median *and* the backlog has not swung by
/// more than `backlog_slack` — so a stationary process converges and an
/// arrival storm (growing backlog, moving p99) does not.
#[derive(Debug, Clone)]
pub struct SteadyStateDetector {
    config: SteadyConfig,
    next_check: Time,
    recent: VecDeque<(f64, usize)>,
    converged_at: Option<Time>,
}

impl SteadyStateDetector {
    /// Creates a detector; the first check happens at `warmup`.
    pub fn new(config: SteadyConfig) -> Self {
        assert!(
            config.check_interval > Time::ZERO,
            "check interval must be positive"
        );
        assert!(config.consecutive >= 2, "need at least two checks");
        SteadyStateDetector {
            next_check: config.warmup,
            config,
            recent: VecDeque::new(),
            converged_at: None,
        }
    }

    /// Feeds one observation point. `backlog` is the number of schedulable
    /// apps currently holding zero GPUs.
    pub fn observe(&mut self, now: Time, rho_window: &RollingWindow, backlog: usize) {
        if self.converged_at.is_some() || now < self.next_check {
            return;
        }
        // Advance to the next grid point `warmup + k·check_interval`
        // strictly after `now`. Setting `next_check = now + interval`
        // instead would let sparse or bursty observations drift the check
        // grid, delaying every later check by the observation gap.
        while self.next_check <= now {
            self.next_check += self.config.check_interval;
        }
        // Cheap cardinality guard first: sorting the window for p99 is
        // pointless while it cannot hold enough samples to count.
        if rho_window.len() < self.config.min_samples {
            self.recent.clear();
            return;
        }
        let Some(p99) = rho_window.percentile(99.0) else {
            self.recent.clear();
            return;
        };
        self.recent.push_back((p99, backlog));
        while self.recent.len() > self.config.consecutive {
            self.recent.pop_front();
        }
        if self.recent.len() < self.config.consecutive {
            return;
        }
        let mut p99s: Vec<f64> = self.recent.iter().map(|(p, _)| *p).collect();
        p99s.sort_by(|a, b| a.total_cmp(b));
        let median = p99s[p99s.len() / 2];
        let band = self.config.tolerance * median.max(1e-9);
        let rho_stable = p99s.iter().all(|p| (p - median).abs() <= band);
        let backlog_min = self.recent.iter().map(|(_, b)| *b).min().unwrap_or(0);
        let backlog_max = self.recent.iter().map(|(_, b)| *b).max().unwrap_or(0);
        let backlog_stable = backlog_max - backlog_min <= self.config.backlog_slack;
        if rho_stable && backlog_stable {
            self.converged_at = Some(now);
        }
    }

    /// The simulated time steady state was declared, if it has been.
    pub fn converged_at(&self) -> Option<Time> {
        self.converged_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_over_the_window() {
        let mut w = RollingWindow::new(Time::minutes(100.0));
        for i in 1..=100 {
            w.push(Time::minutes(i as f64 / 2.0), i as f64);
        }
        assert_eq!(w.len(), 100);
        assert_eq!(w.percentile(50.0), Some(50.0));
        assert_eq!(w.percentile(99.0), Some(99.0));
        assert_eq!(w.percentile(100.0), Some(100.0));
        assert_eq!(w.percentile(0.0), Some(1.0));
    }

    #[test]
    fn batched_percentiles_match_single_calls() {
        let mut w = RollingWindow::new(Time::minutes(1_000.0));
        // An adversarial-ish series: duplicates, negatives, non-monotone.
        for (i, v) in [3.0, -1.0, 3.0, 7.5, 0.0, 12.0, 7.5, 2.25]
            .iter()
            .enumerate()
        {
            w.push(Time::minutes(i as f64), *v);
        }
        let [p50, p99] = w.percentiles([50.0, 99.0]);
        assert_eq!(p50, w.percentile(50.0));
        assert_eq!(p99, w.percentile(99.0));
        assert_eq!(w.percentiles([0.0, 100.0]), [Some(-1.0), Some(12.0)]);
        let empty = RollingWindow::new(Time::minutes(1.0));
        assert_eq!(empty.percentiles([50.0, 99.0]), [None, None]);
    }

    #[test]
    fn old_samples_age_out() {
        let mut w = RollingWindow::new(Time::minutes(10.0));
        w.push(Time::minutes(0.0), 1000.0);
        w.push(Time::minutes(5.0), 2.0);
        w.push(Time::minutes(11.0), 4.0);
        // The t=0 sample is older than 11 − 10 and must be gone.
        assert_eq!(w.len(), 2);
        assert_eq!(w.percentile(100.0), Some(4.0));
        w.evict(Time::minutes(100.0));
        assert!(w.is_empty());
        assert_eq!(w.percentile(50.0), None);
    }

    #[test]
    fn starvation_audit_ignores_warmup_and_is_monotone() {
        let mut sw = ServiceWindows::new(Time::minutes(100.0), Time::minutes(50.0));
        sw.note_queue_rounds(Time::minutes(10.0), 99);
        assert_eq!(sw.summary(Time::minutes(10.0)).max_queue_rounds, 0);
        sw.note_queue_rounds(Time::minutes(60.0), 5);
        sw.note_queue_rounds(Time::minutes(70.0), 3);
        assert_eq!(sw.summary(Time::minutes(70.0)).max_queue_rounds, 5);
    }

    #[test]
    fn detector_converges_on_flat_p99_and_not_on_growing_backlog() {
        let config = SteadyConfig {
            warmup: Time::minutes(100.0),
            check_interval: Time::minutes(100.0),
            min_samples: 5,
            tolerance: 0.2,
            consecutive: 3,
            backlog_slack: 2,
        };
        // Flat ρ, flat backlog: converges after `consecutive` checks.
        let mut flat = SteadyStateDetector::new(config);
        let mut w = RollingWindow::new(Time::minutes(1_000.0));
        for i in 0..20 {
            let t = Time::minutes(100.0 * i as f64);
            w.push(t, 2.0);
            flat.observe(t, &w, 1);
        }
        let converged = flat.converged_at().expect("flat series must converge");
        assert!(converged <= Time::minutes(1_000.0));

        // Same flat ρ but a backlog ramp (an arrival storm): never steady.
        let mut storm = SteadyStateDetector::new(config);
        let mut w = RollingWindow::new(Time::minutes(1_000.0));
        for i in 0..20 {
            let t = Time::minutes(100.0 * i as f64);
            w.push(t, 2.0);
            storm.observe(t, &w, 3 * i as usize);
        }
        assert_eq!(storm.converged_at(), None);
    }

    #[test]
    fn sparse_observations_do_not_drift_the_check_grid() {
        let config = SteadyConfig {
            warmup: Time::minutes(100.0),
            check_interval: Time::minutes(100.0),
            min_samples: 1,
            tolerance: 0.2,
            consecutive: 2,
            backlog_slack: 2,
        };
        let mut d = SteadyStateDetector::new(config);
        let mut w = RollingWindow::new(Time::minutes(10_000.0));
        w.push(Time::ZERO, 2.0);
        // First observation lands mid-interval at t=250 (checks due at
        // 100, 200, 300, ...). The next check must stay on the grid at
        // t=300 — a drifting detector would push it to t=350 and miss the
        // t=320 observation below.
        d.observe(Time::minutes(250.0), &w, 1);
        assert_eq!(d.converged_at(), None, "one check cannot converge");
        d.observe(Time::minutes(320.0), &w, 1);
        assert_eq!(
            d.converged_at(),
            Some(Time::minutes(320.0)),
            "the t=320 observation is past the t=300 grid point and must \
             count as the second consecutive stable check"
        );
    }

    #[test]
    fn detector_requires_enough_samples() {
        let config = SteadyConfig {
            warmup: Time::ZERO,
            check_interval: Time::minutes(10.0),
            min_samples: 50,
            consecutive: 2,
            ..SteadyConfig::default()
        };
        let mut d = SteadyStateDetector::new(config);
        let mut w = RollingWindow::new(Time::minutes(1_000.0));
        for i in 0..30 {
            let t = Time::minutes(10.0 * i as f64);
            w.push(t, 1.0);
            d.observe(t, &w, 0);
        }
        assert_eq!(d.converged_at(), None, "window never reached min_samples");
    }
}

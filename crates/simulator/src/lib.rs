//! # themis-sim
//!
//! Event-driven GPU-cluster simulator for the Themis reproduction
//! (NSDI 2020).
//!
//! The paper evaluates scheduling policies with an event-based simulator
//! replaying an enterprise trace over a 256-GPU cluster (§8.1). This crate
//! is that simulator:
//!
//! * [`events`] — the deterministic event queue (app arrivals, lease
//!   expiries, projected job completions),
//! * [`app_runtime`] — the mutable per-app state (job progress, the app's
//!   own hyper-parameter scheduler, attained service, placement samples),
//! * [`arena`] — the dense app-id-indexed [`arena::AppArena`] the engine
//!   stores those runtimes in (and hands to every scheduler),
//! * [`scheduler`] — the [`scheduler::Scheduler`] trait every policy
//!   (Themis and the baselines) implements, plus shared placement helpers,
//! * [`engine`] — the simulation loop itself,
//! * [`metrics`] — the evaluation metrics the paper reports: finish-time
//!   fairness ρ, max fairness, Jain's index, placement score, GPU time and
//!   app completion times,
//! * [`arrivals`], [`window`], [`service`] — the open-system **service
//!   mode**: unbounded arrival processes (Poisson, diurnal, flash-crowd),
//!   rolling-window percentile metrics with steady-state detection, and
//!   the [`service::ServiceEngine`] driver that admits and retires apps
//!   continuously with an incremental (auction-skipping) round hot path.
//!
//! Each run is single-threaded and fully deterministic: identical inputs
//! (trace, cluster, scheduler, config) produce identical reports. Because
//! runs share no state, *batches* of runs shard cleanly across threads —
//! [`batch::run_batch`] is the parallel fan-out the experiment harness
//! builds its scenario-matrix sweeps on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app_runtime;
pub mod arena;
pub mod arrivals;
pub mod batch;
pub mod engine;
pub mod events;
pub mod metrics;
pub mod scheduler;
pub mod service;
pub mod window;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::app_runtime::AppRuntime;
    pub use crate::arena::AppArena;
    pub use crate::arrivals::{ArrivalProcess, ArrivalShape};
    pub use crate::batch::run_batch;
    pub use crate::engine::{Engine, SimConfig};
    pub use crate::metrics::{AppOutcome, SimReport};
    pub use crate::scheduler::{pick_gpus_packed, split_among_jobs, AllocationDecision, Scheduler};
    pub use crate::service::{
        AppSource, ReplaySource, ServiceConfig, ServiceEngine, ServiceReport, StreamSource,
    };
    pub use crate::window::{
        RollingWindow, ServiceWindows, SteadyConfig, SteadyStateDetector, WindowSummary,
    };
}

pub use prelude::*;

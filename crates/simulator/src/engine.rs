//! The event-driven simulation engine.
//!
//! The engine owns the cluster, the per-app runtimes and the event queue,
//! and drives an arbitrary [`Scheduler`] policy through the workload:
//!
//! 1. pop the next event (app arrival, lease expiry, projected job finish),
//! 2. advance every running job's training progress to the event time,
//! 3. reclaim expired leases and release GPUs of finished / killed jobs,
//! 4. let each app's hyper-parameter scheduler kill or re-prioritize jobs,
//! 5. run a scheduling round: the policy assigns free GPUs to jobs, leases
//!    are granted, checkpoint/restore penalties are applied to jobs whose
//!    placement changed, and follow-up events are enqueued.
//!
//! The engine is deterministic: identical inputs produce identical reports.

use crate::app_runtime::AppRuntime;
use crate::arena::AppArena;
use crate::events::{EventKind, EventQueue};
use crate::metrics::SimReport;
use crate::scheduler::Scheduler;
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::time::Time;
use themis_protocol::transport::FaultConfig;
use themis_workload::app::AppSpec;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Lease duration for every granted GPU (the paper settles on 20
    /// minutes, §8.2).
    pub lease_duration: Time,
    /// Checkpoint + container-restart overhead applied to a job whose GPU
    /// set changes (the paper measures ~35–60 s total, §8.3.2).
    pub checkpoint_overhead: Time,
    /// Hard cap on simulated time; apps unfinished at the cap are reported
    /// as unfinished.
    pub max_sim_time: Time,
    /// Transport fault injection for message-driven (distributed-mode)
    /// schedulers. The engine itself never consults this — it is the
    /// plumbing point between a scenario and the scheduler built for it
    /// (see `Policy::build_with` in `themis-bench`). Defaults to
    /// [`FaultConfig::reliable`].
    pub fault: FaultConfig,
    /// When set, a scheduling round that grants nothing while free GPUs
    /// and unmet demand both exist enqueues a retry event this far in the
    /// future (doubling on consecutive idle retries). Without it, a round
    /// fully lost to message faults could leave the event queue empty and
    /// strand unfinished apps. `None` (the default) preserves the classic
    /// purely event-driven behavior.
    pub retry_interval: Option<Time>,
    /// Per-round bid deadline override for the distributed protocol modes
    /// (storm scenarios shrink or stretch it to probe deadline scaling).
    /// `None` keeps each scheduler's own default (30 s). The engine itself
    /// never reads this — policy builders pass it to the scheduler they
    /// construct.
    pub bid_deadline: Option<Time>,
    /// Incremental round hot path: skip the policy call on a round where
    /// the offer set is clean (no arrival, no lease reclaim, no GPU
    /// release since the last auction) *and* no grant is possible (zero
    /// free GPUs, or no schedulable app with unmet demand), provided the
    /// scheduler opts in via
    /// [`Scheduler::supports_incremental`].
    /// Observationally pure by construction — skipped rounds still count
    /// toward `scheduling_rounds`, so reports are byte-identical with the
    /// flag on or off. Defaults to `false` (the classic batch behavior);
    /// service mode turns it on to keep heartbeat rounds cheap.
    pub incremental: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            lease_duration: Time::minutes(20.0),
            checkpoint_overhead: Time::minutes(1.0),
            max_sim_time: Time::minutes(1_000_000.0),
            fault: FaultConfig::reliable(),
            retry_interval: None,
            bid_deadline: None,
            incremental: false,
        }
    }
}

impl SimConfig {
    /// Overrides the lease duration.
    pub fn with_lease(mut self, lease: Time) -> Self {
        self.lease_duration = lease;
        self
    }

    /// Overrides the checkpoint/restart overhead.
    pub fn with_checkpoint_overhead(mut self, overhead: Time) -> Self {
        self.checkpoint_overhead = overhead;
        self
    }

    /// Overrides the simulation time cap.
    pub fn with_max_sim_time(mut self, cap: Time) -> Self {
        self.max_sim_time = cap;
        self
    }

    /// Sets the transport fault injection for distributed-mode schedulers.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Enables the no-progress retry event with the given base interval.
    pub fn with_retry_interval(mut self, interval: Time) -> Self {
        assert!(interval > Time::ZERO, "retry interval must be positive");
        self.retry_interval = Some(interval);
        self
    }

    /// Overrides the distributed protocol's per-round bid deadline.
    pub fn with_bid_deadline(mut self, deadline: Time) -> Self {
        assert!(deadline > Time::ZERO, "bid deadline must be positive");
        self.bid_deadline = Some(deadline);
        self
    }

    /// Enables (or disables) the incremental round hot path.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }
}

/// The discrete-event simulation engine, generic over the scheduling policy.
pub struct Engine<S: Scheduler> {
    cluster: Cluster,
    apps: AppArena,
    scheduler: S,
    config: SimConfig,
    now: Time,
    events: EventQueue,
    peak_contention: f64,
    scheduling_rounds: u64,
    /// The last projected-finish time pushed per job, to avoid flooding the
    /// event queue with duplicate projections every round.
    scheduled_finish: BTreeMap<(AppId, JobId), Time>,
    /// A retry event is already queued (at most one outstanding).
    retry_pending: bool,
    /// Times with a scheduler-requested wakeup already queued, so repeated
    /// `next_wakeup` answers do not flood the queue with duplicates.
    pending_wakeups: BTreeSet<Time>,
    /// Consecutive rounds that granted nothing while demand existed; drives
    /// the exponential retry backoff.
    idle_retries: u32,
    /// The offer set may have changed since the last auction actually ran:
    /// an app arrived (or was admitted mid-run), a lease was reclaimed, or
    /// a finished/killed job released GPUs. While clean, a round where no
    /// grant is possible may skip the policy call (incremental mode).
    offer_dirty: bool,
    /// Rounds in which the policy was actually invoked.
    auctions_run: u64,
    /// Rounds in which the incremental hot path skipped the policy call.
    auctions_skipped: u64,
}

impl<S: Scheduler> Engine<S> {
    /// Creates an engine from app *specs*, attaching the default
    /// hyper-parameter scheduler to each app.
    pub fn new(cluster: Cluster, trace: Vec<AppSpec>, scheduler: S, config: SimConfig) -> Self {
        let runtimes = trace
            .into_iter()
            .map(AppRuntime::with_default_hpo)
            .collect();
        Self::with_runtimes(cluster, runtimes, scheduler, config)
    }

    /// Creates an engine from pre-built app runtimes (e.g. with custom HPO
    /// schedulers attached).
    pub fn with_runtimes(
        cluster: Cluster,
        runtimes: Vec<AppRuntime>,
        scheduler: S,
        config: SimConfig,
    ) -> Self {
        let apps = AppArena::from_runtimes(runtimes);
        Engine {
            cluster,
            apps,
            scheduler,
            config,
            now: Time::ZERO,
            events: EventQueue::new(),
            peak_contention: 0.0,
            scheduling_rounds: 0,
            scheduled_finish: BTreeMap::new(),
            retry_pending: false,
            pending_wakeups: BTreeSet::new(),
            idle_retries: 0,
            offer_dirty: true,
            auctions_run: 0,
            auctions_skipped: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to the cluster (useful in tests).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Read access to the app runtimes (useful in tests).
    pub fn apps(&self) -> &AppArena {
        &self.apps
    }

    /// Number of scheduling rounds processed so far (including rounds the
    /// incremental hot path skipped the policy call on).
    pub fn scheduling_rounds(&self) -> u64 {
        self.scheduling_rounds
    }

    /// `(auctions run, auctions skipped)`: how many rounds actually invoked
    /// the policy versus how many the incremental hot path short-circuited.
    /// The two always sum to [`scheduling_rounds`](Engine::scheduling_rounds).
    pub fn auction_counts(&self) -> (u64, u64) {
        (self.auctions_run, self.auctions_skipped)
    }

    /// Runs the simulation to completion (all apps finished, the event queue
    /// drained, or the time cap reached) and returns the report.
    pub fn run(mut self) -> SimReport {
        let arrivals: Vec<(Time, AppId)> = self
            .apps
            .iter()
            .map(|rt| (rt.spec.arrival, rt.id()))
            .collect();
        for (arrival, app) in arrivals {
            self.events.push(arrival, EventKind::AppArrival(app));
        }

        while let Some(event) = self.events.pop() {
            if event.time > self.config.max_sim_time {
                self.advance_to(self.config.max_sim_time);
                break;
            }
            self.note_event(&event);
            self.advance_to(event.time);
            self.process_round();
            if self.apps.iter().all(|a| a.is_finished()) {
                break;
            }
        }

        self.into_report()
    }

    /// Event-queue bookkeeping that must happen when an event is consumed,
    /// shared between the batch loop and the service-mode stepper.
    fn note_event(&mut self, event: &crate::events::Event) {
        match event.kind {
            // A firing projection is consumed; a fresh one will be pushed if
            // the job is still running after this round.
            EventKind::JobFinish(app, job) => {
                self.scheduled_finish.remove(&(app, job));
            }
            // A new app changes the demand side of the offer.
            EventKind::AppArrival(_) => self.offer_dirty = true,
            EventKind::Retry => self.retry_pending = false,
            EventKind::Wakeup => {
                self.pending_wakeups.remove(&event.time);
            }
            EventKind::LeaseExpiry | EventKind::Tick => {}
        }
    }

    // ------------------------------------------------------------------
    // Service-mode (open-system) API. The batch `run` above fully owns the
    // engine; these entry points let `ServiceEngine` drive the same round
    // machinery under a continuous arrival stream.
    // ------------------------------------------------------------------

    /// The time of the earliest pending event, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// `true` once every app currently in the arena has finished.
    pub fn all_finished(&self) -> bool {
        self.apps.iter().all(|a| a.is_finished())
    }

    /// Admits a batch of apps sharing one arrival time into a running
    /// simulation: advances to the arrival, inserts every runtime, then
    /// processes one scheduling round per admitted app — exactly the event
    /// sequence the batch engine produces for same-time arrivals (all
    /// runtimes visible from the first round, one round per arrival event).
    pub fn admit(&mut self, runtimes: Vec<AppRuntime>) {
        let Some(first) = runtimes.first() else {
            return;
        };
        let arrival = first.spec.arrival;
        assert!(
            arrival >= self.now,
            "admitted app arrives at {arrival:?}, before current time {:?}",
            self.now
        );
        assert!(
            runtimes.iter().all(|rt| rt.spec.arrival == arrival),
            "admit() takes one same-arrival-time batch"
        );
        let rounds = runtimes.len();
        self.advance_to(arrival);
        for rt in runtimes {
            let replaced = self.apps.insert(rt);
            assert!(replaced.is_none(), "admitted app id already in the arena");
        }
        for _ in 0..rounds {
            self.offer_dirty = true;
            self.process_round();
        }
    }

    /// Pops and processes the earliest pending event if it is due at or
    /// before `horizon`. Returns `false` (without touching the clock) when
    /// the queue is empty or the next event lies beyond the horizon.
    pub fn step_due(&mut self, horizon: Time) -> bool {
        match self.events.peek_time() {
            Some(t) if t <= horizon => {}
            _ => return false,
        }
        let event = self.events.pop().expect("peeked event exists");
        self.note_event(&event);
        self.advance_to(event.time);
        self.process_round();
        true
    }

    /// Processes every pending event due at or before `horizon`. The clock
    /// is left at the last processed event (it does *not* jump to `horizon`:
    /// an event-free tail would advance training progress in an extra slice
    /// and perturb float accumulation relative to a batch run).
    pub fn run_until(&mut self, horizon: Time) {
        while self.step_due(horizon) {}
    }

    /// Schedules a heartbeat [`Tick`](EventKind::Tick) round at `at`.
    /// Service mode uses these to keep windowed metrics and steady-state
    /// checks moving through event-free stretches; with `incremental` set,
    /// a tick on a clean offer set costs no policy call.
    pub fn push_tick(&mut self, at: Time) {
        self.events.push(at, EventKind::Tick);
    }

    /// Removes every finished app from the arena and returns their outcomes
    /// in id order. An app's outcome is frozen the moment it finishes
    /// (timelines and accumulators no longer move), so retiring it early is
    /// observationally identical to keeping it until the end of the run.
    pub fn retire_finished(&mut self) -> Vec<crate::metrics::AppOutcome> {
        let done: Vec<AppId> = self
            .apps
            .iter()
            .filter(|rt| rt.finished_at.is_some())
            .map(|rt| rt.id())
            .collect();
        done.into_iter()
            .filter_map(|id| self.apps.remove(id))
            .map(|rt| crate::metrics::AppOutcome::from_runtime(&rt))
            .collect()
    }

    /// Final bookkeeping and report extraction over the apps still in the
    /// arena. (Service mode merges these with the outcomes it collected at
    /// retirement time.)
    pub fn into_report(mut self) -> SimReport {
        // Final bookkeeping so completion metrics reflect the end state.
        for rt in self.apps.iter_mut() {
            rt.try_finish(self.now);
        }
        let control = self.scheduler.control_stats();
        SimReport::from_apps(
            self.scheduler.name(),
            &self.apps,
            self.now,
            self.peak_contention,
            self.scheduling_rounds,
        )
        .with_control(control)
    }

    /// Advances training progress of every running job to time `t`.
    fn advance_to(&mut self, t: Time) {
        let dt = t - self.now;
        if dt > Time::ZERO {
            for rt in self.apps.iter_mut() {
                if rt.has_arrived(t) && !rt.is_finished() {
                    // Only advance from the later of `now` and the app's
                    // arrival (an app arriving mid-interval has nothing to
                    // advance before its arrival anyway — it holds no GPUs).
                    let from = self.now.max(rt.spec.arrival);
                    let span = t - from;
                    if span > Time::ZERO {
                        rt.advance(&self.cluster, from, span);
                    }
                }
            }
        }
        self.now = t;
    }

    /// One full post-event processing + scheduling round.
    fn process_round(&mut self) {
        let now = self.now;
        // Reclaims and releases below only ever *free* GPUs, so a changed
        // free count after steps 1–2 is exactly "the offer set changed".
        let free_before = self.cluster.free_gpu_count();

        // 1. Reclaim expired leases, remembering what each job held so that
        //    an immediate re-grant of the same GPUs (a lease renewal) does
        //    not pay the checkpoint penalty.
        let mut held_before: BTreeMap<(AppId, JobId), BTreeSet<themis_cluster::ids::GpuId>> =
            BTreeMap::new();
        for rt in self.apps.iter() {
            if !rt.has_arrived(now) {
                continue;
            }
            let app_id = rt.id();
            for (job, alloc) in self.cluster.jobs_of_app(app_id) {
                if !alloc.is_empty() {
                    held_before.insert((app_id, job), alloc.iter().collect());
                }
            }
        }
        self.cluster.reclaim_expired_leases(now);

        // 2. Release GPUs of finished jobs, run each app's HPO scheduler,
        //    release GPUs of killed jobs, and detect app completion.
        let app_ids: Vec<AppId> = self.apps.ids().collect();
        for app_id in app_ids {
            let arrived = self.apps[app_id].has_arrived(now);
            if !arrived {
                continue;
            }
            // Finished (converged) jobs give up their GPUs.
            let finished_jobs: Vec<JobId> = {
                let rt = &self.apps[app_id];
                rt.spec
                    .jobs
                    .iter()
                    .filter(|j| rt.progress[&j.id].is_finished(j))
                    .map(|j| j.id)
                    .collect()
            };
            for job in finished_jobs {
                self.cluster.release_job(app_id, job);
            }
            // HPO decisions (kills, priority changes).
            if !self.apps[app_id].is_finished() {
                let killed = self.apps.get_mut(app_id).expect("app exists").run_hpo(now);
                for job in killed {
                    self.cluster.release_job(app_id, job);
                }
            }
            let rt = self.apps.get_mut(app_id).expect("app exists");
            if rt.try_finish(now) {
                // Defensive: an app that finished must hold no GPUs.
                self.cluster.release_app(app_id);
                rt.record_gpu_count(now, 0);
            }
        }

        if self.cluster.free_gpu_count() != free_before {
            self.offer_dirty = true;
        }

        // 3. Track contention.
        let demand: usize = self
            .apps
            .iter()
            .filter(|a| a.is_schedulable(now))
            .map(|a| a.total_demand())
            .sum();
        let contention = demand as f64 / self.cluster.total_gpus().max(1) as f64;
        if contention > self.peak_contention {
            self.peak_contention = contention;
        }

        // 4. Run the policy and apply its decisions. The incremental hot
        //    path skips the call on a clean offer set when no grant is
        //    possible anyway — every opted-in policy provably early-returns
        //    with no decisions, no RNG draws and no state changes in exactly
        //    that state, so the skip is observationally pure. The round
        //    still counts toward `scheduling_rounds`, keeping reports
        //    byte-identical with the flag on or off.
        let skip_auction = self.config.incremental
            && !self.offer_dirty
            && self.scheduler.supports_incremental()
            && (self.cluster.free_gpu_count() == 0
                || !self
                    .apps
                    .iter()
                    .any(|a| a.is_schedulable(now) && a.unmet_demand(&self.cluster) > 0));
        let decisions = if skip_auction {
            self.auctions_skipped += 1;
            Vec::new()
        } else {
            self.auctions_run += 1;
            self.offer_dirty = false;
            self.scheduler.schedule(now, &self.cluster, &self.apps)
        };
        self.scheduling_rounds += 1;
        let lease_expiry = now + self.config.lease_duration;
        let mut changed_jobs: BTreeSet<(AppId, JobId)> = BTreeSet::new();
        let mut new_leases = false;
        for decision in decisions {
            let Some(rt) = self.apps.get(decision.app) else {
                continue;
            };
            if !rt.is_schedulable(now) {
                continue;
            }
            let Some(job_spec) = rt.job_spec(decision.job) else {
                continue;
            };
            if rt.progress[&decision.job].is_finished(job_spec) {
                continue;
            }
            for gpu in decision.gpus {
                if self
                    .cluster
                    .allocate(gpu, decision.app, decision.job, now, lease_expiry)
                    .is_ok()
                {
                    new_leases = true;
                    changed_jobs.insert((decision.app, decision.job));
                }
            }
        }

        // Renewing exactly the GPUs a job already held is not a placement
        // change; anything else pays the checkpoint/restart overhead
        // (provided the job had progressed at all).
        for (app_id, job_id) in &changed_jobs {
            let new_set: BTreeSet<_> = self.cluster.gpus_of_job(*app_id, *job_id).iter().collect();
            let old_set = held_before.get(&(*app_id, *job_id));
            let is_renewal = old_set.map(|s| *s == new_set).unwrap_or(false);
            let rt = self.apps.get_mut(*app_id).expect("app exists");
            let had_progress = rt.progress[job_id].iterations_done > 0.0;
            if !is_renewal && had_progress && self.config.checkpoint_overhead > Time::ZERO {
                rt.restart_until
                    .insert(*job_id, now + self.config.checkpoint_overhead);
            }
        }

        // 5. Record timelines and enqueue follow-up events.
        for rt in self.apps.iter_mut() {
            if rt.has_arrived(now) {
                let held = self.cluster.gpus_held_by(rt.id());
                rt.record_gpu_count(now, held);
            }
        }
        if new_leases {
            self.events.push(lease_expiry, EventKind::LeaseExpiry);
            self.idle_retries = 0;
        } else if let Some(base) = self.config.retry_interval {
            // A round that granted nothing while free GPUs and unmet demand
            // both exist is (for a message-driven scheduler) a round lost to
            // transport faults: re-attempt it after a backoff instead of
            // letting the event queue drain with apps stranded.
            let starved = self.cluster.free_gpu_count() > 0
                && self
                    .apps
                    .iter()
                    .any(|a| a.is_schedulable(now) && a.unmet_demand(&self.cluster) > 0);
            if starved && !self.retry_pending {
                let backoff = base * f64::from(1u32 << self.idle_retries.min(16));
                self.events.push(now + backoff, EventKind::Retry);
                self.retry_pending = true;
                self.idle_retries = self.idle_retries.saturating_add(1);
            }
        }
        // Projected completion events for every job that currently holds
        // GPUs. Projections are deduplicated: a new event is only pushed
        // when the projection differs from the last one we enqueued, so the
        // queue stays linear in the number of real state changes.
        for rt in self.apps.iter() {
            if !rt.is_schedulable(now) {
                continue;
            }
            let app_id = rt.id();
            let by_job = self.cluster.jobs_of_app(app_id);
            for job_spec in &rt.spec.jobs {
                let progress = &rt.progress[&job_spec.id];
                if progress.is_finished(job_spec) {
                    self.scheduled_finish.remove(&(app_id, job_spec.id));
                    continue;
                }
                let Some(alloc) = by_job.get(&job_spec.id) else {
                    self.scheduled_finish.remove(&(app_id, job_spec.id));
                    continue;
                };
                if alloc.is_empty() {
                    self.scheduled_finish.remove(&(app_id, job_spec.id));
                    continue;
                }
                let locality = themis_cluster::placement::spread(alloc, self.cluster.spec());
                // Projections must stay symmetric with AppRuntime::advance,
                // so they use the same generation-weighted effective rate.
                let usable_speed = self
                    .cluster
                    .spec()
                    .capped_speed(alloc, job_spec.max_parallelism);
                let mut eta = progress.time_to_complete_weighted(
                    job_spec,
                    alloc.len(),
                    usable_speed,
                    locality,
                );
                if let Some(restart) = rt.restart_until.get(&job_spec.id) {
                    if *restart > now {
                        eta += *restart - now;
                    }
                }
                if !eta.is_finite() {
                    continue;
                }
                let finish = now + eta;
                let key = (app_id, job_spec.id);
                let already = self.scheduled_finish.get(&key).copied();
                let needs_push = match already {
                    // Re-push when the projection moved by more than a
                    // hundredth of a minute (avoids float-noise churn).
                    Some(prev) => (prev - finish).as_minutes().abs() > 0.01,
                    None => true,
                };
                if needs_push {
                    self.scheduled_finish.insert(key, finish);
                    self.events.push(finish, EventKind::JobFinish(key.0, key.1));
                }
            }
        }

        // 6. An actor-based scheduler may have a message delivery or a
        //    protocol timer due at a time no workload event lands on; queue
        //    a wakeup so the actor runtime is driven there (deduplicated
        //    per timestamp).
        if let Some(wake) = self.scheduler.next_wakeup() {
            if wake > now && self.pending_wakeups.insert(wake) {
                self.events.push(wake, EventKind::Wakeup);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{pick_gpus_packed, split_among_jobs, AllocationDecision};
    use themis_cluster::ids::JobId;
    use themis_cluster::topology::ClusterSpec;
    use themis_workload::job::JobSpec;
    use themis_workload::models::ModelArch;
    use themis_workload::trace::{TraceConfig, TraceGenerator};

    /// A simple work-conserving FIFO policy used to exercise the engine: it
    /// walks schedulable apps in arrival order and packs free GPUs onto
    /// their jobs through a borrowed `ClusterView` (no per-round clone).
    struct FifoScheduler;

    impl Scheduler for FifoScheduler {
        fn name(&self) -> &'static str {
            "fifo"
        }

        fn schedule(
            &mut self,
            now: Time,
            cluster: &Cluster,
            apps: &AppArena,
        ) -> Vec<AllocationDecision> {
            use themis_cluster::view::ClusterState;
            let mut shadow = cluster.view();
            let mut out = Vec::new();
            let mut order: Vec<&AppRuntime> =
                apps.iter().filter(|a| a.is_schedulable(now)).collect();
            order.sort_by(|a, b| {
                a.spec
                    .arrival
                    .cmp(&b.spec.arrival)
                    .then(a.id().cmp(&b.id()))
            });
            for app in order {
                let want = app.unmet_demand(&shadow);
                if want == 0 {
                    continue;
                }
                let budget = want.min(shadow.free_gpu_count());
                for (job, count) in split_among_jobs(app, &shadow, budget) {
                    let prefer = shadow.gpus_of_job(app.id(), job).machines(shadow.spec());
                    let gpus = pick_gpus_packed(&shadow, count, &prefer);
                    for gpu in &gpus {
                        shadow.allocate(*gpu, app.id(), job).expect("gpu was free");
                    }
                    if !gpus.is_empty() {
                        out.push(AllocationDecision {
                            app: app.id(),
                            job,
                            gpus,
                        });
                    }
                }
            }
            out
        }
    }

    fn single_job_app(id: u32, arrival: f64, iterations: f64, gpus: usize) -> AppSpec {
        let job = JobSpec::new(
            JobId(0),
            ModelArch::ResNet50,
            iterations,
            Time::minutes(0.1),
            gpus,
        );
        AppSpec::single_job(AppId(id), Time::minutes(arrival), job)
    }

    #[test]
    fn single_app_runs_to_completion() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        // 400 iterations * 0.1 min / 4 GPUs = 10 minutes of ideal time.
        let trace = vec![single_job_app(0, 0.0, 400.0, 4)];
        let report = Engine::new(cluster, trace, FifoScheduler, SimConfig::default()).run();
        assert_eq!(report.finished_apps(), 1);
        let outcome = &report.apps[0];
        let ct = outcome.completion_time.unwrap().as_minutes();
        assert!(
            (ct - 10.0).abs() < 0.5,
            "completion time {ct} should be ~10min"
        );
        // Alone on the cluster, rho should be ~1.
        assert!((outcome.rho.unwrap() - 1.0).abs() < 0.1);
        // 4 GPUs on one machine (PCIe) scores 0.9 with the default scorer.
        assert!(outcome.placement_score >= 0.9 - 1e-9);
    }

    #[test]
    fn two_apps_contend_for_gpus() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace = vec![
            single_job_app(0, 0.0, 400.0, 4),
            single_job_app(1, 0.0, 400.0, 4),
        ];
        let report = Engine::new(
            cluster,
            trace,
            FifoScheduler,
            SimConfig::default().with_checkpoint_overhead(Time::ZERO),
        )
        .run();
        assert_eq!(report.finished_apps(), 2);
        // With FIFO, app 0 runs first (≈10 min), app 1 waits for the lease
        // to expire before getting the GPUs, so it finishes much later.
        let rho1 = report.apps[1].rho.unwrap();
        assert!(rho1 > 1.5, "second app must be delayed, rho = {rho1}");
        assert!(report.peak_contention >= 2.0);
        assert!(report.total_gpu_time.as_minutes() > 0.0);
    }

    #[test]
    fn late_arrivals_are_not_scheduled_early() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace = vec![single_job_app(0, 30.0, 100.0, 2)];
        let report = Engine::new(cluster, trace, FifoScheduler, SimConfig::default()).run();
        let outcome = &report.apps[0];
        assert!(outcome.finished_at.unwrap() >= Time::minutes(30.0));
        // Completion time counts from arrival, not from t=0.
        assert!(outcome.completion_time.unwrap().as_minutes() < 20.0);
    }

    #[test]
    fn max_sim_time_caps_the_run() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 1));
        // One enormous job that cannot finish within the cap.
        let trace = vec![single_job_app(0, 0.0, 1e9, 1)];
        let report = Engine::new(
            cluster,
            trace,
            FifoScheduler,
            SimConfig::default().with_max_sim_time(Time::minutes(100.0)),
        )
        .run();
        assert_eq!(report.finished_apps(), 0);
        assert_eq!(report.unfinished_apps(), 1);
        assert!(report.end_time <= Time::minutes(100.0) + Time::minutes(1e-6));
    }

    #[test]
    fn multi_job_apps_finish_via_hyperband() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                JobSpec::new(
                    JobId(i),
                    ModelArch::ResNet50,
                    400.0 + 100.0 * i as f64,
                    Time::minutes(0.1),
                    2,
                )
            })
            .collect();
        let trace = vec![AppSpec::new(AppId(0), Time::ZERO, jobs)];
        let report = Engine::new(cluster, trace, FifoScheduler, SimConfig::default()).run();
        assert_eq!(report.finished_apps(), 1);
        // The app must finish no later than its longest job would take alone.
        let ct = report.apps[0].completion_time.unwrap().as_minutes();
        assert!(ct < 700.0 * 0.1 / 2.0 * 4.0, "completion time {ct}");
    }

    /// A scheduler that never grants anything — stands in for a
    /// message-driven round in which every message was dropped.
    struct NullScheduler;

    impl Scheduler for NullScheduler {
        fn name(&self) -> &'static str {
            "null"
        }

        fn schedule(
            &mut self,
            _now: Time,
            _cluster: &Cluster,
            _apps: &AppArena,
        ) -> Vec<AllocationDecision> {
            Vec::new()
        }
    }

    #[test]
    fn retry_interval_keeps_rescheduling_after_lost_rounds() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace = vec![single_job_app(0, 0.0, 100.0, 2)];
        // Without retries: the arrival event is the only event, the null
        // scheduler grants nothing, and the queue drains after one round.
        let no_retry = Engine::new(
            cluster.clone(),
            trace.clone(),
            NullScheduler,
            SimConfig::default().with_max_sim_time(Time::minutes(10_000.0)),
        )
        .run();
        assert_eq!(no_retry.scheduling_rounds, 1);
        // With retries: rounds keep firing on the backoff schedule until
        // the time cap, and the run still terminates.
        let with_retry = Engine::new(
            cluster,
            trace,
            NullScheduler,
            SimConfig::default()
                .with_max_sim_time(Time::minutes(10_000.0))
                .with_retry_interval(Time::minutes(1.0)),
        )
        .run();
        assert!(
            with_retry.scheduling_rounds > 5,
            "expected several retry rounds, got {}",
            with_retry.scheduling_rounds
        );
        assert_eq!(with_retry.unfinished_apps(), 1);
        assert!(with_retry.end_time <= Time::minutes(10_000.0) + Time::minutes(1e-6));
    }

    /// A scheduler that grants nothing but asks to be woken one minute
    /// after every round until a horizon — stands in for an actor runtime
    /// with pending message deliveries.
    struct WakeupProbe {
        last: Time,
        until: Time,
    }

    impl Scheduler for WakeupProbe {
        fn name(&self) -> &'static str {
            "wakeup-probe"
        }

        fn schedule(
            &mut self,
            now: Time,
            _cluster: &Cluster,
            _apps: &AppArena,
        ) -> Vec<AllocationDecision> {
            self.last = now;
            Vec::new()
        }

        fn next_wakeup(&self) -> Option<Time> {
            (self.last < self.until).then(|| self.last + Time::minutes(1.0))
        }
    }

    #[test]
    fn scheduler_wakeups_drive_extra_rounds() {
        let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
        let trace = vec![single_job_app(0, 0.0, 1e9, 1)];
        let report = Engine::new(
            cluster,
            trace,
            WakeupProbe {
                last: Time::minutes(-1.0),
                until: Time::minutes(10.0),
            },
            SimConfig::default().with_max_sim_time(Time::minutes(10_000.0)),
        )
        .run();
        // The arrival round at t=0 plus one wakeup-driven round per minute
        // through t=10; after that `next_wakeup` returns `None` and the
        // queue drains instead of looping forever.
        assert_eq!(report.scheduling_rounds, 11);
        assert_eq!(report.end_time, Time::minutes(10.0));
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let cluster = Cluster::new(ClusterSpec::heterogeneous_256());
            let trace = TraceGenerator::new(TraceConfig::default().with_num_apps(10).with_seed(3))
                .generate();
            Engine::new(cluster, trace, FifoScheduler, SimConfig::default()).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn small_trace_completes_on_large_cluster() {
        let cluster = Cluster::new(ClusterSpec::heterogeneous_256());
        let trace =
            TraceGenerator::new(TraceConfig::default().with_num_apps(8).with_seed(11)).generate();
        let report = Engine::new(
            cluster,
            trace,
            FifoScheduler,
            SimConfig::default().with_max_sim_time(Time::minutes(200_000.0)),
        )
        .run();
        assert_eq!(report.unfinished_apps(), 0, "all apps should finish");
        // On an over-provisioned cluster apps can *beat* their ideal time
        // (T_ID conservatively ignores early termination by the HPO
        // framework), so ρ < 1 is legitimate here (observed ≈ 0.61). The
        // upper bound still catches starvation regressions: a delayed app
        // on an idle cluster pushes max ρ well past 2.
        let max_fairness = report.max_fairness().unwrap();
        assert!(
            max_fairness > 0.0 && max_fairness < 2.0,
            "unexpected max fairness {max_fairness} on an over-provisioned cluster"
        );
        assert!(report.scheduling_rounds > 0);
    }
}

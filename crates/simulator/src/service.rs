//! The open-system service mode: the scheduler as a long-running server.
//!
//! Batch mode materializes a finite trace, pushes every arrival into the
//! event queue up front, and simulates to completion. [`ServiceEngine`]
//! instead drives the same round machinery under a *continuous* arrival
//! stream: apps are admitted as an [`AppSource`] produces them, retired
//! (and removed from the arena) the moment they finish, and measured with
//! rolling-window percentiles plus a steady-state detector instead of
//! end-of-trace aggregates.
//!
//! ## Closed-system equivalence
//!
//! Replaying a fully-materialized arrival sequence through service mode
//! (no heartbeat ticks, infinite horizon) produces a report byte-identical
//! to the batch engine's. Two details make that exact rather than
//! approximate:
//!
//! * **Arrivals are admitted outside the event queue.** In batch mode the
//!   arrival events are pushed first and therefore win every same-time
//!   tie; the service loop reproduces that by comparing the next pending
//!   arrival against the next queued event and admitting on `<=`.
//! * **The clock only ever moves to event times.** Training progress
//!   accumulates floating-point work per `advance_to` slice, and
//!   `(a + b) · r ≠ a · r + b · r` in floats — so the service loop never
//!   advances to a time the batch run would not have advanced to (no jump
//!   to the horizon, no tick injection during equivalence runs).
//!
//! ## Incremental rounds
//!
//! Service cells run with [`SimConfig::incremental`] set: heartbeat ticks
//! on a clean offer set skip the policy call entirely (see
//! `Engine::process_round`), which is what makes a mostly-idle
//! long-running server cheap between bursts.

use crate::app_runtime::AppRuntime;
use crate::arrivals::ArrivalProcess;
use crate::engine::{Engine, SimConfig};
use crate::metrics::{AppOutcome, SimReport};
use crate::scheduler::Scheduler;
use crate::window::{ServiceWindows, SteadyConfig, SteadyStateDetector, WindowSummary};
use std::collections::BTreeMap;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::AppId;
use themis_cluster::time::Time;
use themis_workload::app::AppSpec;
use themis_workload::stream::TraceStream;

/// A source of app specs in non-decreasing arrival order. `None` ends the
/// stream (the service run keeps draining queued events afterwards).
pub trait AppSource {
    /// The next app, or `None` when the stream is exhausted.
    fn next_app(&mut self) -> Option<AppSpec>;
}

/// Replays a fixed, fully-materialized trace — the closed-system
/// equivalence harness.
#[derive(Debug)]
pub struct ReplaySource {
    specs: std::vec::IntoIter<AppSpec>,
}

impl ReplaySource {
    /// Creates a source over a trace sorted by arrival time (the order a
    /// [`TraceGenerator`](themis_workload::trace::TraceGenerator) emits).
    pub fn new(trace: Vec<AppSpec>) -> Self {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "replayed trace must be sorted by arrival"
        );
        ReplaySource {
            specs: trace.into_iter(),
        }
    }
}

impl AppSource for ReplaySource {
    fn next_app(&mut self) -> Option<AppSpec> {
        self.specs.next()
    }
}

/// The live open-system source: arrival times from an [`ArrivalProcess`],
/// app attributes from a [`TraceStream`], bounded by an admission horizon.
#[derive(Debug)]
pub struct StreamSource {
    arrivals: ArrivalProcess,
    stream: TraceStream,
    admit_until: Time,
    dry: bool,
}

impl StreamSource {
    /// Creates a source admitting apps with arrival times up to (and
    /// including) `admit_until`.
    pub fn new(arrivals: ArrivalProcess, stream: TraceStream, admit_until: Time) -> Self {
        StreamSource {
            arrivals,
            stream,
            admit_until,
            dry: false,
        }
    }
}

impl AppSource for StreamSource {
    fn next_app(&mut self) -> Option<AppSpec> {
        if self.dry {
            return None;
        }
        let arrival = self.arrivals.next_arrival();
        if arrival > self.admit_until {
            self.dry = true;
            return None;
        }
        Some(self.stream.next_app_at(arrival))
    }
}

/// Configuration of a service run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Events after this simulated time are left unprocessed; the run ends.
    pub horizon: Time,
    /// Heartbeat round interval. Ticks fill event-free stretches so
    /// windowed metrics and the steady-state check keep moving; `None`
    /// (required for closed-system equivalence runs) schedules none.
    pub tick_interval: Option<Time>,
    /// Width of the rolling metric windows.
    pub window: Time,
    /// The steady-state convergence test.
    pub steady: SteadyConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            horizon: Time::minutes(50_000.0),
            tick_interval: Some(Time::minutes(10.0)),
            window: Time::minutes(5_000.0),
            steady: SteadyConfig::default(),
        }
    }
}

/// The report of a service run: the batch-shaped [`SimReport`] over every
/// app the run touched (retired + still live), plus the windowed service
/// metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Outcome-level report, byte-identical to a batch run over the same
    /// arrival history (see the module docs).
    pub sim: SimReport,
    /// Final snapshot of the rolling-window metrics.
    pub windows: WindowSummary,
    /// Apps admitted over the run.
    pub admitted: u64,
    /// Apps retired (finished and removed from the arena) over the run.
    pub retired: u64,
    /// When the steady-state detector declared convergence, if it did.
    pub steady_state_at: Option<Time>,
    /// Rounds that invoked the scheduling policy.
    pub auctions_run: u64,
    /// Rounds the incremental hot path skipped the policy call on.
    pub auctions_skipped: u64,
}

/// Per-app observation state for the windowed metrics.
#[derive(Debug, Default, Clone, Copy)]
struct AppTrack {
    granted_once: bool,
    prev_held: usize,
    shrink_at: Option<Time>,
    zero_rounds: u64,
}

/// The long-running open-system driver around [`Engine`].
pub struct ServiceEngine<S: Scheduler, A: AppSource> {
    engine: Engine<S>,
    source: A,
    config: ServiceConfig,
    windows: ServiceWindows,
    detector: SteadyStateDetector,
    track: BTreeMap<AppId, AppTrack>,
    retired_outcomes: Vec<AppOutcome>,
    admitted: u64,
    pending: Option<AppSpec>,
    source_dry: bool,
    next_tick: Time,
}

impl<S: Scheduler, A: AppSource> ServiceEngine<S, A> {
    /// Creates a service engine over an empty arena.
    pub fn new(
        cluster: Cluster,
        scheduler: S,
        sim: SimConfig,
        config: ServiceConfig,
        source: A,
    ) -> Self {
        let engine = Engine::with_runtimes(cluster, Vec::new(), scheduler, sim);
        let first_tick = config.tick_interval.unwrap_or(Time::INFINITY);
        ServiceEngine {
            engine,
            source,
            windows: ServiceWindows::new(config.window, config.steady.warmup),
            detector: SteadyStateDetector::new(config.steady),
            config,
            track: BTreeMap::new(),
            retired_outcomes: Vec::new(),
            admitted: 0,
            pending: None,
            source_dry: false,
            next_tick: first_tick,
        }
    }

    /// Runs the service loop to its horizon (or until the arrival stream is
    /// exhausted and the event queue drained) and returns the report.
    pub fn run(mut self) -> ServiceReport {
        loop {
            self.refill_pending();
            if self.source_dry && self.pending.is_none() && self.engine.all_finished() {
                // Mirrors the batch engine's early exit: every admitted app
                // finished and no more will come — stale queued events
                // would not change anything.
                break;
            }
            self.maybe_schedule_tick();
            let next_arrival = self.pending.as_ref().map(|s| s.arrival);
            let next_event = self.engine.next_event_time();
            // Arrivals win ties: batch mode pushes every arrival event
            // before any runtime event, so its arrivals carry the lowest
            // sequence numbers at equal times.
            let admit_now = match (next_arrival, next_event) {
                (Some(a), Some(e)) => a <= e,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if admit_now {
                self.admit_next_batch();
            } else if !self.engine.step_due(self.config.horizon) {
                break;
            }
            self.observe();
        }
        self.finish()
    }

    /// Pulls the next spec from the source if none is staged. Arrivals
    /// beyond the horizon end the stream: they could only be admitted at a
    /// time the run will never reach.
    fn refill_pending(&mut self) {
        if self.pending.is_some() || self.source_dry {
            return;
        }
        match self.source.next_app() {
            Some(spec) if spec.arrival <= self.config.horizon => self.pending = Some(spec),
            Some(_) | None => self.source_dry = true,
        }
    }

    /// Admits the staged arrival plus every immediately following same-time
    /// arrival as one batch (the batch engine sees all same-time arrivals
    /// in the arena from the first of their rounds).
    fn admit_next_batch(&mut self) {
        let first = self.pending.take().expect("caller checked pending");
        let arrival = first.arrival;
        let mut batch = vec![first];
        loop {
            self.refill_pending();
            match &self.pending {
                Some(spec) if spec.arrival == arrival => {
                    batch.push(self.pending.take().expect("just matched"));
                }
                _ => break,
            }
        }
        self.admitted += batch.len() as u64;
        for spec in &batch {
            self.track.insert(spec.id, AppTrack::default());
        }
        let runtimes: Vec<AppRuntime> = batch
            .into_iter()
            .map(AppRuntime::with_default_hpo)
            .collect();
        self.engine.admit(runtimes);
    }

    /// Keeps exactly one heartbeat tick staged: pushed only when it would
    /// be the next thing to happen, and skipped over stretches where real
    /// events are already driving rounds.
    fn maybe_schedule_tick(&mut self) {
        let Some(interval) = self.config.tick_interval else {
            return;
        };
        // Ticks that real events have already driven past are not owed.
        while self.next_tick <= self.engine.now() {
            self.next_tick += interval;
        }
        if self.next_tick > self.config.horizon {
            return;
        }
        let due_before_others = self
            .engine
            .next_event_time()
            .is_none_or(|e| self.next_tick < e)
            && self
                .pending
                .as_ref()
                .is_none_or(|s| self.next_tick < s.arrival);
        if due_before_others {
            self.engine.push_tick(self.next_tick);
            self.next_tick += interval;
        }
    }

    /// Post-round observation: retire finished apps into the report,
    /// update per-app grant/queueing tracking, feed the windows and the
    /// steady-state detector.
    fn observe(&mut self) {
        let now = self.engine.now();
        for outcome in self.engine.retire_finished() {
            self.track.remove(&outcome.app);
            if let Some(rho) = outcome.rho {
                self.windows.record_rho(now, rho);
            }
            self.retired_outcomes.push(outcome);
        }
        let mut backlog = 0usize;
        for rt in self.engine.apps().iter() {
            if !rt.is_schedulable(now) {
                continue;
            }
            let id = rt.id();
            let held = self.engine.cluster().gpus_held_by(id);
            let track = self.track.entry(id).or_default();
            if held > 0 && !track.granted_once {
                track.granted_once = true;
                self.windows
                    .record_queueing(now, (now - rt.spec.arrival).as_minutes());
            }
            if held < track.prev_held && track.shrink_at.is_none() {
                track.shrink_at = Some(now);
            } else if held > track.prev_held {
                if let Some(shrunk) = track.shrink_at.take() {
                    self.windows
                        .record_renewal(now, (now - shrunk).as_minutes());
                }
            }
            if held == 0 {
                backlog += 1;
                track.zero_rounds += 1;
                let rounds = track.zero_rounds;
                self.windows.note_queue_rounds(now, rounds);
            } else {
                track.zero_rounds = 0;
            }
            track.prev_held = held;
        }
        self.detector
            .observe(now, self.windows.rho_window(), backlog);
    }

    fn finish(mut self) -> ServiceReport {
        let now = self.engine.now();
        let windows = self.windows.summary(now);
        let (auctions_run, auctions_skipped) = self.engine.auction_counts();
        let retired = self.retired_outcomes.len() as u64;
        let sim = self
            .engine
            .into_report()
            .with_merged_outcomes(self.retired_outcomes);
        ServiceReport {
            sim,
            windows,
            admitted: self.admitted,
            retired,
            steady_state_at: self.detector.converged_at(),
            auctions_run,
            auctions_skipped,
        }
    }
}

//! Random samplers used by the trace generator.
//!
//! The allowed dependency set does not include `rand_distr`, so the few
//! distributions the trace needs (exponential inter-arrival times for a
//! Poisson arrival process, log-normal task durations for a long-tailed
//! duration distribution, and discrete empirical distributions) are
//! implemented here from `rand` primitives.

use rand::Rng;

/// Samples an exponentially-distributed value with the given mean
/// (inverse-CDF method). Used for Poisson-process inter-arrival times
/// (the paper models app arrivals as Poisson with a mean inter-arrival time
/// of 20 minutes, §8.1).
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    // u in (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a log-normal variate parameterized by the *median* and a shape
/// parameter `sigma` (the std-dev of the underlying normal). The median
/// parameterization makes it easy to match the paper's reported medians
/// (e.g. 59-minute median task duration with a long tail).
pub fn sample_lognormal_median<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mu = median.ln();
    (mu + sigma * sample_standard_normal(rng)).exp()
}

/// A discrete distribution over arbitrary items with explicit weights.
#[derive(Debug, Clone)]
pub struct Discrete<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Discrete<T> {
    /// Builds a discrete distribution from `(item, weight)` pairs.
    ///
    /// # Panics
    /// Panics if no pair has a positive weight.
    pub fn new(pairs: impl IntoIterator<Item = (T, f64)>) -> Self {
        let mut items = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for (item, weight) in pairs {
            assert!(weight >= 0.0, "weights must be non-negative");
            if weight > 0.0 {
                total += weight;
                items.push(item);
                cumulative.push(total);
            }
        }
        assert!(total > 0.0, "at least one weight must be positive");
        Discrete { items, cumulative }
    }

    /// Samples one item according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x: f64 = rng.gen::<f64>() * total;
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        self.items[idx.min(self.items.len() - 1)].clone()
    }

    /// Number of distinct items with positive weight.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the distribution has no items (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Computes the empirical quantile `q` (in `[0,1]`) of a data set.
/// Used by trace statistics and tests to check medians / percentiles.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 20.0;
        let sum: f64 = (0..n).map(|_| sample_exponential(&mut rng, mean)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - mean).abs() < 1.0,
            "empirical mean {empirical} too far from {mean}"
        );
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_lognormal_median(&mut rng, 59.0, 1.0))
            .collect();
        let median = quantile(&samples, 0.5);
        assert!(
            (median - 59.0).abs() < 5.0,
            "empirical median {median} too far from 59"
        );
        // Long tail: the 95th percentile is far above the median.
        assert!(quantile(&samples, 0.95) > 2.0 * median);
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dist = Discrete::new([("a", 0.75), ("b", 0.25), ("c", 0.0)]);
        assert_eq!(dist.len(), 2);
        let n = 10_000;
        let a_count = (0..n).filter(|_| dist.sample(&mut rng) == "a").count();
        let frac = a_count as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "fraction of 'a' was {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn discrete_requires_positive_weight() {
        let _ = Discrete::new([("a", 0.0)]);
    }

    #[test]
    fn quantile_basics() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                sample_exponential(&mut a, 10.0),
                sample_exponential(&mut b, 10.0)
            );
        }
    }
}

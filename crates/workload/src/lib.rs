//! # themis-workload
//!
//! ML workload substrate for the Themis scheduler reproduction (NSDI 2020).
//!
//! The paper evaluates Themis on a workload replayed from a production trace
//! of hyper-parameter exploration apps. That trace is proprietary, so this
//! crate provides:
//!
//! * a **model zoo** ([`models`]) of the architectures the paper profiles
//!   (VGG16/19, AlexNet, Inception-v3, ResNet50) with per-model placement
//!   sensitivity profiles calibrated against Figure 2,
//! * the analytic **placement sensitivity** model `S` used by the paper's
//!   Agent: iteration time scales as `serial_time / (G · S(placement))`
//!   ([`sensitivity`]),
//! * **loss-curve** models that stand in for real training convergence so
//!   that hyper-parameter tuning frameworks can classify and kill jobs
//!   ([`loss`]),
//! * the **job** and **app** abstractions (a job = one hyper-parameter
//!   configuration trained with synchronous SGD; an app = a set of related
//!   jobs owned by one user) ([`job`], [`app`]),
//! * a seeded, deterministic **trace generator** reproducing every
//!   statistic the paper reports about its enterprise trace ([`trace`]),
//!   plus the underlying samplers ([`distributions`]) and an open-ended
//!   streaming wrapper for the simulator's service mode ([`stream`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod distributions;
pub mod job;
pub mod loss;
pub mod models;
pub mod sensitivity;
pub mod stream;
pub mod trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::app::AppSpec;
    pub use crate::job::{JobProgress, JobSpec};
    pub use crate::loss::LossCurve;
    pub use crate::models::ModelArch;
    pub use crate::sensitivity::PlacementSensitivity;
    pub use crate::stream::TraceStream;
    pub use crate::trace::{TraceConfig, TraceGenerator};
}

pub use prelude::*;

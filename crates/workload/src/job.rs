//! Jobs: a single hyper-parameter configuration trained with synchronous SGD.
//!
//! A job's constituent work is performed by parallel tasks that each process
//! a subset of the minibatch and synchronize model updates every iteration
//! (§2.1). For scheduling purposes the paper reduces a job to:
//!
//! * its **total work** `W` (GPU-hours of serial computation),
//! * its **work left** `W'`,
//! * its **max parallelism** (the upper limit on tasks / GPUs it can use),
//! * its **placement sensitivity** `S`,
//!
//! and models the running time with `G` GPUs as
//! `time = serial_time / (G · S(placement))`. [`JobSpec`] holds the static
//! description and [`JobProgress`] the mutable training state.

use crate::loss::LossCurve;
use crate::models::ModelArch;
use crate::sensitivity::PlacementSensitivity;
use serde::{Deserialize, Serialize};
use themis_cluster::ids::JobId;
use themis_cluster::placement::Locality;
use themis_cluster::time::Time;

/// Static description of one ML training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job identifier (unique within the app).
    pub id: JobId,
    /// Architecture being trained; determines the placement sensitivity.
    pub model: ModelArch,
    /// Total number of SGD iterations needed to reach the target accuracy
    /// with these hyper-parameters (assumed clairvoyant, as in the paper's
    /// simulations §8.1).
    pub total_iterations: f64,
    /// Wall-clock time of one iteration on a single GPU.
    pub serial_iter_time: Time,
    /// Maximum number of GPUs the job can use productively
    /// (`G_ideal` in the paper; equals the number of tasks).
    pub max_parallelism: usize,
    /// GPUs required per task (most tasks in the trace need 4, some 2).
    pub gpus_per_task: usize,
    /// The loss curve observed as the job trains.
    pub loss_curve: LossCurve,
    /// Target loss at which the job is considered converged.
    pub target_loss: f64,
}

impl JobSpec {
    /// Convenience constructor with a typical loss curve and a target the
    /// curve can reach.
    pub fn new(
        id: JobId,
        model: ModelArch,
        total_iterations: f64,
        serial_iter_time: Time,
        max_parallelism: usize,
    ) -> Self {
        JobSpec {
            id,
            model,
            total_iterations,
            serial_iter_time,
            max_parallelism,
            gpus_per_task: 1,
            loss_curve: LossCurve::typical(),
            target_loss: 0.1,
        }
    }

    /// The job's placement-sensitivity profile (taken from its model).
    pub fn sensitivity(&self) -> PlacementSensitivity {
        self.model.sensitivity()
    }

    /// Total work `W`: GPU-minutes of serial computation for the whole job.
    pub fn total_work(&self) -> Time {
        self.serial_iter_time * self.total_iterations
    }

    /// Serial running time with a single ideally-placed GPU.
    pub fn serial_time(&self) -> Time {
        self.total_work()
    }

    /// Ideal (dedicated-cluster) running time: max parallelism and perfect
    /// placement.
    pub fn ideal_time(&self) -> Time {
        self.time_for_work(self.total_work(), self.max_parallelism, Locality::Slot)
    }

    /// Training throughput in iterations per minute with `gpus` GPUs placed
    /// at `locality`. Parallelism above `max_parallelism` is wasted.
    /// Uniform-speed view of
    /// [`iterations_per_minute_weighted`](Self::iterations_per_minute_weighted).
    pub fn iterations_per_minute(&self, gpus: usize, locality: Locality) -> f64 {
        let usable = gpus.min(self.max_parallelism);
        self.iterations_per_minute_weighted(gpus, usable as f64, locality)
    }

    /// Training throughput with a *mixed-generation* allocation: `gpus`
    /// GPUs held, of which the `min(gpus, max_parallelism)` fastest have
    /// aggregate speed `usable_speed` (see
    /// `ClusterSpec::capped_speed`). The rate is
    /// `G_eff / serial_iter_time` with `G_eff = Σ speed_i × S(placement)`.
    pub fn iterations_per_minute_weighted(
        &self,
        gpus: usize,
        usable_speed: f64,
        locality: Locality,
    ) -> f64 {
        let usable = gpus.min(self.max_parallelism);
        let speedup = self
            .sensitivity()
            .effective_speedup_weighted(usable, usable_speed, locality);
        if speedup <= 0.0 || self.serial_iter_time <= Time::ZERO {
            return 0.0;
        }
        speedup / self.serial_iter_time.as_minutes()
    }

    /// Time needed to finish `work` GPU-minutes of serial work with `gpus`
    /// GPUs placed at `locality`. Returns [`Time::INFINITY`] for zero GPUs.
    /// Uniform-speed view of
    /// [`time_for_work_weighted`](Self::time_for_work_weighted).
    pub fn time_for_work(&self, work: Time, gpus: usize, locality: Locality) -> Time {
        let usable = gpus.min(self.max_parallelism);
        self.time_for_work_weighted(work, gpus, usable as f64, locality)
    }

    /// Time needed to finish `work` with a mixed-generation allocation
    /// (`usable_speed` as in
    /// [`iterations_per_minute_weighted`](Self::iterations_per_minute_weighted)).
    /// Returns [`Time::INFINITY`] when the allocation has no throughput.
    pub fn time_for_work_weighted(
        &self,
        work: Time,
        gpus: usize,
        usable_speed: f64,
        locality: Locality,
    ) -> Time {
        let usable = gpus.min(self.max_parallelism);
        let speedup = self
            .sensitivity()
            .effective_speedup_weighted(usable, usable_speed, locality);
        if speedup <= 0.0 {
            return Time::INFINITY;
        }
        Time::minutes(work.as_minutes() / speedup)
    }
}

/// Mutable training state of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobProgress {
    /// Iterations completed so far (fractional: the simulator advances
    /// continuously).
    pub iterations_done: f64,
    /// Accumulated GPU time (GPU-minutes actually consumed, i.e. the
    /// paper's "GPU Time" efficiency metric contribution).
    pub gpu_time: Time,
    /// Whether the job was killed early by its app scheduler (HyperBand /
    /// HyperDrive classified it as poor).
    pub killed: bool,
    /// Time at which the job finished (converged or was killed).
    pub finished_at: Option<Time>,
}

impl JobProgress {
    /// A fresh, unstarted job.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the job has trained to completion (not counting kills).
    pub fn is_converged(&self, spec: &JobSpec) -> bool {
        self.iterations_done >= spec.total_iterations
    }

    /// Whether the job is finished for scheduling purposes (converged or
    /// killed).
    pub fn is_finished(&self, spec: &JobSpec) -> bool {
        self.killed || self.is_converged(spec)
    }

    /// Iterations still to run (zero when finished).
    pub fn iterations_left(&self, spec: &JobSpec) -> f64 {
        if self.killed {
            0.0
        } else {
            (spec.total_iterations - self.iterations_done).max(0.0)
        }
    }

    /// Work left `W'` in GPU-minutes of serial computation.
    pub fn work_left(&self, spec: &JobSpec) -> Time {
        spec.serial_iter_time * self.iterations_left(spec)
    }

    /// Fraction of the job completed, in `[0, 1]`.
    pub fn fraction_done(&self, spec: &JobSpec) -> f64 {
        if spec.total_iterations <= 0.0 {
            1.0
        } else {
            (self.iterations_done / spec.total_iterations).min(1.0)
        }
    }

    /// Current loss value according to the job's loss curve.
    pub fn current_loss(&self, spec: &JobSpec) -> f64 {
        spec.loss_curve.loss_at(self.iterations_done)
    }

    /// Advances training by `dt` of wall-clock time using `gpus` GPUs placed
    /// at `locality`. Accumulates GPU time and returns the number of
    /// iterations completed during this interval. Uniform-speed view of
    /// [`advance_weighted`](Self::advance_weighted).
    pub fn advance(&mut self, spec: &JobSpec, dt: Time, gpus: usize, locality: Locality) -> f64 {
        let usable = gpus.min(spec.max_parallelism);
        self.advance_weighted(spec, dt, gpus, usable as f64, locality)
    }

    /// Advances training with a mixed-generation allocation: `gpus` GPUs
    /// held, whose `min(gpus, max_parallelism)` fastest have aggregate
    /// speed `usable_speed`. GPU time accrues on *all* held GPUs (the
    /// paper's "GPU Time" efficiency metric counts physical GPU-minutes,
    /// not speed-weighted ones); training progress accrues at the
    /// speed-weighted effective rate.
    pub fn advance_weighted(
        &mut self,
        spec: &JobSpec,
        dt: Time,
        gpus: usize,
        usable_speed: f64,
        locality: Locality,
    ) -> f64 {
        if self.is_finished(spec) || gpus == 0 || dt <= Time::ZERO {
            return 0.0;
        }
        let rate = spec.iterations_per_minute_weighted(gpus, usable_speed, locality);
        let possible = rate * dt.as_minutes();
        let remaining = self.iterations_left(spec);
        // Snap to completion when within floating-point noise of the target
        // so projected-finish events land the job exactly at convergence.
        let done = if possible + 1e-9 >= remaining {
            remaining
        } else {
            possible
        };
        self.iterations_done += done;
        // GPU time accrues on all held GPUs for the full interval the job ran.
        let active_fraction = if possible > 0.0 {
            (done / possible).min(1.0)
        } else {
            0.0
        };
        self.gpu_time += Time::minutes(dt.as_minutes() * gpus as f64 * active_fraction);
        done
    }

    /// Remaining running time with `gpus` GPUs placed at `locality`.
    /// Uniform-speed view of
    /// [`time_to_complete_weighted`](Self::time_to_complete_weighted).
    pub fn time_to_complete(&self, spec: &JobSpec, gpus: usize, locality: Locality) -> Time {
        let usable = gpus.min(spec.max_parallelism);
        self.time_to_complete_weighted(spec, gpus, usable as f64, locality)
    }

    /// Remaining running time with a mixed-generation allocation
    /// (`usable_speed` as in [`JobSpec::iterations_per_minute_weighted`]).
    /// Must be kept symmetric with
    /// [`advance_weighted`](Self::advance_weighted) — the engine projects
    /// finish events with this and then advances to them.
    pub fn time_to_complete_weighted(
        &self,
        spec: &JobSpec,
        gpus: usize,
        usable_speed: f64,
        locality: Locality,
    ) -> Time {
        if self.is_finished(spec) {
            return Time::ZERO;
        }
        spec.time_for_work_weighted(self.work_left(spec), gpus, usable_speed, locality)
    }

    /// Marks the job as killed by its app scheduler at `now`.
    pub fn kill(&mut self, now: Time) {
        if self.finished_at.is_none() {
            self.killed = true;
            self.finished_at = Some(now);
        }
    }

    /// Marks the job as having completed at `now` (idempotent).
    pub fn mark_finished(&mut self, now: Time) {
        if self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_cluster::ids::JobId;

    fn spec() -> JobSpec {
        // 1000 iterations, 0.1 min/iteration serially, up to 4 GPUs.
        JobSpec::new(JobId(0), ModelArch::ResNet50, 1000.0, Time::minutes(0.1), 4)
    }

    #[test]
    fn total_and_ideal_work() {
        let s = spec();
        assert_eq!(s.total_work(), Time::minutes(100.0));
        // ResNet50 at slot locality: ideal time = 100 / 4 = 25 min.
        assert_eq!(s.ideal_time(), Time::minutes(25.0));
    }

    #[test]
    fn parallelism_is_capped_at_max() {
        let s = spec();
        let rate4 = s.iterations_per_minute(4, Locality::Slot);
        let rate16 = s.iterations_per_minute(16, Locality::Slot);
        assert_eq!(
            rate4, rate16,
            "extra GPUs beyond max_parallelism are wasted"
        );
    }

    #[test]
    fn placement_slows_down_sensitive_models() {
        let mut s = spec();
        s.model = ModelArch::Vgg16;
        let local = s.time_for_work(s.total_work(), 4, Locality::Machine);
        let spread = s.time_for_work(s.total_work(), 4, Locality::CrossRack);
        assert!(
            spread > local * 2.0,
            "VGG16 across racks should be >2x slower"
        );
    }

    #[test]
    fn zero_gpus_means_no_progress() {
        let s = spec();
        let mut p = JobProgress::new();
        assert_eq!(p.advance(&s, Time::minutes(10.0), 0, Locality::Slot), 0.0);
        assert_eq!(
            s.time_for_work(s.total_work(), 0, Locality::Slot),
            Time::INFINITY
        );
        assert_eq!(p.iterations_done, 0.0);
    }

    #[test]
    fn advance_accumulates_iterations_and_gpu_time() {
        let s = spec();
        let mut p = JobProgress::new();
        // 4 GPUs at slot locality: 40 iterations per minute.
        let done = p.advance(&s, Time::minutes(10.0), 4, Locality::Slot);
        assert!((done - 400.0).abs() < 1e-9);
        assert!((p.gpu_time.as_minutes() - 40.0).abs() < 1e-9);
        assert!(!p.is_converged(&s));
        // Run long enough to converge; progress is clamped at the total.
        p.advance(&s, Time::minutes(100.0), 4, Locality::Slot);
        assert!(p.is_converged(&s));
        assert_eq!(p.iterations_left(&s), 0.0);
        assert!((p.fraction_done(&s) - 1.0).abs() < 1e-12);
        // GPU time only accrues while there was work to do (15 min total at 4 GPUs = 60).
        assert!((p.gpu_time.as_minutes() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn time_to_complete_matches_advance() {
        let s = spec();
        let mut p = JobProgress::new();
        p.advance(&s, Time::minutes(5.0), 2, Locality::Machine);
        let t = p.time_to_complete(&s, 4, Locality::Slot);
        let mut q = p.clone();
        q.advance(&s, t, 4, Locality::Slot);
        assert!(q.is_converged(&s));
        // And just before that time it is not yet converged.
        let mut r = p.clone();
        r.advance(&s, t * 0.99, 4, Locality::Slot);
        assert!(!r.is_converged(&s));
    }

    #[test]
    fn weighted_progress_matches_speed_factor() {
        let s = spec();
        // Two GPUs of speed 2.0 each: twice the iterations of two reference
        // GPUs over the same interval, while physical GPU time is unchanged.
        let mut fast = JobProgress::new();
        let mut reference = JobProgress::new();
        let done_fast = fast.advance_weighted(&s, Time::minutes(5.0), 2, 4.0, Locality::Slot);
        let done_ref = reference.advance(&s, Time::minutes(5.0), 2, Locality::Slot);
        assert!((done_fast - 2.0 * done_ref).abs() < 1e-9);
        assert_eq!(fast.gpu_time, reference.gpu_time);
        // The weighted completion estimate stays symmetric with advance.
        let eta = fast.time_to_complete_weighted(&s, 2, 4.0, Locality::Slot);
        let mut replay = fast.clone();
        replay.advance_weighted(&s, eta, 2, 4.0, Locality::Slot);
        assert!(replay.is_converged(&s));
        // Unit-speed weighted calls are bit-identical to the unweighted API.
        let mut a = JobProgress::new();
        let mut b = JobProgress::new();
        a.advance(&s, Time::minutes(3.0), 4, Locality::Machine);
        b.advance_weighted(&s, Time::minutes(3.0), 4, 4.0, Locality::Machine);
        assert_eq!(a, b);
        assert_eq!(
            a.time_to_complete(&s, 4, Locality::Machine),
            b.time_to_complete_weighted(&s, 4, 4.0, Locality::Machine)
        );
    }

    #[test]
    fn kill_finishes_job_without_converging() {
        let s = spec();
        let mut p = JobProgress::new();
        p.advance(&s, Time::minutes(1.0), 1, Locality::Slot);
        p.kill(Time::minutes(1.0));
        assert!(p.is_finished(&s));
        assert!(!p.is_converged(&s));
        assert_eq!(p.iterations_left(&s), 0.0);
        assert_eq!(p.work_left(&s), Time::ZERO);
        assert_eq!(p.finished_at, Some(Time::minutes(1.0)));
    }

    #[test]
    fn current_loss_decreases_with_progress() {
        let s = spec();
        let mut p = JobProgress::new();
        let l0 = p.current_loss(&s);
        p.advance(&s, Time::minutes(10.0), 4, Locality::Slot);
        assert!(p.current_loss(&s) < l0);
    }
}

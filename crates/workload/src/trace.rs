//! Synthetic enterprise trace generator.
//!
//! The paper replays a production trace from "a large internet company"
//! (§8.1) that cannot be redistributed. This module generates a synthetic
//! trace matched to every statistic the paper reports about it:
//!
//! * the number of hyper-parameter exploration jobs per app varies from 1 to
//!   98 with a median of 23,
//! * most jobs need 4 GPUs, a few need 2,
//! * job durations have a 59-minute median with a long tail (Figure 1 shows
//!   task durations stretching beyond 1000 minutes),
//! * app arrivals are Poisson with a mean inter-arrival time of 20 minutes,
//! * the workload is a 60:40 mixture of placement-insensitive (ResNet-like)
//!   and placement-sensitive (VGG-like) apps.
//!
//! The generator is fully deterministic given a seed, so every figure in
//! `EXPERIMENTS.md` can be regenerated exactly.

use crate::app::AppSpec;
use crate::distributions::{quantile, sample_exponential, sample_lognormal_median, Discrete};
use crate::job::JobSpec;
use crate::loss::LossCurve;
use crate::models::ModelArch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::time::Time;

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of apps to generate.
    pub num_apps: usize,
    /// Mean inter-arrival time between apps (Poisson process).
    pub mean_interarrival: Time,
    /// Fraction of apps that train network-intensive (placement-sensitive)
    /// models. The paper uses 0.4.
    pub network_intensive_fraction: f64,
    /// Median number of jobs per app (paper: 23).
    pub median_jobs_per_app: f64,
    /// Maximum number of jobs per app (paper: 98).
    pub max_jobs_per_app: usize,
    /// Median job duration at full parallelism (paper: 59 minutes).
    pub median_job_duration: Time,
    /// Log-normal shape parameter for job durations; larger values produce
    /// a longer tail.
    pub duration_sigma: f64,
    /// Multiplier applied to all durations (the paper scales durations down
    /// by 5x for its 50-GPU testbed experiments).
    pub duration_scale: f64,
    /// Probability that a job requires 4 GPUs (the remainder require 2).
    pub four_gpu_fraction: f64,
    /// Fraction of apps that arrive in a *burst*: their inter-arrival gap is
    /// divided by [`TraceConfig::burst_factor`]. Zero (the default) disables
    /// burstiness and leaves the arrival process exactly Poisson — and, by
    /// construction, leaves the RNG stream untouched, so existing pinned
    /// seeds keep producing the exact same traces.
    pub burst_fraction: f64,
    /// How much a bursty arrival compresses its inter-arrival gap (≥ 1).
    /// Only consulted when [`TraceConfig::burst_fraction`] is positive.
    pub burst_factor: f64,
    /// Fraction of jobs that demand 8 GPUs — a *heavy* heterogeneous tail on
    /// top of the paper's 4/2-GPU mix. Zero (the default) reproduces the
    /// paper's workload byte-for-byte.
    pub heavy_job_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_apps: 100,
            mean_interarrival: Time::minutes(20.0),
            network_intensive_fraction: 0.4,
            median_jobs_per_app: 23.0,
            max_jobs_per_app: 98,
            median_job_duration: Time::minutes(59.0),
            duration_sigma: 0.9,
            duration_scale: 1.0,
            four_gpu_fraction: 0.8,
            burst_fraction: 0.0,
            burst_factor: 8.0,
            heavy_job_fraction: 0.0,
            seed: 42,
        }
    }
}

impl TraceConfig {
    /// The configuration used for the paper's 50-GPU testbed macro-benchmarks:
    /// durations scaled down by 5x, same inter-arrival distribution (§8.3).
    pub fn testbed() -> Self {
        TraceConfig {
            duration_scale: 0.2,
            ..Default::default()
        }
    }

    /// Adjusts contention by scaling the mean inter-arrival time down by
    /// `factor` (the paper's §8.4.2 "factor of contention": 2x contention =
    /// half the inter-arrival time).
    pub fn with_contention(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.mean_interarrival = self.mean_interarrival / factor;
        self
    }

    /// Sets the fraction of network-intensive apps (§8.4.1 sweeps 0..100%).
    pub fn with_network_intensive_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.network_intensive_fraction = fraction;
        self
    }

    /// Sets the number of apps.
    pub fn with_num_apps(mut self, num_apps: usize) -> Self {
        self.num_apps = num_apps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes `fraction` of the apps arrive in bursts whose inter-arrival
    /// gap is divided by `factor` (scenario-matrix "bursty" knob).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]` or `factor < 1`.
    pub fn with_burstiness(mut self, fraction: f64, factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "burst fraction must be in [0, 1]"
        );
        assert!(factor >= 1.0, "burst factor must be >= 1");
        self.burst_fraction = fraction;
        self.burst_factor = factor;
        self
    }

    /// Makes `fraction` of the jobs demand 8 GPUs (scenario-matrix
    /// "heterogeneous demand" knob).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_heavy_job_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "heavy-job fraction must be in [0, 1]"
        );
        self.heavy_job_fraction = fraction;
        self
    }
}

/// Deterministic synthetic trace generator.
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
    rng: SmallRng,
}

impl TraceGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: TraceConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        TraceGenerator { config, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates the whole trace: a list of apps sorted by arrival time.
    pub fn generate(&mut self) -> Vec<AppSpec> {
        let mut apps = Vec::with_capacity(self.config.num_apps);
        let mut arrival = Time::ZERO;
        for app_idx in 0..self.config.num_apps {
            arrival += self.sample_interarrival();
            apps.push(self.generate_app(AppId(app_idx as u32), arrival));
        }
        apps
    }

    /// Draws the next inter-arrival gap — exactly the per-app draws
    /// [`generate`](TraceGenerator::generate) makes — so a streaming caller
    /// ([`TraceStream`](crate::stream::TraceStream)) consumes the same RNG
    /// stream as a batch trace and produces an identical app prefix.
    pub fn sample_interarrival(&mut self) -> Time {
        // The burst draw only happens when burstiness is enabled, so the
        // default configuration consumes the same RNG stream as before the
        // knob existed (pinned seeds stay pinned).
        let mut mean = self.config.mean_interarrival.as_minutes();
        if self.config.burst_fraction > 0.0 && self.rng.gen::<f64>() < self.config.burst_fraction {
            mean /= self.config.burst_factor.max(1.0);
        }
        Time::minutes(sample_exponential(&mut self.rng, mean))
    }

    /// Generates a single app arriving at `arrival`.
    pub fn generate_app(&mut self, id: AppId, arrival: Time) -> AppSpec {
        let network_intensive = self.rng.gen::<f64>() < self.config.network_intensive_fraction;
        let model = self.pick_model(network_intensive);
        let num_jobs = self.sample_num_jobs();
        // With a heavy-job tail the 4/2-GPU mix is rescaled to make room;
        // either way a sample consumes exactly one uniform draw, so
        // `heavy_job_fraction = 0` reproduces the paper's workload exactly.
        let heavy = self.config.heavy_job_fraction;
        let gpu_dist = if heavy > 0.0 {
            Discrete::new([
                (8usize, heavy),
                (4usize, (1.0 - heavy) * self.config.four_gpu_fraction),
                (
                    2usize,
                    (1.0 - heavy) * (1.0 - self.config.four_gpu_fraction),
                ),
            ])
        } else {
            Discrete::new([
                (4usize, self.config.four_gpu_fraction),
                (2usize, 1.0 - self.config.four_gpu_fraction),
            ])
        };
        let jobs: Vec<JobSpec> = (0..num_jobs)
            .map(|job_idx| {
                let gpus = gpu_dist.sample(&mut self.rng);
                let duration = self.sample_duration();
                self.make_job(JobId(job_idx as u32), model, duration, gpus)
            })
            .collect();
        AppSpec::new(id, arrival, jobs)
    }

    fn pick_model(&mut self, network_intensive: bool) -> ModelArch {
        let pool = if network_intensive {
            ModelArch::network_intensive_pool()
        } else {
            ModelArch::compute_intensive_pool()
        };
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn sample_num_jobs(&mut self) -> usize {
        let raw = sample_lognormal_median(&mut self.rng, self.config.median_jobs_per_app, 1.0);
        (raw.round() as usize).clamp(1, self.config.max_jobs_per_app)
    }

    fn sample_duration(&mut self) -> Time {
        let raw = sample_lognormal_median(
            &mut self.rng,
            self.config.median_job_duration.as_minutes(),
            self.config.duration_sigma,
        );
        Time::minutes((raw * self.config.duration_scale).max(1.0))
    }

    /// Builds a job whose *ideal* running time (max parallelism, perfect
    /// placement) equals `duration`.
    fn make_job(&mut self, id: JobId, model: ModelArch, duration: Time, gpus: usize) -> JobSpec {
        // Choose an iteration count proportional to the duration so that
        // iteration granularity stays roughly constant, then derive the
        // serial iteration time so ideal_time == duration.
        let total_iterations = (duration.as_minutes() * 2.0).max(10.0).round();
        let serial_iter_time =
            Time::minutes(duration.as_minutes() * gpus as f64 / total_iterations);
        // A loss curve consistent with the clairvoyant iteration count: it
        // reaches the target loss exactly at `total_iterations`.
        let target_loss = 0.1f64;
        let floor = 0.05f64;
        let scale = 2.0f64;
        let exponent = (scale / (target_loss - floor)).ln() / (total_iterations + 1.0).ln();
        JobSpec {
            id,
            model,
            total_iterations,
            serial_iter_time,
            max_parallelism: gpus,
            gpus_per_task: gpus,
            loss_curve: LossCurve::PowerLaw {
                floor,
                scale,
                exponent,
            },
            target_loss,
        }
    }
}

/// Builds the two-app micro-trace used for the paper's Figure 8: two
/// single-job apps with equal placement sensitivity whose running times
/// differ by 3x, both arriving at t = 40 minutes.
pub fn two_app_micro_trace() -> Vec<AppSpec> {
    let arrival = Time::minutes(40.0);
    let short_job = JobSpec::new(
        JobId(0),
        ModelArch::InceptionV3,
        240.0,
        Time::minutes(0.5),
        4,
    );
    let long_job = JobSpec::new(
        JobId(0),
        ModelArch::InceptionV3,
        720.0,
        Time::minutes(0.5),
        4,
    );
    vec![
        AppSpec::single_job(AppId(0), arrival, short_job),
        AppSpec::single_job(AppId(1), arrival, long_job),
    ]
}

/// Summary statistics of a trace, used to regenerate Figure 1 and to verify
/// the generator matches the paper's reported numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of apps in the trace.
    pub num_apps: usize,
    /// Total number of jobs across apps.
    pub num_jobs: usize,
    /// Median number of jobs per app.
    pub median_jobs_per_app: f64,
    /// Median ideal job duration (minutes).
    pub median_job_duration: f64,
    /// 95th-percentile ideal job duration (minutes).
    pub p95_job_duration: f64,
    /// Fraction of apps that are network intensive.
    pub network_intensive_fraction: f64,
    /// Fraction of jobs requiring 4 GPUs.
    pub four_gpu_fraction: f64,
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn compute(apps: &[AppSpec]) -> TraceStats {
        let num_apps = apps.len();
        let jobs_per_app: Vec<f64> = apps.iter().map(|a| a.num_jobs() as f64).collect();
        let durations: Vec<f64> = apps
            .iter()
            .flat_map(|a| a.jobs.iter().map(|j| j.ideal_time().as_minutes()))
            .collect();
        let num_jobs = durations.len();
        let four_gpu = apps
            .iter()
            .flat_map(|a| a.jobs.iter())
            .filter(|j| j.max_parallelism >= 4)
            .count();
        let net = apps.iter().filter(|a| a.is_network_intensive()).count();
        TraceStats {
            num_apps,
            num_jobs,
            median_jobs_per_app: if jobs_per_app.is_empty() {
                0.0
            } else {
                quantile(&jobs_per_app, 0.5)
            },
            median_job_duration: if durations.is_empty() {
                0.0
            } else {
                quantile(&durations, 0.5)
            },
            p95_job_duration: if durations.is_empty() {
                0.0
            } else {
                quantile(&durations, 0.95)
            },
            network_intensive_fraction: if num_apps == 0 {
                0.0
            } else {
                net as f64 / num_apps as f64
            },
            four_gpu_fraction: if num_jobs == 0 {
                0.0
            } else {
                four_gpu as f64 / num_jobs as f64
            },
        }
    }
}

/// Returns the CDF points `(duration_minutes, fraction_of_jobs)` of ideal job
/// durations in a trace — the data behind the paper's Figure 1.
pub fn duration_cdf(apps: &[AppSpec], points: usize) -> Vec<(f64, f64)> {
    let mut durations: Vec<f64> = apps
        .iter()
        .flat_map(|a| a.jobs.iter().map(|j| j.ideal_time().as_minutes()))
        .collect();
    if durations.is_empty() {
        return Vec::new();
    }
    durations.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let n = durations.len();
    (0..points)
        .map(|i| {
            let frac = (i + 1) as f64 / points as f64;
            let idx = ((n as f64 * frac).ceil() as usize).clamp(1, n) - 1;
            (durations[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_given_seed() {
        let a = TraceGenerator::new(TraceConfig::default()).generate();
        let b = TraceGenerator::new(TraceConfig::default()).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(TraceConfig::default().with_seed(7)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_increasing_and_poisson_like() {
        let apps = TraceGenerator::new(TraceConfig::default().with_num_apps(500)).generate();
        let mut prev = Time::ZERO;
        for app in &apps {
            assert!(app.arrival >= prev);
            prev = app.arrival;
        }
        // Mean inter-arrival should be near 20 minutes.
        let mean = apps.last().unwrap().arrival.as_minutes() / apps.len() as f64;
        assert!((mean - 20.0).abs() < 3.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn stats_match_paper_distributions() {
        let apps = TraceGenerator::new(TraceConfig::default().with_num_apps(400)).generate();
        let stats = TraceStats::compute(&apps);
        assert_eq!(stats.num_apps, 400);
        // Median jobs per app ~23 (paper), generous tolerance for sampling noise.
        assert!(
            (stats.median_jobs_per_app - 23.0).abs() < 6.0,
            "median jobs/app {}",
            stats.median_jobs_per_app
        );
        // Median duration ~59 minutes.
        assert!(
            (stats.median_job_duration - 59.0).abs() < 10.0,
            "median duration {}",
            stats.median_job_duration
        );
        // Long tail.
        assert!(stats.p95_job_duration > 2.0 * stats.median_job_duration);
        // 60:40 compute:network mix.
        assert!(
            (stats.network_intensive_fraction - 0.4).abs() < 0.1,
            "network fraction {}",
            stats.network_intensive_fraction
        );
        // Mostly 4-GPU jobs.
        assert!(stats.four_gpu_fraction > 0.7);
        // Jobs per app never exceed the configured maximum.
        assert!(apps.iter().all(|a| a.num_jobs() <= 98 && a.num_jobs() >= 1));
    }

    #[test]
    fn job_ideal_time_matches_sampled_duration_scale() {
        let apps = TraceGenerator::new(TraceConfig::testbed().with_num_apps(100)).generate();
        let stats = TraceStats::compute(&apps);
        // Testbed config scales durations by 5x down: median ≈ 59/5 ≈ 12.
        assert!(
            (stats.median_job_duration - 11.8).abs() < 4.0,
            "median testbed duration {}",
            stats.median_job_duration
        );
    }

    #[test]
    fn loss_curves_are_consistent_with_iterations() {
        let apps = TraceGenerator::new(TraceConfig::default().with_num_apps(20)).generate();
        for app in &apps {
            for job in &app.jobs {
                let to_target = job
                    .loss_curve
                    .iterations_to_target(job.target_loss)
                    .expect("curve must reach target");
                let rel_err = (to_target - job.total_iterations).abs() / job.total_iterations;
                assert!(
                    rel_err < 0.01,
                    "iterations-to-target {to_target} vs clairvoyant {}",
                    job.total_iterations
                );
            }
        }
    }

    #[test]
    fn disabled_knobs_do_not_perturb_the_rng_stream() {
        // Explicitly setting the new knobs to their "off" values must yield
        // the exact trace the pre-knob generator produced.
        let plain = TraceGenerator::new(TraceConfig::default()).generate();
        let zeroed = TraceGenerator::new(
            TraceConfig::default()
                .with_burstiness(0.0, 16.0)
                .with_heavy_job_fraction(0.0),
        )
        .generate();
        assert_eq!(plain, zeroed);
    }

    #[test]
    fn bursty_arrivals_compress_the_schedule() {
        let plain = TraceGenerator::new(TraceConfig::default().with_num_apps(300)).generate();
        let bursty = TraceGenerator::new(
            TraceConfig::default()
                .with_num_apps(300)
                .with_burstiness(0.8, 16.0),
        )
        .generate();
        let makespan = |apps: &[AppSpec]| apps.last().unwrap().arrival.as_minutes();
        assert!(
            makespan(&bursty) < makespan(&plain) * 0.6,
            "bursty arrival span {} should be well under plain span {}",
            makespan(&bursty),
            makespan(&plain)
        );
        let mut prev = Time::ZERO;
        for app in &bursty {
            assert!(app.arrival >= prev);
            prev = app.arrival;
        }
    }

    #[test]
    fn heavy_jobs_appear_at_the_configured_rate() {
        let apps = TraceGenerator::new(
            TraceConfig::default()
                .with_num_apps(100)
                .with_heavy_job_fraction(0.3),
        )
        .generate();
        let jobs: Vec<_> = apps.iter().flat_map(|a| a.jobs.iter()).collect();
        let heavy = jobs.iter().filter(|j| j.max_parallelism == 8).count();
        let frac = heavy as f64 / jobs.len() as f64;
        assert!((frac - 0.3).abs() < 0.08, "heavy-job fraction {frac}");
        // The 4-vs-2 mix must survive underneath the heavy tail.
        assert!(jobs.iter().any(|j| j.max_parallelism == 4));
        assert!(jobs.iter().any(|j| j.max_parallelism == 2));
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn burst_factor_below_one_rejected() {
        let _ = TraceConfig::default().with_burstiness(0.5, 0.5);
    }

    #[test]
    fn contention_scales_interarrival() {
        let cfg = TraceConfig::default().with_contention(4.0);
        assert_eq!(cfg.mean_interarrival, Time::minutes(5.0));
    }

    #[test]
    fn two_app_micro_trace_matches_figure8_setup() {
        let apps = two_app_micro_trace();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].arrival, Time::minutes(40.0));
        assert_eq!(apps[1].arrival, Time::minutes(40.0));
        let short = apps[0].ideal_running_time();
        let long = apps[1].ideal_running_time();
        assert!((long / short - 3.0).abs() < 1e-9, "3x running-time ratio");
        assert_eq!(apps[0].model(), apps[1].model());
    }

    #[test]
    fn duration_cdf_is_monotone() {
        let apps = TraceGenerator::new(TraceConfig::default().with_num_apps(50)).generate();
        let cdf = duration_cdf(&apps, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "durations must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "cdf must be non-decreasing");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}

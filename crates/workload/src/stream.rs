//! Open-ended (streaming) trace generation for service mode.
//!
//! A batch trace fixes `num_apps` up front; a long-running open system
//! instead pulls apps one at a time for as long as its horizon lasts.
//! [`TraceStream`] wraps a [`TraceGenerator`] with a cursor:
//!
//! * [`next_app`](TraceStream::next_app) is *self-paced* — it draws the
//!   inter-arrival gap with the exact per-app RNG draws the batch
//!   generator makes, so the first `N` streamed apps are identical to a
//!   batch trace generated with `num_apps = N` from the same config;
//! * [`next_app_at`](TraceStream::next_app_at) is *externally paced* — the
//!   arrival time comes from the caller (service mode's arrival process),
//!   and only the app-attribute draws consume the generator's RNG.
//!
//! Both paths assign dense sequential app ids starting at zero, which the
//! simulator's arena indexing relies on.

use crate::app::AppSpec;
use crate::trace::{TraceConfig, TraceGenerator};
use themis_cluster::ids::AppId;
use themis_cluster::time::Time;

/// An unbounded stream of app specs over a [`TraceGenerator`].
#[derive(Debug)]
pub struct TraceStream {
    generator: TraceGenerator,
    next_id: u32,
    clock: Time,
}

impl TraceStream {
    /// Creates a stream from a trace configuration. The `num_apps` field of
    /// the config is ignored — the stream is unbounded.
    pub fn new(config: TraceConfig) -> Self {
        TraceStream {
            generator: TraceGenerator::new(config),
            next_id: 0,
            clock: Time::ZERO,
        }
    }

    /// Number of apps generated so far.
    pub fn generated(&self) -> usize {
        self.next_id as usize
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceConfig {
        self.generator.config()
    }

    /// Generates the next app, self-paced: the arrival gap is drawn exactly
    /// like the batch generator's, so streamed prefixes match batch traces
    /// draw for draw.
    pub fn next_app(&mut self) -> AppSpec {
        let gap = self.generator.sample_interarrival();
        self.clock += gap;
        let arrival = self.clock;
        self.next_spec(arrival)
    }

    /// Generates the next app with a caller-supplied arrival time (service
    /// mode pairs this with an
    /// `ArrivalProcess`). Arrival times must be non-decreasing.
    pub fn next_app_at(&mut self, arrival: Time) -> AppSpec {
        assert!(
            arrival >= self.clock,
            "arrival times fed to a stream must be non-decreasing"
        );
        self.clock = arrival;
        self.next_spec(arrival)
    }

    fn next_spec(&mut self, arrival: Time) -> AppSpec {
        let id = AppId(self.next_id);
        self.next_id = self.next_id.checked_add(1).expect("app id space exhausted");
        self.generator.generate_app(id, arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_paced_stream_prefix_equals_batch_trace() {
        for config in [
            TraceConfig::default().with_seed(9),
            TraceConfig::default()
                .with_seed(9)
                .with_burstiness(0.5, 8.0),
        ] {
            let batch = TraceGenerator::new(config.clone().with_num_apps(25)).generate();
            let mut stream = TraceStream::new(config);
            let streamed: Vec<AppSpec> = (0..25).map(|_| stream.next_app()).collect();
            assert_eq!(
                batch, streamed,
                "streamed prefix must match the batch trace app for app"
            );
            assert_eq!(stream.generated(), 25);
        }
    }

    #[test]
    fn externally_paced_stream_uses_the_given_arrivals() {
        let mut stream = TraceStream::new(TraceConfig::default().with_seed(4));
        let a = stream.next_app_at(Time::minutes(5.0));
        let b = stream.next_app_at(Time::minutes(5.0));
        let c = stream.next_app_at(Time::minutes(42.0));
        assert_eq!(a.arrival, Time::minutes(5.0));
        assert_eq!(b.arrival, Time::minutes(5.0));
        assert_eq!(c.arrival, Time::minutes(42.0));
        assert_eq!(
            (a.id, b.id, c.id),
            (AppId(0), AppId(1), AppId(2)),
            "ids are dense and sequential"
        );
    }

    #[test]
    fn externally_paced_stream_is_deterministic() {
        let run = || {
            let mut stream = TraceStream::new(TraceConfig::default().with_seed(77));
            (0..10)
                .map(|i| stream.next_app_at(Time::minutes(10.0 * i as f64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_arrivals_are_rejected() {
        let mut stream = TraceStream::new(TraceConfig::default());
        let _ = stream.next_app_at(Time::minutes(10.0));
        let _ = stream.next_app_at(Time::minutes(5.0));
    }
}

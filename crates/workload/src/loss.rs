//! Training-loss convergence curves.
//!
//! Hyper-parameter tuning frameworks (HyperBand, HyperDrive) decide which
//! jobs to keep or kill by inspecting each job's loss curve and projecting
//! the number of iterations still needed to reach the target accuracy
//! (§5.2, "Work estimation"). Real convergence depends on gradients we do
//! not compute; instead each job carries an analytic [`LossCurve`] that the
//! tuning frameworks observe point-by-point — exercising exactly the same
//! curve-fitting code path the paper describes.

use serde::{Deserialize, Serialize};

/// An analytic loss curve `loss(iteration)`.
///
/// Two families are supported, mirroring the "best-fit sub-linear or
/// super-linear curve" fitting in the paper's HyperBand implementation (§7):
///
/// * **Power law**: `loss(k) = floor + scale · (k+1)^(-exponent)` — the
///   classic sub-linear training curve.
/// * **Exponential**: `loss(k) = floor + scale · exp(-rate · k)` — faster
///   (super-linear in log space) convergence.
///
/// Jobs with a higher `floor` than the target accuracy will never converge;
/// the tuning framework is expected to classify them as poor and kill them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossCurve {
    /// `loss(k) = floor + scale * (k+1)^(-exponent)`
    PowerLaw {
        /// Asymptotic loss the curve converges to.
        floor: f64,
        /// Initial amplitude above the floor.
        scale: f64,
        /// Decay exponent (> 0); larger means faster convergence.
        exponent: f64,
    },
    /// `loss(k) = floor + scale * exp(-rate * k)`
    Exponential {
        /// Asymptotic loss the curve converges to.
        floor: f64,
        /// Initial amplitude above the floor.
        scale: f64,
        /// Decay rate (> 0); larger means faster convergence.
        rate: f64,
    },
}

impl LossCurve {
    /// A typical well-behaved power-law curve reaching ~0.1 loss.
    pub fn typical() -> Self {
        LossCurve::PowerLaw {
            floor: 0.05,
            scale: 2.0,
            exponent: 0.5,
        }
    }

    /// A curve for a poor hyper-parameter choice: converges to a loss floor
    /// above the usual target, so it should be killed by the tuner.
    pub fn poor() -> Self {
        LossCurve::PowerLaw {
            floor: 0.8,
            scale: 1.5,
            exponent: 0.3,
        }
    }

    /// The loss after `iteration` iterations (0-based).
    pub fn loss_at(&self, iteration: f64) -> f64 {
        let it = iteration.max(0.0);
        match *self {
            LossCurve::PowerLaw {
                floor,
                scale,
                exponent,
            } => floor + scale * (it + 1.0).powf(-exponent),
            LossCurve::Exponential { floor, scale, rate } => floor + scale * (-rate * it).exp(),
        }
    }

    /// The asymptotic floor of the curve.
    pub fn floor(&self) -> f64 {
        match *self {
            LossCurve::PowerLaw { floor, .. } => floor,
            LossCurve::Exponential { floor, .. } => floor,
        }
    }

    /// Whether the curve can ever reach `target` loss.
    pub fn can_reach(&self, target: f64) -> bool {
        self.floor() < target
    }

    /// The (fractional) iteration at which the curve first reaches `target`
    /// loss, or `None` if the target is below the curve's floor.
    pub fn iterations_to_target(&self, target: f64) -> Option<f64> {
        if !self.can_reach(target) {
            return None;
        }
        match *self {
            LossCurve::PowerLaw {
                floor,
                scale,
                exponent,
            } => {
                // target = floor + scale*(k+1)^-e  =>  k = (scale/(target-floor))^(1/e) - 1
                let k = (scale / (target - floor)).powf(1.0 / exponent) - 1.0;
                Some(k.max(0.0))
            }
            LossCurve::Exponential { floor, scale, rate } => {
                // target = floor + scale*exp(-r k)  =>  k = ln(scale/(target-floor))/r
                let k = ((scale / (target - floor)).ln() / rate).max(0.0);
                Some(k)
            }
        }
    }

    /// Loss improvement (decrease) obtained by advancing from iteration
    /// `from` to iteration `to`. Used by the SLAQ baseline, which allocates
    /// GPUs to maximize aggregate loss reduction.
    pub fn loss_reduction(&self, from: f64, to: f64) -> f64 {
        (self.loss_at(from) - self.loss_at(to)).max(0.0)
    }
}

/// Fits a power-law curve `loss(k) = scale * (k+1)^(-exponent)` (zero floor)
/// to observed `(iteration, loss)` samples by least squares in log-log
/// space. This is the work-estimation path the paper's profiler implements
/// by parsing TensorFlow logs (§7); app schedulers use the fitted curve to
/// project iterations-to-target.
///
/// Returns `None` if fewer than two valid samples are provided or the fit
/// degenerates.
pub fn fit_power_law(samples: &[(f64, f64)]) -> Option<LossCurve> {
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(k, l)| *l > 0.0 && *k >= 0.0)
        .map(|(k, l)| ((k + 1.0).ln(), l.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let exponent = -slope;
    let scale = intercept.exp();
    if !(exponent.is_finite() && scale.is_finite()) || exponent <= 0.0 || scale <= 0.0 {
        return None;
    }
    Some(LossCurve::PowerLaw {
        floor: 0.0,
        scale,
        exponent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_monotone_decreasing() {
        for curve in [LossCurve::typical(), LossCurve::poor()] {
            let mut prev = f64::INFINITY;
            for k in 0..100 {
                let l = curve.loss_at(k as f64 * 10.0);
                assert!(l <= prev, "loss must not increase");
                assert!(l >= curve.floor());
                prev = l;
            }
        }
    }

    #[test]
    fn iterations_to_target_inverts_loss_at() {
        let curve = LossCurve::typical();
        let target = 0.3;
        let k = curve.iterations_to_target(target).unwrap();
        let loss = curve.loss_at(k);
        assert!(
            (loss - target).abs() < 1e-9,
            "loss({k}) = {loss} != {target}"
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        let poor = LossCurve::poor();
        assert!(!poor.can_reach(0.5));
        assert_eq!(poor.iterations_to_target(0.5), None);
        // A target above the floor is reachable.
        assert!(poor.iterations_to_target(1.0).is_some());
    }

    #[test]
    fn exponential_curve_behaves() {
        let curve = LossCurve::Exponential {
            floor: 0.1,
            scale: 3.0,
            rate: 0.01,
        };
        assert!((curve.loss_at(0.0) - 3.1).abs() < 1e-12);
        let k = curve.iterations_to_target(0.5).unwrap();
        assert!((curve.loss_at(k) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn loss_reduction_is_non_negative() {
        let curve = LossCurve::typical();
        assert!(curve.loss_reduction(0.0, 100.0) > 0.0);
        assert_eq!(curve.loss_reduction(100.0, 100.0), 0.0);
        // Going backwards clamps to zero rather than producing negative values.
        assert_eq!(curve.loss_reduction(100.0, 0.0), 0.0);
    }

    #[test]
    fn fit_power_law_recovers_parameters() {
        let truth = LossCurve::PowerLaw {
            floor: 0.0,
            scale: 2.5,
            exponent: 0.6,
        };
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|k| {
                let k = k as f64 * 20.0;
                (k, truth.loss_at(k))
            })
            .collect();
        let fitted = fit_power_law(&samples).unwrap();
        match fitted {
            LossCurve::PowerLaw {
                scale, exponent, ..
            } => {
                assert!((scale - 2.5).abs() < 0.05, "scale {scale}");
                assert!((exponent - 0.6).abs() < 0.02, "exponent {exponent}");
            }
            _ => panic!("expected power law"),
        }
    }

    #[test]
    fn fit_power_law_rejects_degenerate_input() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(0.0, 1.0)]).is_none());
        assert!(fit_power_law(&[(0.0, 1.0), (0.0, 1.0)]).is_none());
        // Negative losses are filtered out.
        assert!(fit_power_law(&[(0.0, -1.0), (1.0, -0.5)]).is_none());
    }
}

//! Model zoo.
//!
//! The paper profiles five image-classification architectures (Figure 2) and
//! builds its simulated workload from a 60:40 mix of placement-*insensitive*
//! (ResNet-family) and placement-*sensitive* (VGG-family) apps (§8.1). Each
//! [`ModelArch`] carries:
//!
//! * a single-GPU throughput (images/second on a P100, matching Fig. 2's
//!   leftmost bars divided by 4),
//! * a [`PlacementSensitivity`] profile calibrated so that the 4-GPU
//!   1-server vs 2×2-server throughput ratio matches Fig. 2,
//! * the parameter size in MB (drives the intuition for why dense models
//!   are network-bound under synchronous SGD).

use crate::sensitivity::PlacementSensitivity;
use serde::{Deserialize, Serialize};
use themis_cluster::placement::Locality;

/// A deep-learning model architecture with its performance profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelArch {
    /// VGG16 — large dense layers, strongly placement sensitive.
    Vgg16,
    /// VGG19 — like VGG16 with more conv layers.
    Vgg19,
    /// AlexNet — large fully-connected layers, placement sensitive.
    AlexNet,
    /// Inception-v3 — moderately placement sensitive.
    InceptionV3,
    /// ResNet50 — small parameter set, effectively placement insensitive.
    ResNet50,
    /// ResNet152 — deeper ResNet, still placement insensitive.
    ResNet152,
    /// A GNMT-style recurrent translation model (language workload).
    Gnmt,
    /// A BERT-style transformer (language workload, network heavy).
    BertBase,
}

impl ModelArch {
    /// Every architecture in the zoo.
    pub const ALL: [ModelArch; 8] = [
        ModelArch::Vgg16,
        ModelArch::Vgg19,
        ModelArch::AlexNet,
        ModelArch::InceptionV3,
        ModelArch::ResNet50,
        ModelArch::ResNet152,
        ModelArch::Gnmt,
        ModelArch::BertBase,
    ];

    /// The five models profiled in the paper's Figure 2.
    pub const FIGURE2: [ModelArch; 5] = [
        ModelArch::Vgg16,
        ModelArch::Vgg19,
        ModelArch::AlexNet,
        ModelArch::InceptionV3,
        ModelArch::ResNet50,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ModelArch::Vgg16 => "VGG16",
            ModelArch::Vgg19 => "VGG19",
            ModelArch::AlexNet => "AlexNet",
            ModelArch::InceptionV3 => "Inception-v3",
            ModelArch::ResNet50 => "ResNet50",
            ModelArch::ResNet152 => "ResNet152",
            ModelArch::Gnmt => "GNMT",
            ModelArch::BertBase => "BERT-base",
        }
    }

    /// Single-GPU training throughput in images (or sequences) per second,
    /// roughly matching published P100 numbers.
    pub fn serial_throughput(self) -> f64 {
        match self {
            ModelArch::Vgg16 => 55.0,
            ModelArch::Vgg19 => 47.0,
            ModelArch::AlexNet => 120.0,
            ModelArch::InceptionV3 => 78.0,
            ModelArch::ResNet50 => 52.0,
            ModelArch::ResNet152 => 22.0,
            ModelArch::Gnmt => 30.0,
            ModelArch::BertBase => 18.0,
        }
    }

    /// Model parameter size in megabytes (FP32), which drives the
    /// synchronous-SGD communication volume per iteration.
    pub fn param_size_mb(self) -> f64 {
        match self {
            ModelArch::Vgg16 => 528.0,
            ModelArch::Vgg19 => 549.0,
            ModelArch::AlexNet => 233.0,
            ModelArch::InceptionV3 => 92.0,
            ModelArch::ResNet50 => 98.0,
            ModelArch::ResNet152 => 230.0,
            ModelArch::Gnmt => 520.0,
            ModelArch::BertBase => 420.0,
        }
    }

    /// The placement-sensitivity profile for this architecture.
    ///
    /// Calibrated so the ratio between machine-local and rack-level
    /// placement matches the 4-GPU 1-server vs 2×2-server throughput drop in
    /// Figure 2: VGG16/19 and AlexNet lose roughly half their throughput
    /// when crossing machines, Inception-v3 loses ~10%, ResNet50 almost
    /// nothing.
    pub fn sensitivity(self) -> PlacementSensitivity {
        match self {
            ModelArch::Vgg16 => PlacementSensitivity::new(1.0, 0.92, 0.50, 0.35),
            ModelArch::Vgg19 => PlacementSensitivity::new(1.0, 0.92, 0.52, 0.36),
            ModelArch::AlexNet => PlacementSensitivity::new(1.0, 0.90, 0.55, 0.38),
            ModelArch::InceptionV3 => PlacementSensitivity::new(1.0, 0.97, 0.88, 0.75),
            ModelArch::ResNet50 => PlacementSensitivity::new(1.0, 0.99, 0.97, 0.93),
            ModelArch::ResNet152 => PlacementSensitivity::new(1.0, 0.98, 0.94, 0.88),
            ModelArch::Gnmt => PlacementSensitivity::new(1.0, 0.90, 0.55, 0.40),
            ModelArch::BertBase => PlacementSensitivity::new(1.0, 0.90, 0.58, 0.42),
        }
    }

    /// Whether the paper would classify apps training this model as
    /// "network intensive" (placement sensitive) — §8.4.1.
    pub fn is_network_intensive(self) -> bool {
        self.sensitivity().is_network_intensive()
    }

    /// Aggregate throughput (samples/second) of `gpus` GPUs placed at the
    /// given locality. This is the quantity Figure 2 plots for 4 GPUs.
    pub fn throughput(self, gpus: usize, locality: Locality) -> f64 {
        self.serial_throughput() * self.sensitivity().effective_speedup(gpus, locality)
    }

    /// The models in the placement-*sensitive* half of the paper's workload.
    pub fn network_intensive_pool() -> Vec<ModelArch> {
        ModelArch::ALL
            .into_iter()
            .filter(|m| m.is_network_intensive())
            .collect()
    }

    /// The models in the placement-*insensitive* half of the paper's
    /// workload.
    pub fn compute_intensive_pool() -> Vec<ModelArch> {
        ModelArch::ALL
            .into_iter()
            .filter(|m| !m.is_network_intensive())
            .collect()
    }
}

impl std::fmt::Display for ModelArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_vgg_vs_resnet() {
        // VGG16 has a strict machine-local preference; ResNet50 has none
        // (paper §2.2 & Fig. 2).
        let vgg_local = ModelArch::Vgg16.throughput(4, Locality::Machine);
        let vgg_spread = ModelArch::Vgg16.throughput(4, Locality::Rack);
        let resnet_local = ModelArch::ResNet50.throughput(4, Locality::Machine);
        let resnet_spread = ModelArch::ResNet50.throughput(4, Locality::Rack);
        assert!(
            vgg_local / vgg_spread > 1.5,
            "VGG16 must lose a lot of throughput when spread: {vgg_local} vs {vgg_spread}"
        );
        assert!(
            resnet_local / resnet_spread < 1.1,
            "ResNet50 must barely notice placement: {resnet_local} vs {resnet_spread}"
        );
    }

    #[test]
    fn classification_matches_paper_mix() {
        assert!(ModelArch::Vgg16.is_network_intensive());
        assert!(ModelArch::Vgg19.is_network_intensive());
        assert!(ModelArch::AlexNet.is_network_intensive());
        assert!(!ModelArch::ResNet50.is_network_intensive());
        assert!(!ModelArch::InceptionV3.is_network_intensive());
        assert!(!ModelArch::network_intensive_pool().is_empty());
        assert!(!ModelArch::compute_intensive_pool().is_empty());
    }

    #[test]
    fn throughput_is_positive_and_monotone_in_gpus() {
        for model in ModelArch::ALL {
            let t1 = model.throughput(1, Locality::Machine);
            let t4 = model.throughput(4, Locality::Machine);
            assert!(t1 > 0.0);
            assert!(t4 > t1, "{model}: 4 GPUs must beat 1 GPU");
        }
    }

    #[test]
    fn pools_partition_the_zoo() {
        let net = ModelArch::network_intensive_pool();
        let comp = ModelArch::compute_intensive_pool();
        assert_eq!(net.len() + comp.len(), ModelArch::ALL.len());
        for m in net {
            assert!(!comp.contains(&m));
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> =
            ModelArch::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), ModelArch::ALL.len());
    }
}

//! ML applications: sets of related hyper-parameter exploration jobs.
//!
//! An app corresponds to one user training a model for a high-level goal
//! (§2.1). It contains one or more jobs, each exploring a different
//! hyper-parameter configuration; the app finishes when the best model has
//! been identified (for a single-job app, when that job converges). Apps are
//! the unit of fairness in Themis: the finish-time fairness metric ρ is
//! computed per app.

use crate::job::JobSpec;
use crate::models::ModelArch;
use serde::{Deserialize, Serialize};
use themis_cluster::ids::{AppId, JobId};
use themis_cluster::placement::Locality;
use themis_cluster::time::Time;

/// Static description of one ML application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// App identifier (unique across the trace).
    pub id: AppId,
    /// Time at which the app is submitted to the cluster.
    pub arrival: Time,
    /// The hyper-parameter exploration jobs making up the app.
    pub jobs: Vec<JobSpec>,
}

impl AppSpec {
    /// Creates an app from its jobs.
    pub fn new(id: AppId, arrival: Time, jobs: Vec<JobSpec>) -> Self {
        assert!(!jobs.is_empty(), "an app must contain at least one job");
        AppSpec { id, arrival, jobs }
    }

    /// Convenience constructor for a single-job app (a user who already
    /// knows the right hyper-parameters).
    pub fn single_job(id: AppId, arrival: Time, job: JobSpec) -> Self {
        AppSpec::new(id, arrival, vec![job])
    }

    /// Number of constituent jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Looks up a job by id.
    pub fn job(&self, id: JobId) -> Option<&JobSpec> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// The model architecture of the app (the paper notes all jobs within an
    /// app share a model structure and therefore placement sensitivity;
    /// §5.2 "Placement sensitivity"). Returns the first job's model.
    pub fn model(&self) -> ModelArch {
        self.jobs[0].model
    }

    /// Whether the app is network intensive (placement sensitive).
    pub fn is_network_intensive(&self) -> bool {
        self.model().is_network_intensive()
    }

    /// Total work across all jobs, in GPU-minutes of serial computation.
    pub fn total_work(&self) -> Time {
        self.jobs
            .iter()
            .fold(Time::ZERO, |acc, j| acc + j.total_work())
    }

    /// Aggregate maximum parallelism across constituent jobs: the most GPUs
    /// the app can productively hold at once.
    pub fn max_parallelism(&self) -> usize {
        self.jobs.iter().map(|j| j.max_parallelism).sum()
    }

    /// The app's **ideal running time** `T_ID`: the running time in a
    /// dedicated (un-shared) cluster, where every exploration job runs
    /// concurrently at its maximum parallelism with perfect placement and
    /// the app completes once the exploration has run its course. With all
    /// jobs in flight simultaneously, that is the slowest job's ideal time
    /// (conservatively ignoring early termination).
    pub fn ideal_running_time(&self) -> Time {
        self.jobs
            .iter()
            .map(|j| j.time_for_work(j.total_work(), j.max_parallelism, Locality::Slot))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The fastest single job's ideal running time — the paper's §5.2
    /// formula `min_j (W_j / G_ideal_j)`, useful when reasoning about the
    /// best configuration in isolation.
    pub fn fastest_job_ideal_time(&self) -> Time {
        self.jobs
            .iter()
            .map(|j| j.time_for_work(j.total_work(), j.max_parallelism, Locality::Slot))
            .min()
            .unwrap_or(Time::ZERO)
    }

    /// A lower bound on the app's finish time if it started now and ran
    /// alone: `arrival + ideal_running_time`.
    pub fn ideal_finish_time(&self) -> Time {
        self.arrival + self.ideal_running_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u32, iters: f64, max_par: usize) -> JobSpec {
        JobSpec::new(
            JobId(id),
            ModelArch::ResNet50,
            iters,
            Time::minutes(0.1),
            max_par,
        )
    }

    #[test]
    fn app_aggregates_jobs() {
        let app = AppSpec::new(
            AppId(0),
            Time::minutes(5.0),
            vec![job(0, 1000.0, 4), job(1, 2000.0, 2)],
        );
        assert_eq!(app.num_jobs(), 2);
        assert_eq!(app.total_work(), Time::minutes(300.0));
        assert_eq!(app.max_parallelism(), 6);
        assert!(app.job(JobId(1)).is_some());
        assert!(app.job(JobId(9)).is_none());
    }

    #[test]
    fn ideal_running_time_is_dedicated_cluster_time() {
        let app = AppSpec::new(
            AppId(0),
            Time::ZERO,
            vec![job(0, 1000.0, 4), job(1, 2000.0, 2)],
        );
        // job0: 100 serial min / 4 = 25; job1: 200 / 2 = 100. All jobs run
        // concurrently in a dedicated cluster → T_ID = 100 (the slowest);
        // the fastest configuration alone would take 25.
        assert_eq!(app.ideal_running_time(), Time::minutes(100.0));
        assert_eq!(app.fastest_job_ideal_time(), Time::minutes(25.0));
        assert_eq!(app.ideal_finish_time(), Time::minutes(100.0));
    }

    #[test]
    fn single_job_constructor() {
        let app = AppSpec::single_job(AppId(3), Time::minutes(1.0), job(0, 100.0, 1));
        assert_eq!(app.num_jobs(), 1);
        assert_eq!(app.ideal_running_time(), Time::minutes(10.0));
        assert_eq!(app.fastest_job_ideal_time(), Time::minutes(10.0));
        assert_eq!(app.ideal_finish_time(), Time::minutes(11.0));
    }

    #[test]
    fn network_intensity_follows_model() {
        let mut vgg_job = job(0, 100.0, 2);
        vgg_job.model = ModelArch::Vgg16;
        let app = AppSpec::single_job(AppId(0), Time::ZERO, vgg_job);
        assert!(app.is_network_intensive());
        let app2 = AppSpec::single_job(AppId(1), Time::ZERO, job(0, 100.0, 2));
        assert!(!app2.is_network_intensive());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_app_rejected() {
        let _ = AppSpec::new(AppId(0), Time::ZERO, vec![]);
    }
}

//! The placement-sensitivity model `S`.
//!
//! The paper models job slowdown from non-ideal placement as a factor
//! `S(G) <= 1` applied to the linear-scaling running time (§5.2, step 3):
//!
//! ```text
//! time = serial_time / (G * S(placement))
//! ```
//!
//! `S` takes one value per network boundary the allocation spans: GPUs in
//! one NVLink slot, GPUs spanning PCIe slots within a machine, GPUs spanning
//! machines in a rack, and GPUs spanning racks. `S → 1` means the model is
//! placement-insensitive (e.g. ResNet50); a small cross-machine `S` means
//! the model is network-intensive (e.g. VGG16).

use serde::{Deserialize, Serialize};
use themis_cluster::placement::Locality;

/// Per-locality slowdown factors, each in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementSensitivity {
    /// Factor when all GPUs share an NVLink slot (usually 1.0).
    pub slot: f64,
    /// Factor when GPUs span PCIe slots of one machine.
    pub machine: f64,
    /// Factor when GPUs span machines within a rack.
    pub rack: f64,
    /// Factor when GPUs span racks.
    pub cross_rack: f64,
}

impl PlacementSensitivity {
    /// A perfectly placement-insensitive profile (`S = 1` everywhere).
    pub const INSENSITIVE: PlacementSensitivity = PlacementSensitivity {
        slot: 1.0,
        machine: 1.0,
        rack: 1.0,
        cross_rack: 1.0,
    };

    /// Creates a profile from the four per-level factors.
    ///
    /// # Panics
    /// Panics unless `1 >= slot >= machine >= rack >= cross_rack > 0`.
    pub fn new(slot: f64, machine: f64, rack: f64, cross_rack: f64) -> Self {
        assert!(
            slot <= 1.0
                && slot >= machine
                && machine >= rack
                && rack >= cross_rack
                && cross_rack > 0.0,
            "sensitivity factors must be monotonically non-increasing in (0, 1]"
        );
        PlacementSensitivity {
            slot,
            machine,
            rack,
            cross_rack,
        }
    }

    /// The slowdown factor for a given locality level.
    pub fn factor(&self, locality: Locality) -> f64 {
        match locality {
            Locality::Slot => self.slot,
            Locality::Machine => self.machine,
            Locality::Rack => self.rack,
            Locality::CrossRack => self.cross_rack,
        }
    }

    /// Effective parallel speedup of `gpus` GPUs placed with the given
    /// locality: `G * S(locality)` (the denominator of the paper's running
    /// time estimate). Returns 0 for zero GPUs. Equivalent to
    /// [`effective_speedup_weighted`](Self::effective_speedup_weighted)
    /// with every GPU at the reference speed 1.0.
    pub fn effective_speedup(&self, gpus: usize, locality: Locality) -> f64 {
        self.effective_speedup_weighted(gpus, gpus as f64, locality)
    }

    /// Effective throughput of a *mixed-generation* allocation:
    /// `G_eff = Σ speed_i × S(locality)`, the heterogeneous generalization
    /// of the paper's `G × S(placement)` model. `gpus` is the number of
    /// GPUs in the allocation and `speed` their aggregate speed
    /// (`Σ speed_i`); at uniform reference speed `speed == gpus as f64` and
    /// this reduces *exactly* (same float operations) to
    /// [`effective_speedup`](Self::effective_speedup).
    ///
    /// A single GPU never pays a communication penalty but still runs at
    /// its own speed. Returns 0 for zero GPUs.
    pub fn effective_speedup_weighted(&self, gpus: usize, speed: f64, locality: Locality) -> f64 {
        if gpus == 0 {
            0.0
        } else if gpus == 1 {
            speed
        } else {
            speed * self.factor(locality)
        }
    }

    /// Whether this profile is "network intensive" in the sense of the
    /// paper's §8.4.1: the model loses more than 30% of its throughput when
    /// its GPUs span machines.
    pub fn is_network_intensive(&self) -> bool {
        self.rack < 0.7
    }

    /// How much slower a cross-machine placement is relative to a
    /// machine-local placement (>= 1).
    pub fn cross_machine_penalty(&self) -> f64 {
        self.machine / self.rack
    }
}

impl Default for PlacementSensitivity {
    fn default() -> Self {
        PlacementSensitivity::INSENSITIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_by_locality() {
        let s = PlacementSensitivity::new(1.0, 0.9, 0.6, 0.4);
        assert_eq!(s.factor(Locality::Slot), 1.0);
        assert_eq!(s.factor(Locality::Machine), 0.9);
        assert_eq!(s.factor(Locality::Rack), 0.6);
        assert_eq!(s.factor(Locality::CrossRack), 0.4);
    }

    #[test]
    fn effective_speedup_scales_with_gpus() {
        let s = PlacementSensitivity::new(1.0, 0.9, 0.6, 0.4);
        assert_eq!(s.effective_speedup(0, Locality::Slot), 0.0);
        assert_eq!(s.effective_speedup(1, Locality::CrossRack), 1.0);
        assert_eq!(s.effective_speedup(4, Locality::Slot), 4.0);
        assert!((s.effective_speedup(4, Locality::Rack) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_generalizes_the_uniform_model() {
        let s = PlacementSensitivity::new(1.0, 0.9, 0.6, 0.4);
        // Unit speed: weighted ≡ unweighted, bit for bit.
        for gpus in 0..6 {
            for loc in Locality::ALL {
                assert_eq!(
                    s.effective_speedup_weighted(gpus, gpus as f64, loc),
                    s.effective_speedup(gpus, loc)
                );
            }
        }
        // Two 2.0-speed GPUs spanning machines: 4.0 × 0.9.
        assert!((s.effective_speedup_weighted(2, 4.0, Locality::Machine) - 3.6).abs() < 1e-12);
        // A lone fast GPU pays no communication penalty.
        assert_eq!(
            s.effective_speedup_weighted(1, 2.0, Locality::CrossRack),
            2.0
        );
        assert_eq!(s.effective_speedup_weighted(0, 0.0, Locality::Slot), 0.0);
    }

    #[test]
    fn network_intensive_classification() {
        let vgg_like = PlacementSensitivity::new(1.0, 0.9, 0.5, 0.35);
        let resnet_like = PlacementSensitivity::new(1.0, 0.98, 0.95, 0.9);
        assert!(vgg_like.is_network_intensive());
        assert!(!resnet_like.is_network_intensive());
        assert!(vgg_like.cross_machine_penalty() > resnet_like.cross_machine_penalty());
    }

    #[test]
    fn insensitive_profile_never_slows_down() {
        let s = PlacementSensitivity::INSENSITIVE;
        for loc in Locality::ALL {
            assert_eq!(s.factor(loc), 1.0);
        }
        assert_eq!(s.effective_speedup(8, Locality::CrossRack), 8.0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn non_monotone_rejected() {
        let _ = PlacementSensitivity::new(1.0, 0.5, 0.9, 0.2);
    }
}

//! Static cluster topology: racks, machines, GPUs and NVLink slots.
//!
//! The topology is immutable once built. Mutable allocation state lives in
//! [`crate::cluster::Cluster`], which wraps a [`ClusterSpec`].
//!
//! The paper evaluates Themis on two clusters:
//!
//! * a simulated, heterogeneously constructed **256-GPU** cluster with a
//!   mixture of 4-GPU, 2-GPU and 1-GPU machines spread across multiple
//!   racks ([`ClusterSpec::heterogeneous_256`]), and
//! * a **50-GPU** Azure testbed of NC/NV instances with 1/2/4 GPUs each
//!   ([`ClusterSpec::testbed_50`]).

use crate::alloc::GpuAlloc;
use crate::ids::{GpuId, MachineId, RackId};
use serde::{Deserialize, Serialize};

/// The *generation* (speed class) of a machine's GPUs.
///
/// Real AI clusters are accreted over hardware generations, so a scheduler
/// sees a mix of GPU speeds rather than the paper's uniform fleet. A
/// generation is the speed dimension of heterogeneity: a GPU of generation
/// `g` retires serial work `g.speed()` times as fast as the reference
/// generation, so an allocation's effective throughput is
/// `G_eff = Σ speed_i × S(placement)` instead of `G × S(placement)`.
///
/// Generation is deliberately orthogonal to [`GpuModel`]: the model is a
/// hardware *label* used for reporting, while the generation is the
/// *performance class* the schedulers act on. Every constructor defaults to
/// [`GpuGeneration::Pascal`] (speed 1.0), which reproduces the paper's
/// uniform-speed assumption exactly — speed 1.0 everywhere is
/// observationally pure by construction.
///
/// ```
/// use themis_cluster::topology::GpuGeneration;
///
/// assert_eq!(GpuGeneration::default().speed(), 1.0);
/// assert_eq!(GpuGeneration::Volta.speed(), 2.0);
/// assert_eq!(GpuGeneration::parse("ampere"), Some(GpuGeneration::Ampere));
/// // Generations order by speed.
/// assert!(GpuGeneration::Kepler.speed() < GpuGeneration::Ampere.speed());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum GpuGeneration {
    /// Legacy Kepler-class hardware: half the reference speed.
    Kepler,
    /// Pascal-class (the paper's P100 era): the 1.0 reference speed.
    #[default]
    Pascal,
    /// Volta-class: twice the reference speed.
    Volta,
    /// Ampere-class: three times the reference speed.
    Ampere,
}

impl GpuGeneration {
    /// Every generation, oldest (slowest) first.
    pub const ALL: [GpuGeneration; 4] = [
        GpuGeneration::Kepler,
        GpuGeneration::Pascal,
        GpuGeneration::Volta,
        GpuGeneration::Ampere,
    ];

    /// Relative speed factor: serial work retired per unit time, normalized
    /// to the Pascal reference generation.
    pub fn speed(self) -> f64 {
        match self {
            GpuGeneration::Kepler => 0.5,
            GpuGeneration::Pascal => 1.0,
            GpuGeneration::Volta => 2.0,
            GpuGeneration::Ampere => 3.0,
        }
    }

    /// Stable lower-case identifier used in scenario ids and JSON.
    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::Kepler => "kepler",
            GpuGeneration::Pascal => "pascal",
            GpuGeneration::Volta => "volta",
            GpuGeneration::Ampere => "ampere",
        }
    }

    /// Parses the identifier produced by [`GpuGeneration::name`].
    pub fn parse(name: &str) -> Option<GpuGeneration> {
        GpuGeneration::ALL.into_iter().find(|g| g.name() == name)
    }
}

impl std::fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The hardware model of a GPU. Only used for reporting and for modelling
/// heterogeneous clusters; the scheduler treats all GPUs of a machine as
/// interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GpuModel {
    /// NVIDIA Tesla K80 (used in the paper's NC-series testbed instances).
    TeslaK80,
    /// NVIDIA Tesla M60 (used in the paper's NV-series testbed instances).
    TeslaM60,
    /// NVIDIA Tesla P100 (used in the paper's Figure 2 profiling).
    TeslaP100,
    /// NVIDIA Tesla V100.
    TeslaV100,
    /// A generic GPU when the model does not matter.
    #[default]
    Generic,
}

/// Description of a single machine: how many GPUs it has, how they are
/// grouped into NVLink slots, and which rack it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine identifier (dense, assigned by the builder).
    pub id: MachineId,
    /// Rack this machine lives in.
    pub rack: RackId,
    /// Global ids of the GPUs on this machine, in slot order.
    pub gpus: Vec<GpuId>,
    /// Number of GPUs per NVLink slot. GPUs within a slot communicate over
    /// NVLink; GPUs in different slots of the same machine communicate over
    /// PCIe. A `slot_size` >= `gpus.len()` means the whole machine is one
    /// slot.
    pub slot_size: usize,
    /// The GPU hardware model installed in this machine.
    pub gpu_model: GpuModel,
    /// The GPU generation (speed class) of this machine. All GPUs of one
    /// machine share a generation — clusters are bought machine-at-a-time.
    pub generation: GpuGeneration,
}

impl MachineSpec {
    /// Number of GPUs on this machine.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The speed factor shared by every GPU on this machine.
    pub fn speed(&self) -> f64 {
        self.generation.speed()
    }

    /// The slot index (within this machine) of a GPU, or `None` if the GPU
    /// is not on this machine.
    ///
    /// O(1) for builder-assigned specs: the builder hands out consecutive
    /// GPU ids per machine, so the position is an offset from the first id.
    /// A hand-built spec with non-contiguous ids falls back to a scan.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        let first = self.gpus.first()?;
        let offset_hit = (gpu.0 as usize)
            .checked_sub(first.0 as usize)
            .filter(|offset| self.gpus.get(*offset) == Some(&gpu));
        let idx = match offset_hit {
            Some(offset) => offset,
            None => self.gpus.iter().position(|g| *g == gpu)?,
        };
        Some(idx / self.slot_size.max(1))
    }
}

/// Precomputed location of one GPU: its machine, rack, NVLink slot and
/// generation (speed class). Built once by the [`ClusterSpecBuilder`], so
/// placement scoring and speed lookups never have to scan a machine's GPU
/// list at auction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuLocation {
    /// Machine holding the GPU.
    pub machine: MachineId,
    /// Rack the machine lives in.
    pub rack: RackId,
    /// NVLink slot index within the machine.
    pub slot: u32,
    /// Generation (speed class) of the GPU, inherited from its machine.
    pub generation: GpuGeneration,
}

impl GpuLocation {
    /// The GPU's speed factor.
    pub fn speed(&self) -> f64 {
        self.generation.speed()
    }
}

/// Description of a rack: a set of machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Rack identifier.
    pub id: RackId,
    /// Machines in this rack.
    pub machines: Vec<MachineId>,
}

/// Immutable description of an entire cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    machines: Vec<MachineSpec>,
    racks: Vec<RackSpec>,
    /// gpu index -> (machine, rack, slot, generation) (dense lookup).
    gpu_locations: Vec<GpuLocation>,
    /// `Some(g)` when every machine shares generation `g` — the fast path
    /// for speed queries on uniform clusters (including every paper-shaped
    /// spec, which is all-Pascal).
    uniform_generation: Option<GpuGeneration>,
}

impl ClusterSpec {
    /// Starts building a cluster specification.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// All machines in the cluster, ordered by id.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// All racks in the cluster, ordered by id.
    pub fn racks(&self) -> &[RackSpec] {
        &self.racks
    }

    /// Looks up a machine by id.
    pub fn machine(&self, id: MachineId) -> Option<&MachineSpec> {
        self.machines.get(id.index())
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.gpu_locations.len()
    }

    /// Total number of machines in the cluster.
    pub fn total_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total number of racks in the cluster.
    pub fn total_racks(&self) -> usize {
        self.racks.len()
    }

    /// The machine a GPU belongs to, or `None` for an unknown GPU.
    pub fn machine_of(&self, gpu: GpuId) -> Option<MachineId> {
        self.gpu_locations.get(gpu.index()).map(|l| l.machine)
    }

    /// The rack a GPU belongs to, or `None` for an unknown GPU.
    pub fn rack_of(&self, gpu: GpuId) -> Option<RackId> {
        self.gpu_locations.get(gpu.index()).map(|l| l.rack)
    }

    /// The NVLink slot index (within its machine) of a GPU, or `None` for
    /// an unknown GPU. O(1) via the precomputed location table.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        self.gpu_locations.get(gpu.index()).map(|l| l.slot as usize)
    }

    /// The full precomputed location of a GPU, or `None` for an unknown GPU.
    pub fn location_of(&self, gpu: GpuId) -> Option<GpuLocation> {
        self.gpu_locations.get(gpu.index()).copied()
    }

    /// The generation (speed class) of a GPU, or `None` for an unknown GPU.
    pub fn generation_of(&self, gpu: GpuId) -> Option<GpuGeneration> {
        self.gpu_locations.get(gpu.index()).map(|l| l.generation)
    }

    /// The speed factor of a GPU, or `None` for an unknown GPU. O(1) via
    /// the precomputed location table.
    pub fn speed_of(&self, gpu: GpuId) -> Option<f64> {
        self.generation_of(gpu).map(GpuGeneration::speed)
    }

    /// The speed factor shared by every GPU of a machine, or `None` for an
    /// unknown machine.
    pub fn machine_speed(&self, machine: MachineId) -> Option<f64> {
        self.machine(machine).map(MachineSpec::speed)
    }

    /// `Some(g)` when every machine in the cluster shares generation `g`
    /// (a *uniform-speed* cluster — the paper's assumption), else `None`.
    pub fn uniform_generation(&self) -> Option<GpuGeneration> {
        self.uniform_generation
    }

    /// Whether every GPU runs at the reference speed 1.0. All paper-shaped
    /// constructors produce such clusters; the speed-aware scheduling paths
    /// are observationally pure on them.
    pub fn is_unit_speed(&self) -> bool {
        self.uniform_generation == Some(GpuGeneration::Pascal)
    }

    /// Aggregate speed of every GPU in the cluster — the heterogeneous
    /// generalization of [`ClusterSpec::total_gpus`] (equal to it on a
    /// unit-speed cluster).
    pub fn total_speed(&self) -> f64 {
        match self.uniform_generation {
            Some(g) => g.speed() * self.total_gpus() as f64,
            None => self.gpu_locations.iter().map(|l| l.speed()).sum(),
        }
    }

    /// Aggregate speed of the `cap` *fastest* GPUs in `alloc` (all of them
    /// when `cap >= alloc.len()`). This is the `Σ speed_i` term of the
    /// effective-throughput model `G_eff = Σ speed_i × S(placement)` for a
    /// job whose usable parallelism is `cap`: GPUs beyond the cap are
    /// wasted, and the optimistic assumption is the job's tasks land on the
    /// fastest GPUs it holds. On a uniform cluster this is
    /// `min(len, cap) × speed` exactly — `min(len, cap) as f64` at unit
    /// speed, which is what keeps the weighted scheduling paths
    /// byte-identical to the unweighted ones.
    pub fn capped_speed(&self, alloc: &GpuAlloc, cap: usize) -> f64 {
        let usable = alloc.len().min(cap);
        if usable == 0 {
            return 0.0;
        }
        if let Some(g) = self.uniform_generation {
            return g.speed() * usable as f64;
        }
        if alloc.len() <= cap {
            return alloc.iter().map(|g| self.speed_of(g).unwrap_or(1.0)).sum();
        }
        let mut speeds: Vec<f64> = alloc
            .iter()
            .map(|g| self.speed_of(g).unwrap_or(1.0))
            .collect();
        speeds.sort_unstable_by(|a, b| b.total_cmp(a));
        speeds.into_iter().take(cap).sum()
    }

    /// Returns a copy of this spec with machine generations reassigned
    /// round-robin from `cycle` in machine-id order (machine `m` gets
    /// `cycle[m % cycle.len()]`). This is how the scenario matrix turns any
    /// base topology into a mixed-generation cluster; a one-element
    /// `[Pascal]` cycle reproduces the uniform-speed spec exactly.
    ///
    /// ```
    /// use themis_cluster::topology::{ClusterSpec, GpuGeneration};
    ///
    /// let base = ClusterSpec::synthetic(1, 4, 2);
    /// // Alternate fast Volta and reference Pascal machines, 2:1 in speed.
    /// let mixed = base
    ///     .clone()
    ///     .with_generation_cycle(&[GpuGeneration::Volta, GpuGeneration::Pascal]);
    /// assert_eq!(mixed.uniform_generation(), None);
    /// assert_eq!(mixed.total_speed(), 2.0 * 4.0 + 1.0 * 4.0);
    /// // A [Pascal] cycle is the identity on paper-shaped specs.
    /// assert_eq!(
    ///     base.clone().with_generation_cycle(&[GpuGeneration::Pascal]),
    ///     base
    /// );
    /// ```
    ///
    /// # Panics
    /// Panics on an empty cycle.
    pub fn with_generation_cycle(mut self, cycle: &[GpuGeneration]) -> ClusterSpec {
        assert!(
            !cycle.is_empty(),
            "a generation cycle needs at least one generation"
        );
        for machine in &mut self.machines {
            machine.generation = cycle[machine.id.index() % cycle.len()];
        }
        for location in &mut self.gpu_locations {
            location.generation = self.machines[location.machine.index()].generation;
        }
        self.uniform_generation = uniform_generation_of(&self.machines);
        self
    }

    /// Per-generation machine counts, oldest generation first — the speed
    /// metadata the sweep reports record per cell.
    pub fn generation_counts(&self) -> Vec<(GpuGeneration, usize)> {
        GpuGeneration::ALL
            .into_iter()
            .filter_map(|g| {
                let count = self.machines.iter().filter(|m| m.generation == g).count();
                (count > 0).then_some((g, count))
            })
            .collect()
    }

    /// Iterates over every GPU id in the cluster.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.total_gpus() as u32).map(GpuId)
    }

    /// The paper's simulated cluster: a heterogeneously constructed 256-GPU
    /// cluster with a mixture of 4-GPU, 2-GPU and 1-GPU machines spread
    /// across multiple racks (§8.1).
    ///
    /// Layout: 4 racks, each with 12 × 4-GPU machines, 6 × 2-GPU machines
    /// and 4 × 1-GPU machines = 64 GPUs per rack, 256 GPUs total.
    pub fn heterogeneous_256() -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..4 {
            b = b.rack(|r| {
                r.machines_with(12, 4, 2, GpuModel::TeslaP100)
                    .machines_with(6, 2, 2, GpuModel::TeslaP100)
                    .machines_with(4, 1, 1, GpuModel::TeslaP100)
            });
        }
        b.build()
    }

    /// The paper's testbed: 50 GPUs spread across 20 Azure NC/NV instances
    /// with 1, 2 or 4 GPUs each (§8.1).
    ///
    /// Layout: 2 racks; 10 machines per rack; per rack: 4 × 4-GPU (K80),
    /// 3 × 2-GPU (M60), 3 × 1-GPU (M60) = 25 GPUs per rack, 50 total across
    /// 20 instances.
    pub fn testbed_50() -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..2 {
            b = b.rack(|r| {
                r.machines_with(4, 4, 2, GpuModel::TeslaK80)
                    .machines_with(3, 2, 2, GpuModel::TeslaM60)
                    .machines_with(3, 1, 1, GpuModel::TeslaM60)
            });
        }
        b.build()
    }

    /// A homogeneous cluster: `racks` racks of `machines_per_rack` machines
    /// with `gpus_per_machine` GPUs each. Useful for unit tests and
    /// micro-benchmarks.
    pub fn homogeneous(
        racks: usize,
        machines_per_rack: usize,
        gpus_per_machine: usize,
    ) -> ClusterSpec {
        ClusterSpec::synthetic(racks, machines_per_rack, gpus_per_machine)
    }

    /// A synthetic homogeneous cluster for scale studies beyond the paper's
    /// 256 GPUs: `racks` racks × `machines_per_rack` machines ×
    /// `gpus_per_machine` GPUs (generic GPU model, one NVLink slot per GPU
    /// pair). The `scale` scenario matrix builds its 1024- and 4096-GPU
    /// clusters with this constructor.
    ///
    /// ```
    /// use themis_cluster::topology::ClusterSpec;
    ///
    /// // The scale matrix's 1024-GPU cluster: 16 racks × 16 machines × 4.
    /// let spec = ClusterSpec::synthetic(16, 16, 4);
    /// assert_eq!(spec.total_gpus(), 1024);
    /// assert_eq!(spec.total_machines(), 256);
    /// assert_eq!(spec.total_racks(), 16);
    /// // Synthetic clusters are uniform-speed (the paper's assumption):
    /// assert!(spec.is_unit_speed());
    /// assert_eq!(spec.total_speed(), 1024.0);
    /// ```
    pub fn synthetic(
        racks: usize,
        machines_per_rack: usize,
        gpus_per_machine: usize,
    ) -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..racks {
            b = b.rack(|r| r.machines(machines_per_rack, gpus_per_machine));
        }
        b.build()
    }

    /// A synthetic *mixed-generation* cluster: the same topology as
    /// [`ClusterSpec::synthetic`], with machine generations assigned
    /// round-robin from `cycle` (see
    /// [`ClusterSpec::with_generation_cycle`]).
    ///
    /// ```
    /// use themis_cluster::topology::{ClusterSpec, GpuGeneration};
    ///
    /// // A three-generation 16-GPU rack: Volta / Pascal / Kepler machines.
    /// let spec = ClusterSpec::synthetic_mixed(
    ///     1,
    ///     4,
    ///     4,
    ///     &[GpuGeneration::Volta, GpuGeneration::Pascal, GpuGeneration::Kepler],
    /// );
    /// assert_eq!(spec.total_gpus(), 16);
    /// // Machines 0..4 get Volta, Pascal, Kepler, Volta.
    /// assert_eq!(spec.total_speed(), (2.0 + 1.0 + 0.5 + 2.0) * 4.0);
    /// assert!(!spec.is_unit_speed());
    /// ```
    pub fn synthetic_mixed(
        racks: usize,
        machines_per_rack: usize,
        gpus_per_machine: usize,
        cycle: &[GpuGeneration],
    ) -> ClusterSpec {
        ClusterSpec::synthetic(racks, machines_per_rack, gpus_per_machine)
            .with_generation_cycle(cycle)
    }
}

/// `Some(g)` when every machine shares generation `g`. An empty cluster is
/// uniformly the default generation.
fn uniform_generation_of(machines: &[MachineSpec]) -> Option<GpuGeneration> {
    let first = machines.first().map(|m| m.generation).unwrap_or_default();
    machines
        .iter()
        .all(|m| m.generation == first)
        .then_some(first)
}

/// Builder for [`ClusterSpec`].
#[derive(Debug, Default)]
pub struct ClusterSpecBuilder {
    racks: Vec<RackBuilder>,
}

impl ClusterSpecBuilder {
    /// Adds a rack described by the closure.
    pub fn rack(mut self, f: impl FnOnce(RackBuilder) -> RackBuilder) -> Self {
        self.racks.push(f(RackBuilder::default()));
        self
    }

    /// Finalizes the specification, assigning dense machine / GPU ids in
    /// declaration order.
    pub fn build(self) -> ClusterSpec {
        let mut machines = Vec::new();
        let mut racks = Vec::new();
        let mut gpu_locations = Vec::new();
        let mut next_gpu = 0u32;
        let mut next_machine = 0u32;

        for (rack_idx, rack) in self.racks.into_iter().enumerate() {
            let rack_id = RackId(rack_idx as u32);
            let mut rack_machines = Vec::new();
            for group in rack.groups {
                let slot_size = group.slot_size.max(1);
                for _ in 0..group.count {
                    let machine_id = MachineId(next_machine);
                    next_machine += 1;
                    let gpus: Vec<GpuId> = (0..group.gpus_per_machine)
                        .map(|slot_idx| {
                            let id = GpuId(next_gpu);
                            next_gpu += 1;
                            gpu_locations.push(GpuLocation {
                                machine: machine_id,
                                rack: rack_id,
                                slot: (slot_idx / slot_size) as u32,
                                generation: group.generation,
                            });
                            id
                        })
                        .collect();
                    machines.push(MachineSpec {
                        id: machine_id,
                        rack: rack_id,
                        gpus,
                        slot_size: group.slot_size,
                        gpu_model: group.gpu_model,
                        generation: group.generation,
                    });
                    rack_machines.push(machine_id);
                }
            }
            racks.push(RackSpec {
                id: rack_id,
                machines: rack_machines,
            });
        }

        let uniform_generation = uniform_generation_of(&machines);
        ClusterSpec {
            machines,
            racks,
            gpu_locations,
            uniform_generation,
        }
    }
}

/// Builder for a single rack within a [`ClusterSpecBuilder`].
#[derive(Debug, Default)]
pub struct RackBuilder {
    groups: Vec<MachineGroup>,
}

#[derive(Debug)]
struct MachineGroup {
    count: usize,
    gpus_per_machine: usize,
    slot_size: usize,
    gpu_model: GpuModel,
    generation: GpuGeneration,
}

impl RackBuilder {
    /// Adds `count` machines with `gpus_per_machine` GPUs each (one NVLink
    /// slot per pair of GPUs, generic GPU model, reference generation).
    pub fn machines(self, count: usize, gpus_per_machine: usize) -> Self {
        self.machines_with(count, gpus_per_machine, 2, GpuModel::Generic)
    }

    /// Adds `count` machines with full control over slot size and GPU
    /// model, at the reference generation (speed 1.0).
    pub fn machines_with(
        self,
        count: usize,
        gpus_per_machine: usize,
        slot_size: usize,
        gpu_model: GpuModel,
    ) -> Self {
        self.machines_of_generation(
            count,
            gpus_per_machine,
            slot_size,
            gpu_model,
            GpuGeneration::default(),
        )
    }

    /// Adds `count` machines with full control over slot size, GPU model
    /// and generation (speed class).
    pub fn machines_of_generation(
        mut self,
        count: usize,
        gpus_per_machine: usize,
        slot_size: usize,
        gpu_model: GpuModel,
        generation: GpuGeneration,
    ) -> Self {
        assert!(gpus_per_machine > 0, "machines must have at least one GPU");
        assert!(slot_size > 0, "slot size must be at least one GPU");
        self.groups.push(MachineGroup {
            count,
            gpus_per_machine,
            slot_size,
            gpu_model,
            generation,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let spec = ClusterSpec::builder()
            .rack(|r| r.machines(2, 4))
            .rack(|r| r.machines(1, 2))
            .build();
        assert_eq!(spec.total_machines(), 3);
        assert_eq!(spec.total_gpus(), 10);
        assert_eq!(spec.total_racks(), 2);
        assert_eq!(spec.machine_of(GpuId(0)), Some(MachineId(0)));
        assert_eq!(spec.machine_of(GpuId(7)), Some(MachineId(1)));
        assert_eq!(spec.machine_of(GpuId(8)), Some(MachineId(2)));
        assert_eq!(spec.machine_of(GpuId(10)), None);
        assert_eq!(spec.rack_of(GpuId(9)), Some(RackId(1)));
    }

    #[test]
    fn heterogeneous_256_has_256_gpus() {
        let spec = ClusterSpec::heterogeneous_256();
        assert_eq!(spec.total_gpus(), 256);
        assert_eq!(spec.total_racks(), 4);
        // Mixture of machine sizes.
        let sizes: std::collections::BTreeSet<usize> =
            spec.machines().iter().map(|m| m.num_gpus()).collect();
        assert_eq!(sizes, [1usize, 2, 4].into_iter().collect());
    }

    #[test]
    fn testbed_50_matches_paper() {
        let spec = ClusterSpec::testbed_50();
        assert_eq!(spec.total_gpus(), 50);
        assert_eq!(spec.total_machines(), 20);
        let k80s = spec
            .machines()
            .iter()
            .filter(|m| m.gpu_model == GpuModel::TeslaK80)
            .count();
        assert_eq!(k80s, 8);
    }

    #[test]
    fn slot_of_groups_gpus() {
        let spec = ClusterSpec::builder()
            .rack(|r| r.machines_with(1, 4, 2, GpuModel::Generic))
            .build();
        let m = spec.machine(MachineId(0)).unwrap();
        assert_eq!(m.slot_of(GpuId(0)), Some(0));
        assert_eq!(m.slot_of(GpuId(1)), Some(0));
        assert_eq!(m.slot_of(GpuId(2)), Some(1));
        assert_eq!(m.slot_of(GpuId(3)), Some(1));
        assert_eq!(m.slot_of(GpuId(4)), None);
    }

    #[test]
    fn homogeneous_builder() {
        let spec = ClusterSpec::homogeneous(2, 3, 4);
        assert_eq!(spec.total_gpus(), 24);
        assert!(spec.machines().iter().all(|m| m.num_gpus() == 4));
    }

    #[test]
    fn synthetic_scales_to_thousands_of_gpus() {
        let spec = ClusterSpec::synthetic(16, 16, 4);
        assert_eq!(spec.total_gpus(), 1024);
        assert_eq!(spec.total_machines(), 256);
        assert_eq!(spec.total_racks(), 16);
        // The dense lookup covers the last GPU too.
        assert_eq!(spec.machine_of(GpuId(1023)), Some(MachineId(255)));
        assert_eq!(spec.rack_of(GpuId(1023)), Some(RackId(15)));
    }

    #[test]
    fn precomputed_locations_match_machine_lookup() {
        let spec = ClusterSpec::heterogeneous_256();
        for gpu in spec.all_gpus() {
            let loc = spec.location_of(gpu).expect("gpu exists");
            let machine = spec.machine(loc.machine).expect("machine exists");
            assert!(machine.gpus.contains(&gpu));
            assert_eq!(machine.rack, loc.rack);
            assert_eq!(machine.slot_of(gpu), Some(loc.slot as usize));
            assert_eq!(spec.slot_of(gpu), Some(loc.slot as usize));
        }
        assert_eq!(spec.location_of(GpuId(256)), None);
        assert_eq!(spec.slot_of(GpuId(256)), None);
    }

    #[test]
    fn slot_of_handles_non_contiguous_specs() {
        // A hand-built machine whose GPU ids are not consecutive: the O(1)
        // offset fast path misses and the fallback scan must still answer.
        let machine = MachineSpec {
            id: MachineId(0),
            rack: RackId(0),
            gpus: vec![GpuId(3), GpuId(7), GpuId(9), GpuId(12)],
            slot_size: 2,
            gpu_model: GpuModel::Generic,
            generation: GpuGeneration::default(),
        };
        assert_eq!(machine.slot_of(GpuId(3)), Some(0));
        assert_eq!(machine.slot_of(GpuId(7)), Some(0));
        assert_eq!(machine.slot_of(GpuId(9)), Some(1));
        assert_eq!(machine.slot_of(GpuId(12)), Some(1));
        assert_eq!(machine.slot_of(GpuId(8)), None);
        assert_eq!(machine.slot_of(GpuId(0)), None);
        // An *unsorted* hand-built list: ids smaller than gpus[0] make the
        // offset subtraction underflow, and the scan must still find them.
        let unsorted = MachineSpec {
            gpus: vec![GpuId(5), GpuId(3)],
            ..machine
        };
        assert_eq!(unsorted.slot_of(GpuId(5)), Some(0));
        assert_eq!(unsorted.slot_of(GpuId(3)), Some(0));
        assert_eq!(unsorted.slot_of(GpuId(4)), None);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_machines_rejected() {
        let _ = ClusterSpec::builder().rack(|r| r.machines(1, 0)).build();
    }

    #[test]
    fn all_gpus_iterates_everything() {
        let spec = ClusterSpec::homogeneous(1, 2, 2);
        let gpus: Vec<GpuId> = spec.all_gpus().collect();
        assert_eq!(gpus, vec![GpuId(0), GpuId(1), GpuId(2), GpuId(3)]);
    }

    #[test]
    fn default_specs_are_unit_speed() {
        for spec in [
            ClusterSpec::heterogeneous_256(),
            ClusterSpec::testbed_50(),
            ClusterSpec::synthetic(2, 2, 4),
        ] {
            assert_eq!(spec.uniform_generation(), Some(GpuGeneration::Pascal));
            assert!(spec.is_unit_speed());
            assert_eq!(spec.total_speed(), spec.total_gpus() as f64);
            for gpu in spec.all_gpus() {
                assert_eq!(spec.speed_of(gpu), Some(1.0));
            }
            assert_eq!(spec.generation_counts().len(), 1);
        }
    }

    #[test]
    fn generation_cycle_assigns_round_robin() {
        let spec =
            ClusterSpec::synthetic_mixed(1, 4, 2, &[GpuGeneration::Volta, GpuGeneration::Pascal]);
        assert_eq!(
            spec.machine(MachineId(0)).unwrap().generation,
            GpuGeneration::Volta
        );
        assert_eq!(
            spec.machine(MachineId(1)).unwrap().generation,
            GpuGeneration::Pascal
        );
        assert_eq!(spec.machine_speed(MachineId(2)), Some(2.0));
        assert_eq!(spec.uniform_generation(), None);
        assert!(!spec.is_unit_speed());
        // Per-GPU speeds follow the machine, via the dense location table.
        assert_eq!(spec.speed_of(GpuId(0)), Some(2.0));
        assert_eq!(spec.speed_of(GpuId(2)), Some(1.0));
        assert_eq!(spec.speed_of(GpuId(99)), None);
        assert_eq!(
            spec.total_speed(),
            2.0 * 2.0 + 1.0 * 2.0 + 2.0 * 2.0 + 1.0 * 2.0
        );
        let counts = spec.generation_counts();
        assert_eq!(
            counts,
            vec![(GpuGeneration::Pascal, 2), (GpuGeneration::Volta, 2)]
        );
        // Locations stay consistent with machines after the rewrite.
        for gpu in spec.all_gpus() {
            let loc = spec.location_of(gpu).unwrap();
            assert_eq!(
                loc.generation,
                spec.machine(loc.machine).unwrap().generation
            );
            assert_eq!(loc.speed(), spec.speed_of(gpu).unwrap());
        }
    }

    #[test]
    fn capped_speed_prefers_fastest_gpus() {
        let spec =
            ClusterSpec::synthetic_mixed(1, 2, 2, &[GpuGeneration::Kepler, GpuGeneration::Volta]);
        // GPUs 0,1 are Kepler (0.5); GPUs 2,3 are Volta (2.0).
        let all = GpuAlloc::from_gpus([GpuId(0), GpuId(1), GpuId(2), GpuId(3)]);
        assert_eq!(spec.capped_speed(&all, 4), 5.0);
        // Capped at 2, the two Volta GPUs are counted.
        assert_eq!(spec.capped_speed(&all, 2), 4.0);
        assert_eq!(spec.capped_speed(&all, 0), 0.0);
        assert_eq!(spec.capped_speed(&GpuAlloc::empty(), 4), 0.0);
        // Uniform fast path: exact integer arithmetic at unit speed.
        let uniform = ClusterSpec::synthetic(1, 2, 2);
        assert_eq!(spec.capped_speed(&all, 3), 4.5);
        assert_eq!(uniform.capped_speed(&all, 3), 3.0);
    }

    #[test]
    fn generation_names_round_trip() {
        for generation in GpuGeneration::ALL {
            assert_eq!(GpuGeneration::parse(generation.name()), Some(generation));
            assert!(generation.speed() > 0.0);
            assert_eq!(generation.to_string(), generation.name());
        }
        assert_eq!(GpuGeneration::parse("hopper"), None);
        assert_eq!(GpuGeneration::default(), GpuGeneration::Pascal);
    }

    #[test]
    #[should_panic(expected = "at least one generation")]
    fn empty_generation_cycle_rejected() {
        let _ = ClusterSpec::synthetic(1, 1, 1).with_generation_cycle(&[]);
    }
}

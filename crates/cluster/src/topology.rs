//! Static cluster topology: racks, machines, GPUs and NVLink slots.
//!
//! The topology is immutable once built. Mutable allocation state lives in
//! [`crate::cluster::Cluster`], which wraps a [`ClusterSpec`].
//!
//! The paper evaluates Themis on two clusters:
//!
//! * a simulated, heterogeneously constructed **256-GPU** cluster with a
//!   mixture of 4-GPU, 2-GPU and 1-GPU machines spread across multiple
//!   racks ([`ClusterSpec::heterogeneous_256`]), and
//! * a **50-GPU** Azure testbed of NC/NV instances with 1/2/4 GPUs each
//!   ([`ClusterSpec::testbed_50`]).

use crate::ids::{GpuId, MachineId, RackId};
use serde::{Deserialize, Serialize};

/// The hardware model of a GPU. Only used for reporting and for modelling
/// heterogeneous clusters; the scheduler treats all GPUs of a machine as
/// interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GpuModel {
    /// NVIDIA Tesla K80 (used in the paper's NC-series testbed instances).
    TeslaK80,
    /// NVIDIA Tesla M60 (used in the paper's NV-series testbed instances).
    TeslaM60,
    /// NVIDIA Tesla P100 (used in the paper's Figure 2 profiling).
    TeslaP100,
    /// NVIDIA Tesla V100.
    TeslaV100,
    /// A generic GPU when the model does not matter.
    #[default]
    Generic,
}

/// Description of a single machine: how many GPUs it has, how they are
/// grouped into NVLink slots, and which rack it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine identifier (dense, assigned by the builder).
    pub id: MachineId,
    /// Rack this machine lives in.
    pub rack: RackId,
    /// Global ids of the GPUs on this machine, in slot order.
    pub gpus: Vec<GpuId>,
    /// Number of GPUs per NVLink slot. GPUs within a slot communicate over
    /// NVLink; GPUs in different slots of the same machine communicate over
    /// PCIe. A `slot_size` >= `gpus.len()` means the whole machine is one
    /// slot.
    pub slot_size: usize,
    /// The GPU hardware model installed in this machine.
    pub gpu_model: GpuModel,
}

impl MachineSpec {
    /// Number of GPUs on this machine.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The slot index (within this machine) of a GPU, or `None` if the GPU
    /// is not on this machine.
    ///
    /// O(1) for builder-assigned specs: the builder hands out consecutive
    /// GPU ids per machine, so the position is an offset from the first id.
    /// A hand-built spec with non-contiguous ids falls back to a scan.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        let first = self.gpus.first()?;
        let offset_hit = (gpu.0 as usize)
            .checked_sub(first.0 as usize)
            .filter(|offset| self.gpus.get(*offset) == Some(&gpu));
        let idx = match offset_hit {
            Some(offset) => offset,
            None => self.gpus.iter().position(|g| *g == gpu)?,
        };
        Some(idx / self.slot_size.max(1))
    }
}

/// Precomputed location of one GPU: its machine, rack and NVLink slot.
/// Built once by the [`ClusterSpecBuilder`], so placement scoring never
/// has to scan a machine's GPU list at auction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuLocation {
    /// Machine holding the GPU.
    pub machine: MachineId,
    /// Rack the machine lives in.
    pub rack: RackId,
    /// NVLink slot index within the machine.
    pub slot: u32,
}

/// Description of a rack: a set of machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Rack identifier.
    pub id: RackId,
    /// Machines in this rack.
    pub machines: Vec<MachineId>,
}

/// Immutable description of an entire cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    machines: Vec<MachineSpec>,
    racks: Vec<RackSpec>,
    /// gpu index -> (machine, rack, slot) (dense lookup).
    gpu_locations: Vec<GpuLocation>,
}

impl ClusterSpec {
    /// Starts building a cluster specification.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// All machines in the cluster, ordered by id.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// All racks in the cluster, ordered by id.
    pub fn racks(&self) -> &[RackSpec] {
        &self.racks
    }

    /// Looks up a machine by id.
    pub fn machine(&self, id: MachineId) -> Option<&MachineSpec> {
        self.machines.get(id.index())
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.gpu_locations.len()
    }

    /// Total number of machines in the cluster.
    pub fn total_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total number of racks in the cluster.
    pub fn total_racks(&self) -> usize {
        self.racks.len()
    }

    /// The machine a GPU belongs to, or `None` for an unknown GPU.
    pub fn machine_of(&self, gpu: GpuId) -> Option<MachineId> {
        self.gpu_locations.get(gpu.index()).map(|l| l.machine)
    }

    /// The rack a GPU belongs to, or `None` for an unknown GPU.
    pub fn rack_of(&self, gpu: GpuId) -> Option<RackId> {
        self.gpu_locations.get(gpu.index()).map(|l| l.rack)
    }

    /// The NVLink slot index (within its machine) of a GPU, or `None` for
    /// an unknown GPU. O(1) via the precomputed location table.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        self.gpu_locations.get(gpu.index()).map(|l| l.slot as usize)
    }

    /// The full precomputed location of a GPU, or `None` for an unknown GPU.
    pub fn location_of(&self, gpu: GpuId) -> Option<GpuLocation> {
        self.gpu_locations.get(gpu.index()).copied()
    }

    /// Iterates over every GPU id in the cluster.
    pub fn all_gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.total_gpus() as u32).map(GpuId)
    }

    /// The paper's simulated cluster: a heterogeneously constructed 256-GPU
    /// cluster with a mixture of 4-GPU, 2-GPU and 1-GPU machines spread
    /// across multiple racks (§8.1).
    ///
    /// Layout: 4 racks, each with 12 × 4-GPU machines, 6 × 2-GPU machines
    /// and 4 × 1-GPU machines = 64 GPUs per rack, 256 GPUs total.
    pub fn heterogeneous_256() -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..4 {
            b = b.rack(|r| {
                r.machines_with(12, 4, 2, GpuModel::TeslaP100)
                    .machines_with(6, 2, 2, GpuModel::TeslaP100)
                    .machines_with(4, 1, 1, GpuModel::TeslaP100)
            });
        }
        b.build()
    }

    /// The paper's testbed: 50 GPUs spread across 20 Azure NC/NV instances
    /// with 1, 2 or 4 GPUs each (§8.1).
    ///
    /// Layout: 2 racks; 10 machines per rack; per rack: 4 × 4-GPU (K80),
    /// 3 × 2-GPU (M60), 3 × 1-GPU (M60) = 25 GPUs per rack, 50 total across
    /// 20 instances.
    pub fn testbed_50() -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..2 {
            b = b.rack(|r| {
                r.machines_with(4, 4, 2, GpuModel::TeslaK80)
                    .machines_with(3, 2, 2, GpuModel::TeslaM60)
                    .machines_with(3, 1, 1, GpuModel::TeslaM60)
            });
        }
        b.build()
    }

    /// A homogeneous cluster: `racks` racks of `machines_per_rack` machines
    /// with `gpus_per_machine` GPUs each. Useful for unit tests and
    /// micro-benchmarks.
    pub fn homogeneous(
        racks: usize,
        machines_per_rack: usize,
        gpus_per_machine: usize,
    ) -> ClusterSpec {
        ClusterSpec::synthetic(racks, machines_per_rack, gpus_per_machine)
    }

    /// A synthetic homogeneous cluster for scale studies beyond the paper's
    /// 256 GPUs: `racks` racks × `machines_per_rack` machines ×
    /// `gpus_per_machine` GPUs (generic GPU model, one NVLink slot per GPU
    /// pair). The `scale` scenario matrix builds its 1024- and 4096-GPU
    /// clusters with this constructor.
    pub fn synthetic(
        racks: usize,
        machines_per_rack: usize,
        gpus_per_machine: usize,
    ) -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for _ in 0..racks {
            b = b.rack(|r| r.machines(machines_per_rack, gpus_per_machine));
        }
        b.build()
    }
}

/// Builder for [`ClusterSpec`].
#[derive(Debug, Default)]
pub struct ClusterSpecBuilder {
    racks: Vec<RackBuilder>,
}

impl ClusterSpecBuilder {
    /// Adds a rack described by the closure.
    pub fn rack(mut self, f: impl FnOnce(RackBuilder) -> RackBuilder) -> Self {
        self.racks.push(f(RackBuilder::default()));
        self
    }

    /// Finalizes the specification, assigning dense machine / GPU ids in
    /// declaration order.
    pub fn build(self) -> ClusterSpec {
        let mut machines = Vec::new();
        let mut racks = Vec::new();
        let mut gpu_locations = Vec::new();
        let mut next_gpu = 0u32;
        let mut next_machine = 0u32;

        for (rack_idx, rack) in self.racks.into_iter().enumerate() {
            let rack_id = RackId(rack_idx as u32);
            let mut rack_machines = Vec::new();
            for group in rack.groups {
                let slot_size = group.slot_size.max(1);
                for _ in 0..group.count {
                    let machine_id = MachineId(next_machine);
                    next_machine += 1;
                    let gpus: Vec<GpuId> = (0..group.gpus_per_machine)
                        .map(|slot_idx| {
                            let id = GpuId(next_gpu);
                            next_gpu += 1;
                            gpu_locations.push(GpuLocation {
                                machine: machine_id,
                                rack: rack_id,
                                slot: (slot_idx / slot_size) as u32,
                            });
                            id
                        })
                        .collect();
                    machines.push(MachineSpec {
                        id: machine_id,
                        rack: rack_id,
                        gpus,
                        slot_size: group.slot_size,
                        gpu_model: group.gpu_model,
                    });
                    rack_machines.push(machine_id);
                }
            }
            racks.push(RackSpec {
                id: rack_id,
                machines: rack_machines,
            });
        }

        ClusterSpec {
            machines,
            racks,
            gpu_locations,
        }
    }
}

/// Builder for a single rack within a [`ClusterSpecBuilder`].
#[derive(Debug, Default)]
pub struct RackBuilder {
    groups: Vec<MachineGroup>,
}

#[derive(Debug)]
struct MachineGroup {
    count: usize,
    gpus_per_machine: usize,
    slot_size: usize,
    gpu_model: GpuModel,
}

impl RackBuilder {
    /// Adds `count` machines with `gpus_per_machine` GPUs each (one NVLink
    /// slot per pair of GPUs, generic GPU model).
    pub fn machines(self, count: usize, gpus_per_machine: usize) -> Self {
        self.machines_with(count, gpus_per_machine, 2, GpuModel::Generic)
    }

    /// Adds `count` machines with full control over slot size and GPU model.
    pub fn machines_with(
        mut self,
        count: usize,
        gpus_per_machine: usize,
        slot_size: usize,
        gpu_model: GpuModel,
    ) -> Self {
        assert!(gpus_per_machine > 0, "machines must have at least one GPU");
        assert!(slot_size > 0, "slot size must be at least one GPU");
        self.groups.push(MachineGroup {
            count,
            gpus_per_machine,
            slot_size,
            gpu_model,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let spec = ClusterSpec::builder()
            .rack(|r| r.machines(2, 4))
            .rack(|r| r.machines(1, 2))
            .build();
        assert_eq!(spec.total_machines(), 3);
        assert_eq!(spec.total_gpus(), 10);
        assert_eq!(spec.total_racks(), 2);
        assert_eq!(spec.machine_of(GpuId(0)), Some(MachineId(0)));
        assert_eq!(spec.machine_of(GpuId(7)), Some(MachineId(1)));
        assert_eq!(spec.machine_of(GpuId(8)), Some(MachineId(2)));
        assert_eq!(spec.machine_of(GpuId(10)), None);
        assert_eq!(spec.rack_of(GpuId(9)), Some(RackId(1)));
    }

    #[test]
    fn heterogeneous_256_has_256_gpus() {
        let spec = ClusterSpec::heterogeneous_256();
        assert_eq!(spec.total_gpus(), 256);
        assert_eq!(spec.total_racks(), 4);
        // Mixture of machine sizes.
        let sizes: std::collections::BTreeSet<usize> =
            spec.machines().iter().map(|m| m.num_gpus()).collect();
        assert_eq!(sizes, [1usize, 2, 4].into_iter().collect());
    }

    #[test]
    fn testbed_50_matches_paper() {
        let spec = ClusterSpec::testbed_50();
        assert_eq!(spec.total_gpus(), 50);
        assert_eq!(spec.total_machines(), 20);
        let k80s = spec
            .machines()
            .iter()
            .filter(|m| m.gpu_model == GpuModel::TeslaK80)
            .count();
        assert_eq!(k80s, 8);
    }

    #[test]
    fn slot_of_groups_gpus() {
        let spec = ClusterSpec::builder()
            .rack(|r| r.machines_with(1, 4, 2, GpuModel::Generic))
            .build();
        let m = spec.machine(MachineId(0)).unwrap();
        assert_eq!(m.slot_of(GpuId(0)), Some(0));
        assert_eq!(m.slot_of(GpuId(1)), Some(0));
        assert_eq!(m.slot_of(GpuId(2)), Some(1));
        assert_eq!(m.slot_of(GpuId(3)), Some(1));
        assert_eq!(m.slot_of(GpuId(4)), None);
    }

    #[test]
    fn homogeneous_builder() {
        let spec = ClusterSpec::homogeneous(2, 3, 4);
        assert_eq!(spec.total_gpus(), 24);
        assert!(spec.machines().iter().all(|m| m.num_gpus() == 4));
    }

    #[test]
    fn synthetic_scales_to_thousands_of_gpus() {
        let spec = ClusterSpec::synthetic(16, 16, 4);
        assert_eq!(spec.total_gpus(), 1024);
        assert_eq!(spec.total_machines(), 256);
        assert_eq!(spec.total_racks(), 16);
        // The dense lookup covers the last GPU too.
        assert_eq!(spec.machine_of(GpuId(1023)), Some(MachineId(255)));
        assert_eq!(spec.rack_of(GpuId(1023)), Some(RackId(15)));
    }

    #[test]
    fn precomputed_locations_match_machine_lookup() {
        let spec = ClusterSpec::heterogeneous_256();
        for gpu in spec.all_gpus() {
            let loc = spec.location_of(gpu).expect("gpu exists");
            let machine = spec.machine(loc.machine).expect("machine exists");
            assert!(machine.gpus.contains(&gpu));
            assert_eq!(machine.rack, loc.rack);
            assert_eq!(machine.slot_of(gpu), Some(loc.slot as usize));
            assert_eq!(spec.slot_of(gpu), Some(loc.slot as usize));
        }
        assert_eq!(spec.location_of(GpuId(256)), None);
        assert_eq!(spec.slot_of(GpuId(256)), None);
    }

    #[test]
    fn slot_of_handles_non_contiguous_specs() {
        // A hand-built machine whose GPU ids are not consecutive: the O(1)
        // offset fast path misses and the fallback scan must still answer.
        let machine = MachineSpec {
            id: MachineId(0),
            rack: RackId(0),
            gpus: vec![GpuId(3), GpuId(7), GpuId(9), GpuId(12)],
            slot_size: 2,
            gpu_model: GpuModel::Generic,
        };
        assert_eq!(machine.slot_of(GpuId(3)), Some(0));
        assert_eq!(machine.slot_of(GpuId(7)), Some(0));
        assert_eq!(machine.slot_of(GpuId(9)), Some(1));
        assert_eq!(machine.slot_of(GpuId(12)), Some(1));
        assert_eq!(machine.slot_of(GpuId(8)), None);
        assert_eq!(machine.slot_of(GpuId(0)), None);
        // An *unsorted* hand-built list: ids smaller than gpus[0] make the
        // offset subtraction underflow, and the scan must still find them.
        let unsorted = MachineSpec {
            gpus: vec![GpuId(5), GpuId(3)],
            ..machine
        };
        assert_eq!(unsorted.slot_of(GpuId(5)), Some(0));
        assert_eq!(unsorted.slot_of(GpuId(3)), Some(0));
        assert_eq!(unsorted.slot_of(GpuId(4)), None);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_machines_rejected() {
        let _ = ClusterSpec::builder().rack(|r| r.machines(1, 0)).build();
    }

    #[test]
    fn all_gpus_iterates_everything() {
        let spec = ClusterSpec::homogeneous(1, 2, 2);
        let gpus: Vec<GpuId> = spec.all_gpus().collect();
        assert_eq!(gpus, vec![GpuId(0), GpuId(1), GpuId(2), GpuId(3)]);
    }
}

//! Strongly-typed identifiers used throughout the workspace.
//!
//! Every entity the scheduler reasons about gets its own newtype so that a
//! GPU index can never be confused with a machine index at compile time.
//! All identifiers are small, `Copy`, ordered and hashable so they can be
//! used as keys in `BTreeMap`s (the simulator relies on deterministic
//! iteration order, so `BTreeMap`/`BTreeSet` are preferred over hash maps).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }
    };
}

id_type!(
    /// A single GPU, indexed globally across the whole cluster.
    GpuId,
    "gpu"
);
id_type!(
    /// A machine (server) holding one or more GPUs.
    MachineId,
    "m"
);
id_type!(
    /// A rack containing one or more machines.
    RackId,
    "rack"
);
id_type!(
    /// An ML application: a set of hyper-parameter exploration jobs owned by
    /// one user. Apps are the unit of fairness in Themis.
    AppId,
    "app"
);
id_type!(
    /// A single ML training job within an app (one hyper-parameter
    /// configuration).
    JobId,
    "job"
);
id_type!(
    /// A task within a job. All tasks of a job are gang-scheduled and each
    /// occupies one or more GPUs.
    TaskId,
    "task"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(GpuId(3).to_string(), "gpu3");
        assert_eq!(MachineId(0).to_string(), "m0");
        assert_eq!(RackId(7).to_string(), "rack7");
        assert_eq!(AppId(12).to_string(), "app12");
        assert_eq!(JobId(5).to_string(), "job5");
        assert_eq!(TaskId(9).to_string(), "task9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = BTreeSet::new();
        set.insert(GpuId(2));
        set.insert(GpuId(0));
        set.insert(GpuId(1));
        let collected: Vec<_> = set.into_iter().collect();
        assert_eq!(collected, vec![GpuId(0), GpuId(1), GpuId(2)]);
    }

    #[test]
    fn conversions_round_trip() {
        let id = AppId::from(42u32);
        assert_eq!(id.index(), 42);
        let id = JobId::from(7usize);
        assert_eq!(id, JobId(7));
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // This is a compile-time property; here we just document the intent:
        // GpuId and MachineId are different types even with the same value.
        let g = GpuId(1);
        let m = MachineId(1);
        assert_eq!(g.0, m.0);
    }
}

//! Error types for cluster-state operations.

use crate::ids::{AppId, GpuId, MachineId};
use std::fmt;

/// Errors that can occur when manipulating [`crate::cluster::Cluster`] state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Attempted to allocate a GPU that is already held by an app.
    GpuBusy {
        /// The GPU that was requested.
        gpu: GpuId,
        /// The app currently holding it.
        held_by: AppId,
    },
    /// Attempted to free or inspect a GPU that is not allocated.
    GpuNotAllocated {
        /// The GPU in question.
        gpu: GpuId,
    },
    /// Referenced a GPU that does not exist in the cluster.
    UnknownGpu {
        /// The offending id.
        gpu: GpuId,
    },
    /// Referenced a machine that does not exist in the cluster.
    UnknownMachine {
        /// The offending id.
        machine: MachineId,
    },
    /// A free-vector or allocation request asked for more GPUs than a
    /// machine has available.
    InsufficientCapacity {
        /// The machine in question.
        machine: MachineId,
        /// GPUs requested.
        requested: usize,
        /// GPUs actually free on the machine.
        available: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::GpuBusy { gpu, held_by } => {
                write!(f, "{gpu} is already allocated to {held_by}")
            }
            ClusterError::GpuNotAllocated { gpu } => {
                write!(f, "{gpu} is not currently allocated")
            }
            ClusterError::UnknownGpu { gpu } => write!(f, "{gpu} does not exist in this cluster"),
            ClusterError::UnknownMachine { machine } => {
                write!(f, "{machine} does not exist in this cluster")
            }
            ClusterError::InsufficientCapacity {
                machine,
                requested,
                available,
            } => write!(
                f,
                "{machine} has only {available} free GPUs but {requested} were requested"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ClusterError::GpuBusy {
            gpu: GpuId(1),
            held_by: AppId(2),
        };
        assert!(e.to_string().contains("gpu1"));
        assert!(e.to_string().contains("app2"));

        let e = ClusterError::InsufficientCapacity {
            machine: MachineId(3),
            requested: 4,
            available: 2,
        };
        assert!(e.to_string().contains("m3"));
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ClusterError::GpuNotAllocated { gpu: GpuId(0) });
    }
}

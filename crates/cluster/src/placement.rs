//! Locality levels and placement scoring.
//!
//! Themis (and its evaluation) uses a 4-level placement scheme (§8.1):
//!
//! * **Slot** locality — all GPUs connected by NVLink within one slot,
//! * **Machine** locality — GPUs in the same machine connected over PCIe,
//! * **Rack** locality — GPUs in the same rack,
//! * **None** (cross-rack) — the allocation spans racks.
//!
//! Each successive level has lower network bandwidth. The [`PlacementScorer`]
//! maps an allocation to a score in `(0, 1]` where `1.0` means tightly
//! packed (the paper's Figure 7 plots the CDF of exactly this score).

use crate::alloc::GpuAlloc;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The tightest network boundary an allocation fits inside.
///
/// Ordered from tightest (best) to loosest (worst): `Slot < Machine < Rack <
/// CrossRack`. An empty or single-GPU allocation is always `Slot`-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// All GPUs in one NVLink slot.
    Slot,
    /// All GPUs in one machine (PCIe).
    Machine,
    /// All GPUs in one rack.
    Rack,
    /// The allocation crosses racks ("no locality" in the paper).
    CrossRack,
}

impl Locality {
    /// All locality levels from tightest to loosest.
    pub const ALL: [Locality; 4] = [
        Locality::Slot,
        Locality::Machine,
        Locality::Rack,
        Locality::CrossRack,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Locality::Slot => "slot",
            Locality::Machine => "machine",
            Locality::Rack => "rack",
            Locality::CrossRack => "cross-rack",
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computes the spread ([`Locality`]) of an allocation.
///
/// Returns `Locality::Slot` for empty or single-GPU allocations (a single GPU
/// has ideal placement by definition). One pass over the allocation using
/// the spec's precomputed GPU→(machine, rack, slot) table — no set
/// construction, no per-machine scans.
pub fn spread(alloc: &GpuAlloc, spec: &ClusterSpec) -> Locality {
    if alloc.len() <= 1 {
        return Locality::Slot;
    }
    let mut first = None;
    let mut same_machine = true;
    let mut same_rack = true;
    let mut same_slot = true;
    for gpu in alloc.iter() {
        let Some(loc) = spec.location_of(gpu) else {
            continue;
        };
        match first {
            None => first = Some(loc),
            Some(anchor) => {
                same_machine &= loc.machine == anchor.machine;
                same_rack &= loc.rack == anchor.rack;
                same_slot &= loc.slot == anchor.slot;
            }
        }
    }
    if first.is_none() {
        // A multi-GPU allocation with no GPU known to this spec: worst
        // placement, matching the previous set-based implementation.
        return Locality::CrossRack;
    }
    match (same_machine, same_slot, same_rack) {
        (true, true, _) => Locality::Slot,
        (true, false, _) => Locality::Machine,
        (false, _, true) => Locality::Rack,
        (false, _, false) => Locality::CrossRack,
    }
}

/// Maps a [`Locality`] level to a placement score in `(0, 1]`.
///
/// A score of `1.0` indicates GPUs are tightly packed; lower scores imply
/// GPUs that are spread out (paper §8.1, "Placement Score" metric). The
/// default scores mirror the decreasing bandwidth across levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementScorer {
    /// Score when all GPUs share an NVLink slot.
    pub slot: f64,
    /// Score when all GPUs share a machine.
    pub machine: f64,
    /// Score when all GPUs share a rack.
    pub rack: f64,
    /// Score when the allocation crosses racks.
    pub cross_rack: f64,
}

impl Default for PlacementScorer {
    fn default() -> Self {
        PlacementScorer {
            slot: 1.0,
            machine: 0.9,
            rack: 0.75,
            cross_rack: 0.5,
        }
    }
}

impl PlacementScorer {
    /// Creates a scorer with explicit per-level scores.
    ///
    /// # Panics
    /// Panics unless `1 >= slot >= machine >= rack >= cross_rack > 0`.
    pub fn new(slot: f64, machine: f64, rack: f64, cross_rack: f64) -> Self {
        assert!(
            slot <= 1.0
                && slot >= machine
                && machine >= rack
                && rack >= cross_rack
                && cross_rack > 0.0,
            "placement scores must be monotonically non-increasing in (0, 1]"
        );
        PlacementScorer {
            slot,
            machine,
            rack,
            cross_rack,
        }
    }

    /// The score for a locality level.
    pub fn score_for(&self, locality: Locality) -> f64 {
        match locality {
            Locality::Slot => self.slot,
            Locality::Machine => self.machine,
            Locality::Rack => self.rack,
            Locality::CrossRack => self.cross_rack,
        }
    }

    /// The placement score of a concrete allocation.
    pub fn score(&self, alloc: &GpuAlloc, spec: &ClusterSpec) -> f64 {
        self.score_for(spread(alloc, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GpuId;

    fn spec() -> ClusterSpec {
        // Rack 0: two 4-GPU machines (slot size 2); rack 1: one 4-GPU machine.
        ClusterSpec::builder()
            .rack(|r| r.machines(2, 4))
            .rack(|r| r.machines(1, 4))
            .build()
    }

    #[test]
    fn empty_and_single_gpu_are_slot_local() {
        let spec = spec();
        assert_eq!(spread(&GpuAlloc::empty(), &spec), Locality::Slot);
        assert_eq!(
            spread(&GpuAlloc::from_gpus([GpuId(5)]), &spec),
            Locality::Slot
        );
    }

    #[test]
    fn slot_vs_machine_locality() {
        let spec = spec();
        // GPUs 0,1 share slot 0 of machine 0 (slot size 2).
        let slot_local = GpuAlloc::from_gpus([GpuId(0), GpuId(1)]);
        assert_eq!(spread(&slot_local, &spec), Locality::Slot);
        // GPUs 0,2 are in different slots of machine 0.
        let machine_local = GpuAlloc::from_gpus([GpuId(0), GpuId(2)]);
        assert_eq!(spread(&machine_local, &spec), Locality::Machine);
    }

    #[test]
    fn rack_and_cross_rack_locality() {
        let spec = spec();
        // Machines 0 and 1 are both in rack 0.
        let rack_local = GpuAlloc::from_gpus([GpuId(0), GpuId(4)]);
        assert_eq!(spread(&rack_local, &spec), Locality::Rack);
        // Machine 2 is in rack 1.
        let cross = GpuAlloc::from_gpus([GpuId(0), GpuId(8)]);
        assert_eq!(spread(&cross, &spec), Locality::CrossRack);
    }

    #[test]
    fn scorer_is_monotone() {
        let scorer = PlacementScorer::default();
        assert!(scorer.score_for(Locality::Slot) >= scorer.score_for(Locality::Machine));
        assert!(scorer.score_for(Locality::Machine) >= scorer.score_for(Locality::Rack));
        assert!(scorer.score_for(Locality::Rack) >= scorer.score_for(Locality::CrossRack));
        assert_eq!(scorer.score_for(Locality::Slot), 1.0);
    }

    #[test]
    fn scorer_scores_allocations() {
        let spec = spec();
        let scorer = PlacementScorer::default();
        let tight = GpuAlloc::from_gpus([GpuId(0), GpuId(1)]);
        let spread_alloc = GpuAlloc::from_gpus([GpuId(0), GpuId(8)]);
        assert!(scorer.score(&tight, &spec) > scorer.score(&spread_alloc, &spec));
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn scorer_rejects_non_monotone() {
        let _ = PlacementScorer::new(1.0, 0.5, 0.8, 0.4);
    }

    #[test]
    fn locality_names() {
        assert_eq!(Locality::Slot.to_string(), "slot");
        assert_eq!(Locality::CrossRack.name(), "cross-rack");
        assert_eq!(Locality::ALL.len(), 4);
    }
}

//! Mutable cluster state: which GPU is held by which job under which lease.
//!
//! Allocation state is a dense arena: a `Vec<Option<Assignment>>` indexed
//! by GPU id (GPU ids are dense, builder-assigned), with an incrementally
//! maintained per-machine free-count vector and a sorted per-app GPU index.
//! Every query the schedulers ask per auction round — the free vector, an
//! app's allocation, a job's allocation — is answered from those indices
//! without walking an ordered tree, and all iteration orders remain
//! ascending-by-id so scheduling decisions are identical to the previous
//! `BTreeMap`-backed representation.

use crate::alloc::{DenseBitSet, FreeVector, GpuAlloc};
use crate::error::ClusterError;
use crate::ids::{AppId, GpuId, JobId, MachineId};
use crate::lease::{Lease, LeaseTable};
use crate::placement::{spread, Locality, PlacementScorer};
use crate::time::Time;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The owner of an allocated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// App holding the GPU.
    pub app: AppId,
    /// Job (within the app) the GPU is assigned to.
    pub job: JobId,
}

/// Mutable cluster state built on top of an immutable [`ClusterSpec`].
///
/// Tracks per-GPU assignment and leases, and answers the queries the
/// schedulers need: the free-resource vector, an app's current allocation,
/// and placement scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    /// Dense assignment arena, indexed by GPU id.
    assignments: Vec<Option<Assignment>>,
    /// Free GPUs per machine, maintained incrementally (machine-indexed).
    free_per_machine: Vec<u32>,
    /// One bit per GPU, set while the GPU is free (maintained alongside
    /// the arena; `ClusterView` seeds its shadow with a plain clone).
    free_mask: DenseBitSet,
    /// Number of allocated GPUs.
    allocated: usize,
    /// Sorted GPU list per app (app-id indexed; empty for idle/unknown apps).
    per_app: Vec<Vec<GpuId>>,
    leases: LeaseTable,
    scorer: PlacementScorer,
}

impl Cluster {
    /// Creates a fully-idle cluster from a specification.
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_scorer(spec, PlacementScorer::default())
    }

    /// Creates a cluster with a custom placement scorer.
    pub fn with_scorer(spec: ClusterSpec, scorer: PlacementScorer) -> Self {
        let assignments = vec![None; spec.total_gpus()];
        let free_per_machine = spec
            .machines()
            .iter()
            .map(|m| m.num_gpus() as u32)
            .collect();
        let mut free_mask = DenseBitSet::with_universe(spec.total_gpus());
        for idx in 0..spec.total_gpus() {
            free_mask.insert(idx);
        }
        Cluster {
            spec,
            assignments,
            free_per_machine,
            free_mask,
            allocated: 0,
            per_app: Vec::new(),
            leases: LeaseTable::new(),
            scorer,
        }
    }

    /// The immutable topology.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placement scorer used for this cluster.
    pub fn scorer(&self) -> &PlacementScorer {
        &self.scorer
    }

    /// The lease table.
    pub fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.spec.total_gpus()
    }

    /// Number of GPUs currently allocated.
    pub fn allocated_gpus(&self) -> usize {
        self.allocated
    }

    /// Number of GPUs currently free. O(1).
    pub fn free_gpu_count(&self) -> usize {
        self.total_gpus() - self.allocated
    }

    /// The incrementally maintained per-machine free counts
    /// (machine-indexed). Crate-internal: `ClusterView` seeds its shadow
    /// counts from this with a single copy.
    pub(crate) fn free_counts(&self) -> &[u32] {
        &self.free_per_machine
    }

    /// The maintained free-GPU bitmask. Crate-internal: `ClusterView`
    /// seeds its shadow mask with a single clone.
    pub(crate) fn free_mask(&self) -> &DenseBitSet {
        &self.free_mask
    }

    /// Fraction of GPUs currently allocated, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_gpus() == 0 {
            0.0
        } else {
            self.allocated_gpus() as f64 / self.total_gpus() as f64
        }
    }

    /// The assignment holding a GPU, if it is allocated.
    pub fn assignment(&self, gpu: GpuId) -> Option<Assignment> {
        self.assignments.get(gpu.index()).copied().flatten()
    }

    /// Whether a GPU exists in the topology and is currently free.
    pub fn is_free(&self, gpu: GpuId) -> bool {
        matches!(self.assignments.get(gpu.index()), Some(None))
    }

    /// All currently free GPUs, in id order (a word-skipping walk over
    /// the maintained free bitmask).
    pub fn free_gpus(&self) -> Vec<GpuId> {
        let mut out = Vec::with_capacity(self.free_gpu_count());
        out.extend(self.free_mask.iter().map(|idx| GpuId(idx as u32)));
        out
    }

    /// Free GPUs on a specific machine, in id order.
    pub fn free_gpus_on(&self, machine: MachineId) -> Vec<GpuId> {
        match self.spec.machine(machine) {
            Some(m) => m
                .gpus
                .iter()
                .copied()
                .filter(|g| self.is_free(*g))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The per-machine free-GPU vector (the auction offer `R`). O(machines).
    pub fn free_vector(&self) -> FreeVector {
        FreeVector::from_counts(
            self.free_per_machine
                .iter()
                .enumerate()
                .map(|(m, c)| (MachineId(m as u32), *c as usize)),
        )
    }

    fn app_gpus(&self, app: AppId) -> &[GpuId] {
        self.per_app
            .get(app.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All GPUs currently held by an app.
    pub fn gpus_of_app(&self, app: AppId) -> GpuAlloc {
        GpuAlloc::from_sorted(self.app_gpus(app).to_vec())
    }

    /// Number of GPUs currently held by an app. O(1).
    pub fn gpus_held_by(&self, app: AppId) -> usize {
        self.app_gpus(app).len()
    }

    /// All GPUs currently held by an app, grouped by job. One pass over the
    /// app's GPU index — prefer this over calling [`Cluster::gpus_of_job`]
    /// in a loop.
    pub fn jobs_of_app(&self, app: AppId) -> BTreeMap<JobId, GpuAlloc> {
        let mut by_job: BTreeMap<JobId, Vec<GpuId>> = BTreeMap::new();
        for &gpu in self.app_gpus(app) {
            let assignment = self.assignments[gpu.index()].expect("indexed gpu is assigned");
            by_job.entry(assignment.job).or_default().push(gpu);
        }
        by_job
            .into_iter()
            .map(|(job, gpus)| (job, GpuAlloc::from_sorted(gpus)))
            .collect()
    }

    /// All GPUs currently held by a specific job.
    pub fn gpus_of_job(&self, app: AppId, job: JobId) -> GpuAlloc {
        GpuAlloc::from_sorted(
            self.app_gpus(app)
                .iter()
                .copied()
                .filter(|g| {
                    self.assignments[g.index()]
                        .expect("indexed gpu is assigned")
                        .job
                        == job
                })
                .collect(),
        )
    }

    /// Apps that currently hold at least one GPU, with their GPU counts.
    pub fn apps_with_gpus(&self) -> BTreeMap<AppId, usize> {
        self.per_app
            .iter()
            .enumerate()
            .filter(|(_, gpus)| !gpus.is_empty())
            .map(|(app, gpus)| (AppId(app as u32), gpus.len()))
            .collect()
    }

    /// Records an assignment in the arena and every derived index.
    fn index_assignment(&mut self, gpu: GpuId, assignment: Assignment) {
        self.assignments[gpu.index()] = Some(assignment);
        self.free_mask.remove(gpu.index());
        self.allocated += 1;
        let machine = self.spec.machine_of(gpu).expect("gpu exists").index();
        self.free_per_machine[machine] -= 1;
        let app_idx = assignment.app.index();
        if app_idx >= self.per_app.len() {
            self.per_app.resize_with(app_idx + 1, Vec::new);
        }
        let list = &mut self.per_app[app_idx];
        match list.binary_search(&gpu) {
            Ok(_) => unreachable!("gpu was free, cannot already be indexed"),
            Err(pos) => list.insert(pos, gpu),
        }
    }

    /// Clears an assignment from the arena and every derived index.
    /// Returns the previous assignment, if any.
    fn clear_assignment(&mut self, gpu: GpuId) -> Option<Assignment> {
        let slot = self.assignments.get_mut(gpu.index())?;
        let assignment = slot.take()?;
        self.free_mask.insert(gpu.index());
        self.allocated -= 1;
        let machine = self.spec.machine_of(gpu).expect("gpu exists").index();
        self.free_per_machine[machine] += 1;
        let list = &mut self.per_app[assignment.app.index()];
        let pos = list.binary_search(&gpu).expect("assigned gpu is indexed");
        list.remove(pos);
        Some(assignment)
    }

    /// Allocates a single GPU to `(app, job)` under a lease expiring at
    /// `expires_at`.
    pub fn allocate(
        &mut self,
        gpu: GpuId,
        app: AppId,
        job: JobId,
        now: Time,
        expires_at: Time,
    ) -> Result<(), ClusterError> {
        match self.assignments.get(gpu.index()) {
            None => return Err(ClusterError::UnknownGpu { gpu }),
            Some(Some(existing)) => {
                return Err(ClusterError::GpuBusy {
                    gpu,
                    held_by: existing.app,
                })
            }
            Some(None) => {}
        }
        self.index_assignment(gpu, Assignment { app, job });
        self.leases.grant(Lease {
            gpu,
            app,
            job,
            granted_at: now,
            expires_at,
        });
        Ok(())
    }

    /// Allocates `count` free GPUs on a specific machine to `(app, job)`.
    /// GPUs are chosen in id order (slot-contiguous), which packs them as
    /// tightly as the machine allows.
    pub fn allocate_on_machine(
        &mut self,
        machine: MachineId,
        count: usize,
        app: AppId,
        job: JobId,
        now: Time,
        expires_at: Time,
    ) -> Result<Vec<GpuId>, ClusterError> {
        if self.spec.machine(machine).is_none() {
            return Err(ClusterError::UnknownMachine { machine });
        }
        let free = self.free_gpus_on(machine);
        if free.len() < count {
            return Err(ClusterError::InsufficientCapacity {
                machine,
                requested: count,
                available: free.len(),
            });
        }
        let chosen: Vec<GpuId> = free.into_iter().take(count).collect();
        for gpu in &chosen {
            self.allocate(*gpu, app, job, now, expires_at)?;
        }
        Ok(chosen)
    }

    /// Releases a GPU (revoking its lease). Errors if the GPU is not
    /// allocated.
    pub fn release(&mut self, gpu: GpuId) -> Result<Assignment, ClusterError> {
        match self.clear_assignment(gpu) {
            Some(assignment) => {
                self.leases.revoke(gpu);
                Ok(assignment)
            }
            None => Err(ClusterError::GpuNotAllocated { gpu }),
        }
    }

    /// Releases every GPU held by an app, returning the freed GPUs.
    pub fn release_app(&mut self, app: AppId) -> Vec<GpuId> {
        let gpus: Vec<GpuId> = self.app_gpus(app).to_vec();
        for gpu in &gpus {
            let _ = self.release(*gpu);
        }
        gpus
    }

    /// Releases every GPU held by a specific job, returning the freed GPUs.
    pub fn release_job(&mut self, app: AppId, job: JobId) -> Vec<GpuId> {
        let gpus: Vec<GpuId> = self.gpus_of_job(app, job).into_iter().collect();
        for gpu in &gpus {
            let _ = self.release(*gpu);
        }
        gpus
    }

    /// Reclaims all leases that have expired at or before `now`, releasing
    /// the corresponding GPUs. Returns the reclaimed leases.
    pub fn reclaim_expired_leases(&mut self, now: Time) -> Vec<Lease> {
        let expired = self.leases.reclaim_expired(now);
        for lease in &expired {
            self.clear_assignment(lease.gpu);
        }
        expired
    }

    /// Extends the lease of every GPU held by an app to `new_expiry`.
    /// Returns the number of leases extended.
    pub fn extend_app_leases(&mut self, app: AppId, new_expiry: Time) -> usize {
        let gpus: Vec<GpuId> = self.app_gpus(app).to_vec();
        gpus.into_iter()
            .filter(|g| self.leases.extend(*g, new_expiry))
            .count()
    }

    /// The earliest lease expiry across the cluster, if any GPU is leased.
    pub fn next_lease_expiry(&self) -> Option<Time> {
        self.leases.next_expiry()
    }

    /// The placement locality of a job's current allocation.
    pub fn job_locality(&self, app: AppId, job: JobId) -> Locality {
        spread(&self.gpus_of_job(app, job), &self.spec)
    }

    /// The placement score of a job's current allocation (1.0 = tightly
    /// packed).
    pub fn job_placement_score(&self, app: AppId, job: JobId) -> f64 {
        self.scorer.score(&self.gpus_of_job(app, job), &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::builder().rack(|r| r.machines(2, 4)).build())
    }

    #[test]
    fn fresh_cluster_is_idle() {
        let c = cluster();
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.allocated_gpus(), 0);
        assert_eq!(c.free_gpu_count(), 8);
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.free_vector().total(), 8);
    }

    #[test]
    fn allocate_and_release() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.allocated_gpus(), 1);
        assert_eq!(c.free_gpu_count(), 7);
        assert_eq!(c.assignment(GpuId(0)).unwrap().app, AppId(1));
        assert!(!c.is_free(GpuId(0)));
        assert!(c.is_free(GpuId(1)));
        assert!(!c.is_free(GpuId(99)), "unknown gpu is not free");
        assert_eq!(c.free_vector().on_machine(MachineId(0)), 3);
        assert_eq!(c.gpus_held_by(AppId(1)), 1);

        // Double allocation fails.
        let err = c
            .allocate(
                GpuId(0),
                AppId(2),
                JobId(0),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::GpuBusy { .. }));

        let assignment = c.release(GpuId(0)).unwrap();
        assert_eq!(assignment.app, AppId(1));
        assert!(c.release(GpuId(0)).is_err());
        assert_eq!(c.gpus_held_by(AppId(1)), 0);
    }

    #[test]
    fn allocate_unknown_gpu_fails() {
        let mut c = cluster();
        let err = c
            .allocate(
                GpuId(99),
                AppId(1),
                JobId(0),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::UnknownGpu { .. }));
    }

    #[test]
    fn allocate_on_machine_packs_in_order() {
        let mut c = cluster();
        let gpus = c
            .allocate_on_machine(
                MachineId(1),
                3,
                AppId(7),
                JobId(2),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap();
        assert_eq!(gpus, vec![GpuId(4), GpuId(5), GpuId(6)]);
        assert_eq!(c.gpus_of_job(AppId(7), JobId(2)).len(), 3);
        // Requesting more than available fails.
        let err = c
            .allocate_on_machine(
                MachineId(1),
                2,
                AppId(7),
                JobId(2),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InsufficientCapacity { available: 1, .. }
        ));
    }

    #[test]
    fn lease_expiry_reclaims_gpus() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(40.0),
        )
        .unwrap();
        assert_eq!(c.next_lease_expiry(), Some(Time::minutes(20.0)));
        let reclaimed = c.reclaim_expired_leases(Time::minutes(25.0));
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].gpu, GpuId(0));
        assert_eq!(c.allocated_gpus(), 1);
        assert_eq!(c.gpus_held_by(AppId(1)), 1);
    }

    #[test]
    fn release_app_and_job() {
        let mut c = cluster();
        for (gpu, job) in [(0u32, 0u32), (1, 0), (2, 1)] {
            c.allocate(
                GpuId(gpu),
                AppId(1),
                JobId(job),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap();
        }
        c.allocate(
            GpuId(3),
            AppId(2),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.gpus_of_app(AppId(1)).len(), 3);
        let by_job = c.jobs_of_app(AppId(1));
        assert_eq!(by_job[&JobId(0)].len(), 2);
        assert_eq!(by_job[&JobId(1)].len(), 1);
        let freed = c.release_job(AppId(1), JobId(0));
        assert_eq!(freed, vec![GpuId(0), GpuId(1)]);
        let freed = c.release_app(AppId(1));
        assert_eq!(freed, vec![GpuId(2)]);
        assert_eq!(c.gpus_of_app(AppId(2)).len(), 1);
    }

    #[test]
    fn extend_app_leases() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.extend_app_leases(AppId(1), Time::minutes(60.0)), 2);
        assert_eq!(c.next_lease_expiry(), Some(Time::minutes(60.0)));
    }

    #[test]
    fn placement_queries() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(4),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.job_locality(AppId(1), JobId(0)), Locality::Rack);
        assert!(c.job_placement_score(AppId(1), JobId(0)) < 1.0);
    }

    #[test]
    fn apps_with_gpus_counts() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(2),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(2),
            AppId(2),
            JobId(1),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        let counts = c.apps_with_gpus();
        assert_eq!(counts[&AppId(1)], 1);
        assert_eq!(counts[&AppId(2)], 2);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn free_counts_stay_consistent_under_churn() {
        let mut c = cluster();
        for gpu in 0..8u32 {
            c.allocate(
                GpuId(gpu),
                AppId(gpu % 3),
                JobId(0),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap();
        }
        assert_eq!(c.free_gpu_count(), 0);
        assert!(c.free_vector().is_empty());
        c.release_app(AppId(0));
        assert_eq!(c.free_gpu_count(), 3);
        assert_eq!(c.free_gpus(), vec![GpuId(0), GpuId(3), GpuId(6)]);
        assert_eq!(c.free_vector().total(), 3);
        assert_eq!(c.free_gpus_on(MachineId(0)), vec![GpuId(0), GpuId(3)]);
    }
}

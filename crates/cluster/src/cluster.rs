//! Mutable cluster state: which GPU is held by which job under which lease.

use crate::alloc::{FreeVector, GpuAlloc};
use crate::error::ClusterError;
use crate::ids::{AppId, GpuId, JobId, MachineId};
use crate::lease::{Lease, LeaseTable};
use crate::placement::{spread, Locality, PlacementScorer};
use crate::time::Time;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The owner of an allocated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// App holding the GPU.
    pub app: AppId,
    /// Job (within the app) the GPU is assigned to.
    pub job: JobId,
}

/// Mutable cluster state built on top of an immutable [`ClusterSpec`].
///
/// Tracks per-GPU assignment and leases, and answers the queries the
/// schedulers need: the free-resource vector, an app's current allocation,
/// and placement scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    assignments: BTreeMap<GpuId, Assignment>,
    leases: LeaseTable,
    scorer: PlacementScorer,
}

impl Cluster {
    /// Creates a fully-idle cluster from a specification.
    pub fn new(spec: ClusterSpec) -> Self {
        Cluster {
            spec,
            assignments: BTreeMap::new(),
            leases: LeaseTable::new(),
            scorer: PlacementScorer::default(),
        }
    }

    /// Creates a cluster with a custom placement scorer.
    pub fn with_scorer(spec: ClusterSpec, scorer: PlacementScorer) -> Self {
        Cluster {
            spec,
            assignments: BTreeMap::new(),
            leases: LeaseTable::new(),
            scorer,
        }
    }

    /// The immutable topology.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placement scorer used for this cluster.
    pub fn scorer(&self) -> &PlacementScorer {
        &self.scorer
    }

    /// The lease table.
    pub fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.spec.total_gpus()
    }

    /// Number of GPUs currently allocated.
    pub fn allocated_gpus(&self) -> usize {
        self.assignments.len()
    }

    /// Fraction of GPUs currently allocated, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_gpus() == 0 {
            0.0
        } else {
            self.allocated_gpus() as f64 / self.total_gpus() as f64
        }
    }

    /// The assignment holding a GPU, if it is allocated.
    pub fn assignment(&self, gpu: GpuId) -> Option<Assignment> {
        self.assignments.get(&gpu).copied()
    }

    /// All currently free GPUs, in id order.
    pub fn free_gpus(&self) -> Vec<GpuId> {
        self.spec
            .all_gpus()
            .filter(|g| !self.assignments.contains_key(g))
            .collect()
    }

    /// Free GPUs on a specific machine, in id order.
    pub fn free_gpus_on(&self, machine: MachineId) -> Vec<GpuId> {
        match self.spec.machine(machine) {
            Some(m) => m
                .gpus
                .iter()
                .copied()
                .filter(|g| !self.assignments.contains_key(g))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The per-machine free-GPU vector (the auction offer `R`).
    pub fn free_vector(&self) -> FreeVector {
        FreeVector::from_gpus(self.free_gpus(), &self.spec)
    }

    /// All GPUs currently held by an app.
    pub fn gpus_of_app(&self, app: AppId) -> GpuAlloc {
        GpuAlloc::from_gpus(
            self.assignments
                .iter()
                .filter(|(_, a)| a.app == app)
                .map(|(g, _)| *g),
        )
    }

    /// All GPUs currently held by an app, grouped by job. One pass over the
    /// assignment table — prefer this over calling [`Cluster::gpus_of_job`]
    /// in a loop.
    pub fn jobs_of_app(&self, app: AppId) -> BTreeMap<JobId, GpuAlloc> {
        let mut by_job: BTreeMap<JobId, GpuAlloc> = BTreeMap::new();
        for (gpu, assignment) in &self.assignments {
            if assignment.app == app {
                by_job.entry(assignment.job).or_default().insert(*gpu);
            }
        }
        by_job
    }

    /// All GPUs currently held by a specific job.
    pub fn gpus_of_job(&self, app: AppId, job: JobId) -> GpuAlloc {
        GpuAlloc::from_gpus(
            self.assignments
                .iter()
                .filter(|(_, a)| a.app == app && a.job == job)
                .map(|(g, _)| *g),
        )
    }

    /// Apps that currently hold at least one GPU, with their GPU counts.
    pub fn apps_with_gpus(&self) -> BTreeMap<AppId, usize> {
        let mut counts = BTreeMap::new();
        for a in self.assignments.values() {
            *counts.entry(a.app).or_insert(0) += 1;
        }
        counts
    }

    /// Allocates a single GPU to `(app, job)` under a lease expiring at
    /// `expires_at`.
    pub fn allocate(
        &mut self,
        gpu: GpuId,
        app: AppId,
        job: JobId,
        now: Time,
        expires_at: Time,
    ) -> Result<(), ClusterError> {
        if self.spec.machine_of(gpu).is_none() {
            return Err(ClusterError::UnknownGpu { gpu });
        }
        if let Some(existing) = self.assignments.get(&gpu) {
            return Err(ClusterError::GpuBusy {
                gpu,
                held_by: existing.app,
            });
        }
        self.assignments.insert(gpu, Assignment { app, job });
        self.leases.grant(Lease {
            gpu,
            app,
            job,
            granted_at: now,
            expires_at,
        });
        Ok(())
    }

    /// Allocates `count` free GPUs on a specific machine to `(app, job)`.
    /// GPUs are chosen in id order (slot-contiguous), which packs them as
    /// tightly as the machine allows.
    pub fn allocate_on_machine(
        &mut self,
        machine: MachineId,
        count: usize,
        app: AppId,
        job: JobId,
        now: Time,
        expires_at: Time,
    ) -> Result<Vec<GpuId>, ClusterError> {
        if self.spec.machine(machine).is_none() {
            return Err(ClusterError::UnknownMachine { machine });
        }
        let free = self.free_gpus_on(machine);
        if free.len() < count {
            return Err(ClusterError::InsufficientCapacity {
                machine,
                requested: count,
                available: free.len(),
            });
        }
        let chosen: Vec<GpuId> = free.into_iter().take(count).collect();
        for gpu in &chosen {
            self.allocate(*gpu, app, job, now, expires_at)?;
        }
        Ok(chosen)
    }

    /// Releases a GPU (revoking its lease). Errors if the GPU is not
    /// allocated.
    pub fn release(&mut self, gpu: GpuId) -> Result<Assignment, ClusterError> {
        match self.assignments.remove(&gpu) {
            Some(assignment) => {
                self.leases.revoke(gpu);
                Ok(assignment)
            }
            None => Err(ClusterError::GpuNotAllocated { gpu }),
        }
    }

    /// Releases every GPU held by an app, returning the freed GPUs.
    pub fn release_app(&mut self, app: AppId) -> Vec<GpuId> {
        let gpus: Vec<GpuId> = self.gpus_of_app(app).into_iter().collect();
        for gpu in &gpus {
            let _ = self.release(*gpu);
        }
        gpus
    }

    /// Releases every GPU held by a specific job, returning the freed GPUs.
    pub fn release_job(&mut self, app: AppId, job: JobId) -> Vec<GpuId> {
        let gpus: Vec<GpuId> = self.gpus_of_job(app, job).into_iter().collect();
        for gpu in &gpus {
            let _ = self.release(*gpu);
        }
        gpus
    }

    /// Reclaims all leases that have expired at or before `now`, releasing
    /// the corresponding GPUs. Returns the reclaimed leases.
    pub fn reclaim_expired_leases(&mut self, now: Time) -> Vec<Lease> {
        let expired = self.leases.reclaim_expired(now);
        for lease in &expired {
            self.assignments.remove(&lease.gpu);
        }
        expired
    }

    /// Extends the lease of every GPU held by an app to `new_expiry`.
    /// Returns the number of leases extended.
    pub fn extend_app_leases(&mut self, app: AppId, new_expiry: Time) -> usize {
        let gpus: Vec<GpuId> = self.gpus_of_app(app).into_iter().collect();
        gpus.into_iter()
            .filter(|g| self.leases.extend(*g, new_expiry))
            .count()
    }

    /// The earliest lease expiry across the cluster, if any GPU is leased.
    pub fn next_lease_expiry(&self) -> Option<Time> {
        self.leases.next_expiry()
    }

    /// The placement locality of a job's current allocation.
    pub fn job_locality(&self, app: AppId, job: JobId) -> Locality {
        spread(&self.gpus_of_job(app, job), &self.spec)
    }

    /// The placement score of a job's current allocation (1.0 = tightly
    /// packed).
    pub fn job_placement_score(&self, app: AppId, job: JobId) -> f64 {
        self.scorer.score(&self.gpus_of_job(app, job), &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::builder().rack(|r| r.machines(2, 4)).build())
    }

    #[test]
    fn fresh_cluster_is_idle() {
        let c = cluster();
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.allocated_gpus(), 0);
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.free_vector().total(), 8);
    }

    #[test]
    fn allocate_and_release() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.allocated_gpus(), 1);
        assert_eq!(c.assignment(GpuId(0)).unwrap().app, AppId(1));
        assert_eq!(c.free_vector().on_machine(MachineId(0)), 3);

        // Double allocation fails.
        let err = c
            .allocate(
                GpuId(0),
                AppId(2),
                JobId(0),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::GpuBusy { .. }));

        let assignment = c.release(GpuId(0)).unwrap();
        assert_eq!(assignment.app, AppId(1));
        assert!(c.release(GpuId(0)).is_err());
    }

    #[test]
    fn allocate_unknown_gpu_fails() {
        let mut c = cluster();
        let err = c
            .allocate(
                GpuId(99),
                AppId(1),
                JobId(0),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::UnknownGpu { .. }));
    }

    #[test]
    fn allocate_on_machine_packs_in_order() {
        let mut c = cluster();
        let gpus = c
            .allocate_on_machine(
                MachineId(1),
                3,
                AppId(7),
                JobId(2),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap();
        assert_eq!(gpus, vec![GpuId(4), GpuId(5), GpuId(6)]);
        assert_eq!(c.gpus_of_job(AppId(7), JobId(2)).len(), 3);
        // Requesting more than available fails.
        let err = c
            .allocate_on_machine(
                MachineId(1),
                2,
                AppId(7),
                JobId(2),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InsufficientCapacity { available: 1, .. }
        ));
    }

    #[test]
    fn lease_expiry_reclaims_gpus() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(40.0),
        )
        .unwrap();
        assert_eq!(c.next_lease_expiry(), Some(Time::minutes(20.0)));
        let reclaimed = c.reclaim_expired_leases(Time::minutes(25.0));
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].gpu, GpuId(0));
        assert_eq!(c.allocated_gpus(), 1);
    }

    #[test]
    fn release_app_and_job() {
        let mut c = cluster();
        for (gpu, job) in [(0u32, 0u32), (1, 0), (2, 1)] {
            c.allocate(
                GpuId(gpu),
                AppId(1),
                JobId(job),
                Time::ZERO,
                Time::minutes(20.0),
            )
            .unwrap();
        }
        c.allocate(
            GpuId(3),
            AppId(2),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.gpus_of_app(AppId(1)).len(), 3);
        let freed = c.release_job(AppId(1), JobId(0));
        assert_eq!(freed.len(), 2);
        let freed = c.release_app(AppId(1));
        assert_eq!(freed.len(), 1);
        assert_eq!(c.gpus_of_app(AppId(2)).len(), 1);
    }

    #[test]
    fn extend_app_leases() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.extend_app_leases(AppId(1), Time::minutes(60.0)), 2);
        assert_eq!(c.next_lease_expiry(), Some(Time::minutes(60.0)));
    }

    #[test]
    fn placement_queries() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(4),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        assert_eq!(c.job_locality(AppId(1), JobId(0)), Locality::Rack);
        assert!(c.job_placement_score(AppId(1), JobId(0)) < 1.0);
    }

    #[test]
    fn apps_with_gpus_counts() {
        let mut c = cluster();
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(1),
            AppId(2),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c.allocate(
            GpuId(2),
            AppId(2),
            JobId(1),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        let counts = c.apps_with_gpus();
        assert_eq!(counts[&AppId(1)], 1);
        assert_eq!(counts[&AppId(2)], 2);
    }
}

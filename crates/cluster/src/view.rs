//! Borrowed scheduling views over a [`Cluster`].
//!
//! Every scheduling policy needs a *shadow* of the cluster while it decides
//! a round: it tentatively hands out free GPUs one by one and must see its
//! own in-flight grants reflected in subsequent queries. Policies used to
//! `Cluster::clone()` for this — copying the whole topology, the lease
//! table and every assignment once per round. A [`ClusterView`] replaces
//! that clone: it *borrows* the real cluster and layers a small per-round
//! overlay of tentative grants on top, so creating one costs two flat-array
//! copies (the free bitmask and the per-machine free counts) instead of a
//! deep clone of the cluster.
//!
//! The [`ClusterState`] trait abstracts the read side shared by [`Cluster`]
//! and [`ClusterView`], so placement helpers (`pick_gpus_packed`,
//! `split_among_jobs`, bid preparation) run unchanged against either the
//! committed state or a mid-round shadow.

use crate::alloc::{DenseBitSet, FreeVector, GpuAlloc};
use crate::cluster::{Assignment, Cluster};
use crate::error::ClusterError;
use crate::ids::{AppId, GpuId, JobId, MachineId};
use crate::placement::PlacementScorer;
use crate::topology::ClusterSpec;

/// Read access to allocation state, implemented by both the committed
/// [`Cluster`] and the per-round [`ClusterView`] shadow.
pub trait ClusterState {
    /// The immutable topology.
    fn spec(&self) -> &ClusterSpec;

    /// The placement scorer in use.
    fn scorer(&self) -> &PlacementScorer;

    /// The assignment holding a GPU, if it is allocated.
    fn assignment(&self, gpu: GpuId) -> Option<Assignment>;

    /// Whether a GPU exists and is currently free.
    fn is_free(&self, gpu: GpuId) -> bool;

    /// Number of free GPUs. O(1) on both implementations.
    fn free_gpu_count(&self) -> usize;

    /// All currently free GPUs, in id order.
    fn free_gpus(&self) -> Vec<GpuId>;

    /// Free GPUs on a specific machine, in id order.
    fn free_gpus_on(&self, machine: MachineId) -> Vec<GpuId>;

    /// The per-machine free-GPU vector.
    fn free_vector(&self) -> FreeVector;

    /// All GPUs held by an app.
    fn gpus_of_app(&self, app: AppId) -> GpuAlloc;

    /// Number of GPUs held by an app.
    fn gpus_held_by(&self, app: AppId) -> usize;

    /// All GPUs held by a specific job.
    fn gpus_of_job(&self, app: AppId, job: JobId) -> GpuAlloc;

    /// Total number of GPUs in the cluster.
    fn total_gpus(&self) -> usize {
        self.spec().total_gpus()
    }

    /// Speed factor of a GPU (1.0 for unknown GPUs — the reference speed).
    /// O(1) via the spec's precomputed GPU → (machine, rack, slot, speed)
    /// table; shared by [`Cluster`] and the per-round [`ClusterView`]
    /// shadow, so speed-aware placement helpers run against either.
    fn gpu_speed(&self, gpu: GpuId) -> f64 {
        self.spec().speed_of(gpu).unwrap_or(1.0)
    }

    /// Speed factor shared by every GPU of a machine (1.0 for unknown
    /// machines).
    fn machine_speed(&self, machine: MachineId) -> f64 {
        self.spec().machine_speed(machine).unwrap_or(1.0)
    }
}

impl ClusterState for Cluster {
    fn spec(&self) -> &ClusterSpec {
        Cluster::spec(self)
    }

    fn scorer(&self) -> &PlacementScorer {
        Cluster::scorer(self)
    }

    fn assignment(&self, gpu: GpuId) -> Option<Assignment> {
        Cluster::assignment(self, gpu)
    }

    fn is_free(&self, gpu: GpuId) -> bool {
        Cluster::is_free(self, gpu)
    }

    fn free_gpu_count(&self) -> usize {
        Cluster::free_gpu_count(self)
    }

    fn free_gpus(&self) -> Vec<GpuId> {
        Cluster::free_gpus(self)
    }

    fn free_gpus_on(&self, machine: MachineId) -> Vec<GpuId> {
        Cluster::free_gpus_on(self, machine)
    }

    fn free_vector(&self) -> FreeVector {
        Cluster::free_vector(self)
    }

    fn gpus_of_app(&self, app: AppId) -> GpuAlloc {
        Cluster::gpus_of_app(self, app)
    }

    fn gpus_held_by(&self, app: AppId) -> usize {
        Cluster::gpus_held_by(self, app)
    }

    fn gpus_of_job(&self, app: AppId, job: JobId) -> GpuAlloc {
        Cluster::gpus_of_job(self, app, job)
    }
}

/// A borrowed per-round scheduling shadow: the committed cluster plus an
/// overlay of this round's tentative grants.
#[derive(Debug, Clone)]
pub struct ClusterView<'a> {
    base: &'a Cluster,
    /// GPUs free in `base` *and* not yet granted through this view.
    free: DenseBitSet,
    /// This round's tentative grants, in grant order (small).
    granted: Vec<(GpuId, Assignment)>,
    /// Per-machine free counts, including overlay grants.
    free_per_machine: Vec<u32>,
    free_count: usize,
}

impl Cluster {
    /// Opens a borrowed scheduling view over this cluster (see
    /// [`ClusterView`]). Cheap: copies the free bitmask and the per-machine
    /// free counts, nothing else.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            base: self,
            free: self.free_mask().clone(),
            granted: Vec::new(),
            free_per_machine: self.free_counts().to_vec(),
            free_count: self.free_gpu_count(),
        }
    }
}

impl ClusterView<'_> {
    /// The committed cluster underneath this view.
    pub fn base(&self) -> &Cluster {
        self.base
    }

    /// The grants tentatively made through this view, in grant order.
    pub fn granted(&self) -> &[(GpuId, Assignment)] {
        &self.granted
    }

    /// Tentatively grants a free GPU to `(app, job)` within this round.
    /// Mirrors [`Cluster::allocate`]'s error behavior, minus leases (the
    /// engine grants the real lease when it applies the decisions).
    pub fn allocate(&mut self, gpu: GpuId, app: AppId, job: JobId) -> Result<(), ClusterError> {
        if gpu.index() >= self.base.total_gpus() {
            return Err(ClusterError::UnknownGpu { gpu });
        }
        if !self.free.remove(gpu.index()) {
            let held_by = self
                .assignment(gpu)
                .map(|a| a.app)
                .unwrap_or(AppId(u32::MAX));
            return Err(ClusterError::GpuBusy { gpu, held_by });
        }
        let machine = self.base.spec().machine_of(gpu).expect("gpu exists");
        self.free_per_machine[machine.index()] -= 1;
        self.free_count -= 1;
        self.granted.push((gpu, Assignment { app, job }));
        Ok(())
    }

    fn overlay_gpus(&self, app: AppId, job: Option<JobId>) -> Vec<GpuId> {
        self.granted
            .iter()
            .filter(|(_, a)| a.app == app && job.is_none_or(|j| a.job == j))
            .map(|(g, _)| *g)
            .collect()
    }
}

impl ClusterState for ClusterView<'_> {
    fn spec(&self) -> &ClusterSpec {
        self.base.spec()
    }

    fn scorer(&self) -> &PlacementScorer {
        self.base.scorer()
    }

    fn assignment(&self, gpu: GpuId) -> Option<Assignment> {
        self.base.assignment(gpu).or_else(|| {
            self.granted
                .iter()
                .find(|(g, _)| *g == gpu)
                .map(|(_, a)| *a)
        })
    }

    fn is_free(&self, gpu: GpuId) -> bool {
        self.free.contains(gpu.index())
    }

    fn free_gpu_count(&self) -> usize {
        self.free_count
    }

    fn free_gpus(&self) -> Vec<GpuId> {
        self.free.iter().map(|idx| GpuId(idx as u32)).collect()
    }

    fn free_gpus_on(&self, machine: MachineId) -> Vec<GpuId> {
        match self.base.spec().machine(machine) {
            Some(m) => m
                .gpus
                .iter()
                .copied()
                .filter(|g| self.free.contains(g.index()))
                .collect(),
            None => Vec::new(),
        }
    }

    fn free_vector(&self) -> FreeVector {
        FreeVector::from_counts(
            self.free_per_machine
                .iter()
                .enumerate()
                .map(|(m, c)| (MachineId(m as u32), *c as usize)),
        )
    }

    fn gpus_of_app(&self, app: AppId) -> GpuAlloc {
        let overlay = self.overlay_gpus(app, None);
        if overlay.is_empty() {
            return self.base.gpus_of_app(app);
        }
        self.base
            .gpus_of_app(app)
            .union(&GpuAlloc::from_gpus(overlay))
    }

    fn gpus_held_by(&self, app: AppId) -> usize {
        self.base.gpus_held_by(app) + self.granted.iter().filter(|(_, a)| a.app == app).count()
    }

    fn gpus_of_job(&self, app: AppId, job: JobId) -> GpuAlloc {
        let overlay = self.overlay_gpus(app, Some(job));
        if overlay.is_empty() {
            return self.base.gpus_of_job(app, job);
        }
        self.base
            .gpus_of_job(app, job)
            .union(&GpuAlloc::from_gpus(overlay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn cluster() -> Cluster {
        let mut c = Cluster::new(ClusterSpec::builder().rack(|r| r.machines(2, 4)).build());
        c.allocate(
            GpuId(0),
            AppId(1),
            JobId(0),
            Time::ZERO,
            Time::minutes(20.0),
        )
        .unwrap();
        c
    }

    #[test]
    fn view_mirrors_base_until_granted() {
        let c = cluster();
        let view = c.view();
        assert_eq!(view.free_gpu_count(), 7);
        assert_eq!(view.free_gpus(), c.free_gpus());
        assert_eq!(view.free_vector(), c.free_vector());
        assert_eq!(view.gpus_of_app(AppId(1)).len(), 1);
        assert_eq!(view.assignment(GpuId(0)).unwrap().app, AppId(1));
        assert!(view.is_free(GpuId(1)));
        assert_eq!(view.total_gpus(), 8);
        assert!(view.granted().is_empty());
    }

    #[test]
    fn grants_overlay_without_touching_base() {
        let c = cluster();
        let mut view = c.view();
        view.allocate(GpuId(1), AppId(2), JobId(3)).unwrap();
        view.allocate(GpuId(4), AppId(2), JobId(3)).unwrap();
        assert_eq!(view.free_gpu_count(), 5);
        assert!(!view.is_free(GpuId(1)));
        assert_eq!(view.gpus_of_app(AppId(2)).len(), 2);
        assert_eq!(view.gpus_held_by(AppId(2)), 2);
        assert_eq!(view.gpus_of_job(AppId(2), JobId(3)).len(), 2);
        assert_eq!(view.gpus_of_job(AppId(2), JobId(9)).len(), 0);
        assert_eq!(view.assignment(GpuId(1)).unwrap().job, JobId(3));
        assert_eq!(view.free_vector().on_machine(MachineId(0)), 2);
        assert_eq!(
            view.free_gpus_on(MachineId(1)),
            vec![GpuId(5), GpuId(6), GpuId(7)]
        );
        // The committed cluster is untouched.
        assert_eq!(c.free_gpu_count(), 7);
        assert!(c.is_free(GpuId(1)));
    }

    #[test]
    fn double_grant_and_busy_gpus_error() {
        let c = cluster();
        let mut view = c.view();
        view.allocate(GpuId(1), AppId(2), JobId(0)).unwrap();
        assert!(matches!(
            view.allocate(GpuId(1), AppId(3), JobId(0)),
            Err(ClusterError::GpuBusy { .. })
        ));
        assert!(matches!(
            view.allocate(GpuId(0), AppId(3), JobId(0)),
            Err(ClusterError::GpuBusy {
                held_by: AppId(1),
                ..
            })
        ));
        assert!(matches!(
            view.allocate(GpuId(99), AppId(3), JobId(0)),
            Err(ClusterError::UnknownGpu { .. })
        ));
    }

    #[test]
    fn speed_queries_flow_through_state_and_view() {
        use crate::topology::GpuGeneration;
        let spec =
            ClusterSpec::synthetic_mixed(1, 2, 4, &[GpuGeneration::Volta, GpuGeneration::Pascal]);
        let c = Cluster::new(spec);
        let view = c.view();
        for state in [&c as &dyn ClusterState, &view as &dyn ClusterState] {
            assert_eq!(state.gpu_speed(GpuId(0)), 2.0);
            assert_eq!(state.gpu_speed(GpuId(4)), 1.0);
            assert_eq!(state.gpu_speed(GpuId(99)), 1.0, "unknown GPUs default");
            assert_eq!(state.machine_speed(MachineId(0)), 2.0);
            assert_eq!(state.machine_speed(MachineId(1)), 1.0);
            assert_eq!(state.machine_speed(MachineId(9)), 1.0);
        }
    }

    #[test]
    fn overlay_merges_with_base_allocation() {
        let c = cluster();
        let mut view = c.view();
        view.allocate(GpuId(2), AppId(1), JobId(0)).unwrap();
        let merged: Vec<GpuId> = view.gpus_of_app(AppId(1)).into_iter().collect();
        assert_eq!(merged, vec![GpuId(0), GpuId(2)]);
        let by_job: Vec<GpuId> = view.gpus_of_job(AppId(1), JobId(0)).into_iter().collect();
        assert_eq!(by_job, vec![GpuId(0), GpuId(2)]);
        assert_eq!(view.gpus_held_by(AppId(1)), 2);
    }
}

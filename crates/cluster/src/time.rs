//! Simulation time.
//!
//! The whole workspace measures time in **minutes** expressed as `f64`,
//! matching the units the paper reports (task durations, lease durations and
//! inter-arrival times are all given in minutes). [`Time`] is a thin wrapper
//! that provides total ordering (NaN is rejected at construction) so that
//! times can be used as keys in the simulator's event queue.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), in minutes.
///
/// `Time` is totally ordered; constructing a `Time` from NaN panics, which
/// keeps the ordering well defined everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Time(f64);

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0.0);

    /// A very large time used to mean "never" / "unbounded".
    pub const INFINITY: Time = Time(f64::INFINITY);

    /// Creates a time value from minutes.
    ///
    /// # Panics
    /// Panics if `minutes` is NaN.
    pub fn minutes(minutes: f64) -> Self {
        assert!(!minutes.is_nan(), "Time cannot be NaN");
        Time(minutes)
    }

    /// Creates a time value from hours.
    pub fn hours(hours: f64) -> Self {
        Self::minutes(hours * 60.0)
    }

    /// Creates a time value from seconds.
    pub fn seconds(seconds: f64) -> Self {
        Self::minutes(seconds / 60.0)
    }

    /// The value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0
    }

    /// The value in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 60.0
    }

    /// The value in GPU-seconds when interpreted as a duration.
    pub fn as_seconds(self) -> f64 {
        self.0 * 60.0
    }

    /// Returns `true` if this time is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the maximum of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps the value to be at least zero.
    pub fn clamp_non_negative(self) -> Time {
        if self.0 < 0.0 {
            Time::ZERO
        } else {
            self
        }
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is rejected at construction, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("Time is never NaN by construction")
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time::minutes(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    fn div(self, rhs: f64) -> Time {
        Time::minutes(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = f64;
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.2}min", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Time::hours(2.0).as_minutes(), 120.0);
        assert_eq!(Time::seconds(90.0).as_minutes(), 1.5);
        assert_eq!(Time::minutes(30.0).as_hours(), 0.5);
        assert_eq!(Time::minutes(1.0).as_seconds(), 60.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Time::minutes(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            Time::minutes(5.0),
            Time::ZERO,
            Time::INFINITY,
            Time::minutes(1.0),
        ];
        times.sort();
        assert_eq!(times[0], Time::ZERO);
        assert_eq!(times[3], Time::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let t = Time::minutes(10.0) + Time::minutes(5.0);
        assert_eq!(t, Time::minutes(15.0));
        let d = t - Time::minutes(20.0);
        assert_eq!(d.clamp_non_negative(), Time::ZERO);
        assert_eq!((Time::minutes(10.0) * 3.0).as_minutes(), 30.0);
        assert_eq!((Time::minutes(10.0) / 2.0).as_minutes(), 5.0);
        assert_eq!(Time::minutes(10.0) / Time::minutes(4.0), 2.5);
    }

    #[test]
    fn min_max() {
        let a = Time::minutes(3.0);
        let b = Time::minutes(7.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display() {
        assert_eq!(Time::minutes(1.5).to_string(), "1.50min");
        assert_eq!(Time::INFINITY.to_string(), "∞");
    }
}

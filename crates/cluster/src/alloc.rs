//! GPU allocation vectors.
//!
//! Two related representations are used throughout the scheduler:
//!
//! * [`GpuAlloc`] — a concrete set of GPU ids held by (or proposed for) a
//!   job or app. This is the `[G_{x,y,i}]` vector of the paper's
//!   optimization program (§4), stored as a sorted dense vector.
//! * [`FreeVector`] — per-machine counts of *free* GPUs; this is the
//!   resource offer `R` the Arbiter auctions off, where each dimension is
//!   the number of unused GPUs in a given machine (§5.1), stored as a
//!   dense machine-indexed count vector.
//!
//! Both types used to be `BTreeSet`/`BTreeMap`-backed. They sit on the
//! auction hot path — every scheduling round builds, merges and subtracts
//! hundreds of them — so they are now flat vectors: iteration is a linear
//! scan, set operations are merges, and membership is a binary search (or
//! an O(1) index for [`FreeVector`]). GPU and machine ids are dense and
//! builder-assigned (see `ClusterSpec`), which is what makes the dense
//! indexing sound. All iteration orders remain ascending-by-id, exactly
//! as with the ordered-tree representations, so scheduling decisions and
//! committed sweep baselines are unchanged. [`DenseBitSet`] is the shared
//! bitset companion used for O(1) membership over the GPU universe.

use crate::ids::{GpuId, MachineId};
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A fixed-universe bitset over dense ids (one bit per GPU).
///
/// The sorted-vector [`GpuAlloc`] is the representation of record; this is
/// its constant-time-membership companion for hot loops that test "is this
/// GPU in the set?" many times against the same allocation (placement
/// scoring, shadow free-tracking in `ClusterView`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

/// Equality is over set *contents*: trailing zero words (a larger universe,
/// or capacity left behind by remove) never distinguish two sets.
impl PartialEq for DenseBitSet {
    fn eq(&self, other: &Self) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|w| *w == 0)
            && other.words[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for DenseBitSet {}

impl DenseBitSet {
    /// An empty bitset sized for a universe of `universe` ids.
    pub fn with_universe(universe: usize) -> Self {
        DenseBitSet {
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Sets bit `idx`, growing the universe if needed. Returns `true` if
    /// the bit was newly set.
    pub fn insert(&mut self, idx: usize) -> bool {
        let word = idx / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (idx % 64);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        newly
    }

    /// Clears bit `idx`. Returns `true` if the bit was set.
    pub fn remove(&mut self, idx: usize) -> bool {
        let word = idx / 64;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (idx % 64);
        let was = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was
    }

    /// Whether bit `idx` is set.
    pub fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, word)| {
            let mut w = *word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

/// A concrete set of GPUs assigned to one job or app.
///
/// Internally a sorted, deduplicated vector of GPU ids, so iteration order
/// (and therefore every simulation that consumes it) is deterministic and
/// ascending — identical to the previous `BTreeSet` representation, minus
/// the per-node allocations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuAlloc {
    gpus: Vec<GpuId>,
}

impl GpuAlloc {
    /// The empty allocation.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an allocation from an iterator of GPU ids.
    pub fn from_gpus(gpus: impl IntoIterator<Item = GpuId>) -> Self {
        let mut gpus: Vec<GpuId> = gpus.into_iter().collect();
        gpus.sort_unstable();
        gpus.dedup();
        GpuAlloc { gpus }
    }

    /// Builds an allocation from an already sorted, deduplicated vector
    /// (the fast path used by the assignment arena's per-app index).
    pub fn from_sorted(gpus: Vec<GpuId>) -> Self {
        debug_assert!(gpus.windows(2).all(|w| w[0] < w[1]), "must be sorted");
        GpuAlloc { gpus }
    }

    /// Number of GPUs in the allocation.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// `true` if no GPUs are held.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// The GPU ids as a sorted slice.
    pub fn as_slice(&self) -> &[GpuId] {
        &self.gpus
    }

    /// Whether a specific GPU is part of this allocation.
    pub fn contains(&self, gpu: GpuId) -> bool {
        self.gpus.binary_search(&gpu).is_ok()
    }

    /// Adds a GPU; returns `true` if it was newly inserted.
    pub fn insert(&mut self, gpu: GpuId) -> bool {
        match self.gpus.binary_search(&gpu) {
            Ok(_) => false,
            Err(pos) => {
                self.gpus.insert(pos, gpu);
                true
            }
        }
    }

    /// Removes a GPU; returns `true` if it was present.
    pub fn remove(&mut self, gpu: GpuId) -> bool {
        match self.gpus.binary_search(&gpu) {
            Ok(pos) => {
                self.gpus.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over the GPUs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.gpus.iter().copied()
    }

    /// Set-union with another allocation (sorted merge).
    pub fn union(&self, other: &GpuAlloc) -> GpuAlloc {
        let mut out = Vec::with_capacity(self.gpus.len() + other.gpus.len());
        let (mut a, mut b) = (0, 0);
        while a < self.gpus.len() && b < other.gpus.len() {
            match self.gpus[a].cmp(&other.gpus[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.gpus[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.gpus[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.gpus[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        out.extend_from_slice(&self.gpus[a..]);
        out.extend_from_slice(&other.gpus[b..]);
        GpuAlloc { gpus: out }
    }

    /// GPUs in `self` but not in `other` (sorted merge).
    pub fn difference(&self, other: &GpuAlloc) -> GpuAlloc {
        let mut out = Vec::with_capacity(self.gpus.len());
        let mut b = 0;
        for &gpu in &self.gpus {
            while b < other.gpus.len() && other.gpus[b] < gpu {
                b += 1;
            }
            if b >= other.gpus.len() || other.gpus[b] != gpu {
                out.push(gpu);
            }
        }
        GpuAlloc { gpus: out }
    }

    /// GPUs present in both allocations (sorted merge).
    pub fn intersection(&self, other: &GpuAlloc) -> GpuAlloc {
        let mut out = Vec::new();
        let (mut a, mut b) = (0, 0);
        while a < self.gpus.len() && b < other.gpus.len() {
            match self.gpus[a].cmp(&other.gpus[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.gpus[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        GpuAlloc { gpus: out }
    }

    /// `true` if the two allocations share no GPU.
    pub fn is_disjoint(&self, other: &GpuAlloc) -> bool {
        let (mut a, mut b) = (0, 0);
        while a < self.gpus.len() && b < other.gpus.len() {
            match self.gpus[a].cmp(&other.gpus[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The allocation as a [`DenseBitSet`] over the cluster's GPU universe.
    pub fn to_bitset(&self, universe: usize) -> DenseBitSet {
        let mut set = DenseBitSet::with_universe(universe);
        for gpu in &self.gpus {
            set.insert(gpu.index());
        }
        set
    }

    /// Per-machine GPU counts for this allocation.
    ///
    /// GPU ids are machine-contiguous (builder-assigned), so the sorted
    /// vector groups by machine in one pass with ascending-key insertion.
    pub fn per_machine(&self, spec: &ClusterSpec) -> BTreeMap<MachineId, usize> {
        let mut counts = BTreeMap::new();
        let mut run: Option<(MachineId, usize)> = None;
        for &gpu in &self.gpus {
            let Some(machine) = spec.machine_of(gpu) else {
                continue;
            };
            match run {
                Some((m, ref mut c)) if m == machine => *c += 1,
                _ => {
                    if let Some((m, c)) = run.take() {
                        *counts.entry(m).or_insert(0) += c;
                    }
                    run = Some((machine, 1));
                }
            }
        }
        if let Some((m, c)) = run {
            *counts.entry(m).or_insert(0) += c;
        }
        counts
    }

    /// The set of distinct machines spanned by this allocation.
    pub fn machines(&self, spec: &ClusterSpec) -> BTreeSet<MachineId> {
        self.gpus
            .iter()
            .filter_map(|g| spec.machine_of(*g))
            .collect()
    }
}

impl FromIterator<GpuId> for GpuAlloc {
    fn from_iter<T: IntoIterator<Item = GpuId>>(iter: T) -> Self {
        GpuAlloc::from_gpus(iter)
    }
}

impl IntoIterator for GpuAlloc {
    type Item = GpuId;
    type IntoIter = std::vec::IntoIter<GpuId>;
    fn into_iter(self) -> Self::IntoIter {
        self.gpus.into_iter()
    }
}

/// Per-machine counts of free GPUs: the resource offer `R` auctioned by the
/// Arbiter.
///
/// Stored as a dense vector indexed by machine id with a cached total, so
/// `on_machine` and `total` are O(1) and arithmetic is a flat-array walk.
/// Trailing zero counts are trimmed after every mutation, which keeps the
/// derived equality identical to the sparse representation's ("machines
/// with zero free GPUs are omitted").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreeVector {
    counts: Vec<u32>,
    total: usize,
}

impl FreeVector {
    /// An empty offer.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a free vector from `(machine, count)` pairs, dropping zeros.
    /// Pairs for the same machine accumulate.
    pub fn from_counts(counts: impl IntoIterator<Item = (MachineId, usize)>) -> Self {
        let mut out = FreeVector::empty();
        for (machine, count) in counts {
            if count > 0 {
                let current = out.on_machine(machine);
                out.set(machine, current + count);
            }
        }
        out
    }

    /// Builds a free vector describing a concrete *set* of free GPUs:
    /// duplicate ids count once, exactly as with the previous
    /// `GpuAlloc`-backed implementation.
    pub fn from_gpus(gpus: impl IntoIterator<Item = GpuId>, spec: &ClusterSpec) -> Self {
        let alloc = GpuAlloc::from_gpus(gpus);
        let mut out = FreeVector::empty();
        for gpu in alloc.iter() {
            if let Some(machine) = spec.machine_of(gpu) {
                let current = out.on_machine(machine);
                out.set(machine, current + 1);
            }
        }
        out
    }

    /// Total number of free GPUs in the offer.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` if the offer contains no GPUs.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Removes every count (keeps the backing storage for reuse).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Free GPUs on one machine (0 if the machine is not in the offer).
    pub fn on_machine(&self, machine: MachineId) -> usize {
        self.counts
            .get(machine.index())
            .map(|c| *c as usize)
            .unwrap_or(0)
    }

    /// Iterates over `(machine, free GPU count)` pairs in machine order.
    pub fn iter(&self) -> impl Iterator<Item = (MachineId, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(m, c)| (MachineId(m as u32), *c as usize))
    }

    /// Machines that have at least one free GPU.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.iter().map(|(m, _)| m)
    }

    /// Sets the count for a machine (removing it when zero).
    pub fn set(&mut self, machine: MachineId, count: usize) {
        let idx = machine.index();
        if idx >= self.counts.len() {
            if count == 0 {
                return;
            }
            self.counts.resize(idx + 1, 0);
        }
        self.total = self.total - self.counts[idx] as usize + count;
        self.counts[idx] = count as u32;
        if count == 0 {
            while self.counts.last() == Some(&0) {
                self.counts.pop();
            }
        }
    }

    /// Adds another free vector into `self` in place.
    pub fn add_assign(&mut self, other: &FreeVector) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (idx, count) in other.counts.iter().enumerate() {
            self.counts[idx] += count;
        }
        self.total += other.total;
    }

    /// Subtracts another free vector (saturating at zero per machine).
    /// Used to remove already-won resources from a running offer.
    pub fn saturating_sub(&self, other: &FreeVector) -> FreeVector {
        let mut out = self.clone();
        for (idx, count) in other.counts.iter().enumerate() {
            if let Some(mine) = out.counts.get_mut(idx) {
                let taken = (*mine).min(*count);
                *mine -= taken;
                out.total -= taken as usize;
            }
        }
        while out.counts.last() == Some(&0) {
            out.counts.pop();
        }
        out
    }

    /// Adds another free vector.
    pub fn add(&self, other: &FreeVector) -> FreeVector {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// `true` if `other` fits inside this offer (per machine).
    pub fn contains_vector(&self, other: &FreeVector) -> bool {
        if other.total > self.total {
            return false;
        }
        other
            .counts
            .iter()
            .enumerate()
            .all(|(idx, count)| *count == 0 || self.counts.get(idx).is_some_and(|c| c >= count))
    }

    /// Scales every machine count by `factor`, rounding down.
    /// Used by the partial-allocation mechanism's hidden payment (§5.1).
    pub fn scale_floor(&self, factor: f64) -> FreeVector {
        assert!(
            (0.0..=1.0).contains(&factor),
            "scale factor must be in [0,1]"
        );
        FreeVector::from_counts(
            self.iter()
                .map(|(m, c)| (m, ((c as f64) * factor).floor() as usize)),
        )
    }
}

impl FromIterator<(MachineId, usize)> for FreeVector {
    fn from_iter<T: IntoIterator<Item = (MachineId, usize)>>(iter: T) -> Self {
        FreeVector::from_counts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        // 2 machines with 4 GPUs, 1 machine with 2 GPUs.
        ClusterSpec::builder()
            .rack(|r| r.machines(2, 4))
            .rack(|r| r.machines(1, 2))
            .build()
    }

    #[test]
    fn gpu_alloc_set_operations() {
        let a = GpuAlloc::from_gpus([GpuId(0), GpuId(1), GpuId(2)]);
        let b = GpuAlloc::from_gpus([GpuId(2), GpuId(3)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn gpu_alloc_orders_and_dedups() {
        let a = GpuAlloc::from_gpus([GpuId(3), GpuId(0), GpuId(3), GpuId(1)]);
        let collected: Vec<GpuId> = a.iter().collect();
        assert_eq!(collected, vec![GpuId(0), GpuId(1), GpuId(3)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.as_slice(), &[GpuId(0), GpuId(1), GpuId(3)]);
    }

    #[test]
    fn gpu_alloc_per_machine() {
        let spec = spec();
        let alloc = GpuAlloc::from_gpus([GpuId(0), GpuId(1), GpuId(4), GpuId(8)]);
        let per = alloc.per_machine(&spec);
        assert_eq!(per.get(&MachineId(0)), Some(&2));
        assert_eq!(per.get(&MachineId(1)), Some(&1));
        assert_eq!(per.get(&MachineId(2)), Some(&1));
        assert_eq!(alloc.machines(&spec).len(), 3);
    }

    #[test]
    fn gpu_alloc_insert_remove() {
        let mut alloc = GpuAlloc::empty();
        assert!(alloc.insert(GpuId(5)));
        assert!(!alloc.insert(GpuId(5)));
        assert!(alloc.contains(GpuId(5)));
        assert!(alloc.remove(GpuId(5)));
        assert!(!alloc.remove(GpuId(5)));
        assert!(alloc.is_empty());
    }

    #[test]
    fn dense_bitset_roundtrips() {
        let mut set = DenseBitSet::with_universe(70);
        assert!(set.insert(0));
        assert!(set.insert(69));
        assert!(set.insert(130), "grows past the initial universe");
        assert!(!set.insert(69));
        assert!(set.contains(69));
        assert!(!set.contains(1));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 69, 130]);
        assert_eq!(set.len(), 3);
        assert!(set.remove(69));
        assert!(!set.remove(69));
        assert!(!set.remove(4096), "out of universe is a no-op");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let from_alloc = GpuAlloc::from_gpus([GpuId(2), GpuId(64)]).to_bitset(66);
        assert!(from_alloc.contains(2) && from_alloc.contains(64));
    }

    #[test]
    fn dense_bitset_equality_ignores_universe_size() {
        // Different universes, same (empty) contents.
        assert_eq!(
            DenseBitSet::with_universe(64),
            DenseBitSet::with_universe(256)
        );
        let mut a = DenseBitSet::with_universe(64);
        let mut b = DenseBitSet::with_universe(512);
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        // Growth followed by removal leaves trailing zero words behind;
        // still equal to a set that never grew.
        b.insert(400);
        assert_ne!(a, b);
        b.remove(400);
        assert_eq!(a, b);
    }

    #[test]
    fn free_vector_totals_and_lookup() {
        let fv = FreeVector::from_counts([(MachineId(0), 3), (MachineId(2), 1), (MachineId(5), 0)]);
        assert_eq!(fv.total(), 4);
        assert_eq!(fv.on_machine(MachineId(0)), 3);
        assert_eq!(fv.on_machine(MachineId(5)), 0);
        assert_eq!(fv.machines().count(), 2);
    }

    #[test]
    fn free_vector_equality_ignores_zero_machines() {
        let a = FreeVector::from_counts([(MachineId(1), 2)]);
        let mut b = FreeVector::from_counts([(MachineId(1), 2), (MachineId(7), 3)]);
        b.set(MachineId(7), 0);
        assert_eq!(a, b, "trailing zeros must not affect equality");
        let mut c = FreeVector::from_counts([(MachineId(0), 1), (MachineId(1), 2)]);
        c.set(MachineId(0), 0);
        assert_eq!(a, c, "interior zeros equal the sparse form");
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(MachineId(1), 2)]);
    }

    #[test]
    fn free_vector_from_gpus() {
        let spec = spec();
        let fv = FreeVector::from_gpus([GpuId(0), GpuId(1), GpuId(9)], &spec);
        assert_eq!(fv.on_machine(MachineId(0)), 2);
        assert_eq!(fv.on_machine(MachineId(2)), 1);
    }

    #[test]
    fn free_vector_arithmetic() {
        let a = FreeVector::from_counts([(MachineId(0), 3), (MachineId(1), 2)]);
        let b = FreeVector::from_counts([(MachineId(0), 1), (MachineId(1), 5)]);
        let diff = a.saturating_sub(&b);
        assert_eq!(diff.on_machine(MachineId(0)), 2);
        assert_eq!(diff.on_machine(MachineId(1)), 0);
        assert_eq!(diff.total(), 2);
        let sum = a.add(&b);
        assert_eq!(sum.on_machine(MachineId(1)), 7);
        assert_eq!(sum.total(), 11);
        assert!(a.contains_vector(&FreeVector::from_counts([(MachineId(0), 3)])));
        assert!(!a.contains_vector(&b));
        let mut acc = a.clone();
        acc.add_assign(&b);
        assert_eq!(acc, sum);
        acc.clear();
        assert!(acc.is_empty());
    }

    #[test]
    fn free_vector_scale_floor() {
        let a = FreeVector::from_counts([(MachineId(0), 4), (MachineId(1), 3)]);
        let half = a.scale_floor(0.5);
        assert_eq!(half.on_machine(MachineId(0)), 2);
        assert_eq!(half.on_machine(MachineId(1)), 1);
        assert_eq!(a.scale_floor(1.0), a);
        assert!(a.scale_floor(0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_floor_rejects_out_of_range() {
        let a = FreeVector::from_counts([(MachineId(0), 4)]);
        let _ = a.scale_floor(1.5);
    }
}

//! GPU allocation vectors.
//!
//! Two related representations are used throughout the scheduler:
//!
//! * [`GpuAlloc`] — a concrete set of GPU ids held by (or proposed for) a
//!   job or app. This is the `[G_{x,y,i}]` vector of the paper's
//!   optimization program (§4), stored sparsely.
//! * [`FreeVector`] — per-machine counts of *free* GPUs; this is the
//!   resource offer `R` the Arbiter auctions off, where each dimension is
//!   the number of unused GPUs in a given machine (§5.1).

use crate::ids::{GpuId, MachineId};
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A concrete set of GPUs assigned to one job or app.
///
/// Internally a sorted set, so iteration order (and therefore every
/// simulation that consumes it) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuAlloc {
    gpus: BTreeSet<GpuId>,
}

impl GpuAlloc {
    /// The empty allocation.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an allocation from an iterator of GPU ids.
    pub fn from_gpus(gpus: impl IntoIterator<Item = GpuId>) -> Self {
        GpuAlloc {
            gpus: gpus.into_iter().collect(),
        }
    }

    /// Number of GPUs in the allocation.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// `true` if no GPUs are held.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Whether a specific GPU is part of this allocation.
    pub fn contains(&self, gpu: GpuId) -> bool {
        self.gpus.contains(&gpu)
    }

    /// Adds a GPU; returns `true` if it was newly inserted.
    pub fn insert(&mut self, gpu: GpuId) -> bool {
        self.gpus.insert(gpu)
    }

    /// Removes a GPU; returns `true` if it was present.
    pub fn remove(&mut self, gpu: GpuId) -> bool {
        self.gpus.remove(&gpu)
    }

    /// Iterates over the GPUs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.gpus.iter().copied()
    }

    /// Set-union with another allocation.
    pub fn union(&self, other: &GpuAlloc) -> GpuAlloc {
        GpuAlloc {
            gpus: self.gpus.union(&other.gpus).copied().collect(),
        }
    }

    /// GPUs in `self` but not in `other`.
    pub fn difference(&self, other: &GpuAlloc) -> GpuAlloc {
        GpuAlloc {
            gpus: self.gpus.difference(&other.gpus).copied().collect(),
        }
    }

    /// GPUs present in both allocations.
    pub fn intersection(&self, other: &GpuAlloc) -> GpuAlloc {
        GpuAlloc {
            gpus: self.gpus.intersection(&other.gpus).copied().collect(),
        }
    }

    /// `true` if the two allocations share no GPU.
    pub fn is_disjoint(&self, other: &GpuAlloc) -> bool {
        self.gpus.is_disjoint(&other.gpus)
    }

    /// Per-machine GPU counts for this allocation.
    pub fn per_machine(&self, spec: &ClusterSpec) -> BTreeMap<MachineId, usize> {
        let mut counts = BTreeMap::new();
        for gpu in &self.gpus {
            if let Some(machine) = spec.machine_of(*gpu) {
                *counts.entry(machine).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The set of distinct machines spanned by this allocation.
    pub fn machines(&self, spec: &ClusterSpec) -> BTreeSet<MachineId> {
        self.gpus
            .iter()
            .filter_map(|g| spec.machine_of(*g))
            .collect()
    }
}

impl FromIterator<GpuId> for GpuAlloc {
    fn from_iter<T: IntoIterator<Item = GpuId>>(iter: T) -> Self {
        GpuAlloc::from_gpus(iter)
    }
}

impl IntoIterator for GpuAlloc {
    type Item = GpuId;
    type IntoIter = std::collections::btree_set::IntoIter<GpuId>;
    fn into_iter(self) -> Self::IntoIter {
        self.gpus.into_iter()
    }
}

/// Per-machine counts of free GPUs: the resource offer `R` auctioned by the
/// Arbiter. Machines with zero free GPUs are omitted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreeVector {
    counts: BTreeMap<MachineId, usize>,
}

impl FreeVector {
    /// An empty offer.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a free vector from `(machine, count)` pairs, dropping zeros.
    pub fn from_counts(counts: impl IntoIterator<Item = (MachineId, usize)>) -> Self {
        FreeVector {
            counts: counts.into_iter().filter(|(_, c)| *c > 0).collect(),
        }
    }

    /// Builds a free vector describing a concrete set of free GPUs.
    pub fn from_gpus(gpus: impl IntoIterator<Item = GpuId>, spec: &ClusterSpec) -> Self {
        let alloc = GpuAlloc::from_gpus(gpus);
        FreeVector {
            counts: alloc.per_machine(spec),
        }
    }

    /// Total number of free GPUs in the offer.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// `true` if the offer contains no GPUs.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Free GPUs on one machine (0 if the machine is not in the offer).
    pub fn on_machine(&self, machine: MachineId) -> usize {
        self.counts.get(&machine).copied().unwrap_or(0)
    }

    /// Iterates over `(machine, free GPU count)` pairs in machine order.
    pub fn iter(&self) -> impl Iterator<Item = (MachineId, usize)> + '_ {
        self.counts.iter().map(|(m, c)| (*m, *c))
    }

    /// Machines that have at least one free GPU.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.counts.keys().copied()
    }

    /// Sets the count for a machine (removing it when zero).
    pub fn set(&mut self, machine: MachineId, count: usize) {
        if count == 0 {
            self.counts.remove(&machine);
        } else {
            self.counts.insert(machine, count);
        }
    }

    /// Subtracts another free vector (saturating at zero per machine).
    /// Used to remove already-won resources from a running offer.
    pub fn saturating_sub(&self, other: &FreeVector) -> FreeVector {
        let mut out = self.clone();
        for (machine, count) in other.iter() {
            let remaining = out.on_machine(machine).saturating_sub(count);
            out.set(machine, remaining);
        }
        out
    }

    /// Adds another free vector.
    pub fn add(&self, other: &FreeVector) -> FreeVector {
        let mut out = self.clone();
        for (machine, count) in other.iter() {
            let new = out.on_machine(machine) + count;
            out.set(machine, new);
        }
        out
    }

    /// `true` if `other` fits inside this offer (per machine).
    pub fn contains_vector(&self, other: &FreeVector) -> bool {
        other
            .iter()
            .all(|(machine, count)| self.on_machine(machine) >= count)
    }

    /// Scales every machine count by `factor`, rounding down.
    /// Used by the partial-allocation mechanism's hidden payment (§5.1).
    pub fn scale_floor(&self, factor: f64) -> FreeVector {
        assert!(
            (0.0..=1.0).contains(&factor),
            "scale factor must be in [0,1]"
        );
        FreeVector::from_counts(
            self.iter()
                .map(|(m, c)| (m, ((c as f64) * factor).floor() as usize)),
        )
    }
}

impl FromIterator<(MachineId, usize)> for FreeVector {
    fn from_iter<T: IntoIterator<Item = (MachineId, usize)>>(iter: T) -> Self {
        FreeVector::from_counts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        // 2 machines with 4 GPUs, 1 machine with 2 GPUs.
        ClusterSpec::builder()
            .rack(|r| r.machines(2, 4))
            .rack(|r| r.machines(1, 2))
            .build()
    }

    #[test]
    fn gpu_alloc_set_operations() {
        let a = GpuAlloc::from_gpus([GpuId(0), GpuId(1), GpuId(2)]);
        let b = GpuAlloc::from_gpus([GpuId(2), GpuId(3)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn gpu_alloc_per_machine() {
        let spec = spec();
        let alloc = GpuAlloc::from_gpus([GpuId(0), GpuId(1), GpuId(4), GpuId(8)]);
        let per = alloc.per_machine(&spec);
        assert_eq!(per.get(&MachineId(0)), Some(&2));
        assert_eq!(per.get(&MachineId(1)), Some(&1));
        assert_eq!(per.get(&MachineId(2)), Some(&1));
        assert_eq!(alloc.machines(&spec).len(), 3);
    }

    #[test]
    fn gpu_alloc_insert_remove() {
        let mut alloc = GpuAlloc::empty();
        assert!(alloc.insert(GpuId(5)));
        assert!(!alloc.insert(GpuId(5)));
        assert!(alloc.contains(GpuId(5)));
        assert!(alloc.remove(GpuId(5)));
        assert!(!alloc.remove(GpuId(5)));
        assert!(alloc.is_empty());
    }

    #[test]
    fn free_vector_totals_and_lookup() {
        let fv = FreeVector::from_counts([(MachineId(0), 3), (MachineId(2), 1), (MachineId(5), 0)]);
        assert_eq!(fv.total(), 4);
        assert_eq!(fv.on_machine(MachineId(0)), 3);
        assert_eq!(fv.on_machine(MachineId(5)), 0);
        assert_eq!(fv.machines().count(), 2);
    }

    #[test]
    fn free_vector_from_gpus() {
        let spec = spec();
        let fv = FreeVector::from_gpus([GpuId(0), GpuId(1), GpuId(9)], &spec);
        assert_eq!(fv.on_machine(MachineId(0)), 2);
        assert_eq!(fv.on_machine(MachineId(2)), 1);
    }

    #[test]
    fn free_vector_arithmetic() {
        let a = FreeVector::from_counts([(MachineId(0), 3), (MachineId(1), 2)]);
        let b = FreeVector::from_counts([(MachineId(0), 1), (MachineId(1), 5)]);
        let diff = a.saturating_sub(&b);
        assert_eq!(diff.on_machine(MachineId(0)), 2);
        assert_eq!(diff.on_machine(MachineId(1)), 0);
        let sum = a.add(&b);
        assert_eq!(sum.on_machine(MachineId(1)), 7);
        assert!(a.contains_vector(&FreeVector::from_counts([(MachineId(0), 3)])));
        assert!(!a.contains_vector(&b));
    }

    #[test]
    fn free_vector_scale_floor() {
        let a = FreeVector::from_counts([(MachineId(0), 4), (MachineId(1), 3)]);
        let half = a.scale_floor(0.5);
        assert_eq!(half.on_machine(MachineId(0)), 2);
        assert_eq!(half.on_machine(MachineId(1)), 1);
        assert_eq!(a.scale_floor(1.0), a);
        assert!(a.scale_floor(0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_floor_rejects_out_of_range() {
        let a = FreeVector::from_counts([(MachineId(0), 4)]);
        let _ = a.scale_floor(1.5);
    }
}

//! GPU leases.
//!
//! Every GPU in a Themis-managed cluster has a lease associated with it (§3).
//! The lease dictates how long an app can assume ownership of the GPU; when
//! it expires, the GPU is reclaimed and put up for re-auction. The
//! [`LeaseTable`] tracks active leases and answers "which leases expire at or
//! before time t" queries for the simulator.

use crate::ids::{AppId, GpuId, JobId};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An active lease: one GPU held by one job of one app until `expires_at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// GPU being leased.
    pub gpu: GpuId,
    /// App holding the lease.
    pub app: AppId,
    /// Job (within the app) the GPU is assigned to.
    pub job: JobId,
    /// Time the lease was granted.
    pub granted_at: Time,
    /// Time at which the lease expires and the GPU is reclaimed.
    pub expires_at: Time,
}

impl Lease {
    /// Duration of the lease.
    pub fn duration(&self) -> Time {
        self.expires_at - self.granted_at
    }

    /// Whether the lease has expired at (or before) `now`.
    pub fn is_expired(&self, now: Time) -> bool {
        self.expires_at <= now
    }
}

/// Tracks the active lease (if any) for every GPU.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeaseTable {
    leases: BTreeMap<GpuId, Lease>,
}

impl LeaseTable {
    /// Creates an empty lease table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// `true` if no leases are active.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// The active lease on a GPU, if any.
    pub fn lease(&self, gpu: GpuId) -> Option<&Lease> {
        self.leases.get(&gpu)
    }

    /// Grants (or replaces) a lease on a GPU.
    pub fn grant(&mut self, lease: Lease) -> Option<Lease> {
        self.leases.insert(lease.gpu, lease)
    }

    /// Revokes the lease on a GPU, returning it if present.
    pub fn revoke(&mut self, gpu: GpuId) -> Option<Lease> {
        self.leases.remove(&gpu)
    }

    /// Extends the lease on a GPU to a new expiry time. Returns `false` if
    /// no lease is active on the GPU.
    pub fn extend(&mut self, gpu: GpuId, new_expiry: Time) -> bool {
        match self.leases.get_mut(&gpu) {
            Some(lease) => {
                lease.expires_at = new_expiry;
                true
            }
            None => false,
        }
    }

    /// All leases that have expired at or before `now`, in GPU order.
    pub fn expired(&self, now: Time) -> Vec<Lease> {
        self.leases
            .values()
            .filter(|l| l.is_expired(now))
            .copied()
            .collect()
    }

    /// Removes and returns all leases that have expired at or before `now`.
    pub fn reclaim_expired(&mut self, now: Time) -> Vec<Lease> {
        let expired = self.expired(now);
        for lease in &expired {
            self.leases.remove(&lease.gpu);
        }
        expired
    }

    /// The earliest lease expiry in the table, if any lease is active.
    pub fn next_expiry(&self) -> Option<Time> {
        self.leases.values().map(|l| l.expires_at).min()
    }

    /// All leases held by one app.
    pub fn leases_of_app(&self, app: AppId) -> Vec<Lease> {
        self.leases
            .values()
            .filter(|l| l.app == app)
            .copied()
            .collect()
    }

    /// Iterates over all active leases in GPU order.
    pub fn iter(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(gpu: u32, app: u32, granted: f64, expires: f64) -> Lease {
        Lease {
            gpu: GpuId(gpu),
            app: AppId(app),
            job: JobId(0),
            granted_at: Time::minutes(granted),
            expires_at: Time::minutes(expires),
        }
    }

    #[test]
    fn lease_duration_and_expiry() {
        let l = lease(0, 1, 10.0, 30.0);
        assert_eq!(l.duration(), Time::minutes(20.0));
        assert!(!l.is_expired(Time::minutes(29.9)));
        assert!(l.is_expired(Time::minutes(30.0)));
    }

    #[test]
    fn grant_and_revoke() {
        let mut table = LeaseTable::new();
        assert!(table.is_empty());
        assert!(table.grant(lease(0, 1, 0.0, 20.0)).is_none());
        assert_eq!(table.len(), 1);
        // Granting again replaces and returns the old lease.
        let old = table.grant(lease(0, 2, 5.0, 25.0)).unwrap();
        assert_eq!(old.app, AppId(1));
        assert_eq!(table.lease(GpuId(0)).unwrap().app, AppId(2));
        assert!(table.revoke(GpuId(0)).is_some());
        assert!(table.revoke(GpuId(0)).is_none());
    }

    #[test]
    fn reclaim_expired_removes_only_expired() {
        let mut table = LeaseTable::new();
        table.grant(lease(0, 1, 0.0, 20.0));
        table.grant(lease(1, 1, 0.0, 40.0));
        table.grant(lease(2, 2, 0.0, 10.0));
        let reclaimed = table.reclaim_expired(Time::minutes(20.0));
        let gpus: Vec<_> = reclaimed.iter().map(|l| l.gpu).collect();
        assert_eq!(gpus, vec![GpuId(0), GpuId(2)]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.next_expiry(), Some(Time::minutes(40.0)));
    }

    #[test]
    fn extend_lease() {
        let mut table = LeaseTable::new();
        table.grant(lease(0, 1, 0.0, 20.0));
        assert!(table.extend(GpuId(0), Time::minutes(50.0)));
        assert!(!table.extend(GpuId(9), Time::minutes(50.0)));
        assert_eq!(
            table.lease(GpuId(0)).unwrap().expires_at,
            Time::minutes(50.0)
        );
    }

    #[test]
    fn leases_of_app() {
        let mut table = LeaseTable::new();
        table.grant(lease(0, 1, 0.0, 20.0));
        table.grant(lease(1, 2, 0.0, 20.0));
        table.grant(lease(2, 1, 0.0, 20.0));
        let leases = table.leases_of_app(AppId(1));
        assert_eq!(leases.len(), 2);
        assert!(leases.iter().all(|l| l.app == AppId(1)));
    }

    #[test]
    fn next_expiry_none_when_empty() {
        assert_eq!(LeaseTable::new().next_expiry(), None);
    }
}

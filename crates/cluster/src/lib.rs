//! # themis-cluster
//!
//! GPU-cluster substrate for the Themis scheduler reproduction (NSDI 2020).
//!
//! This crate models everything the scheduler needs to know about the
//! physical cluster:
//!
//! * identifiers for GPUs, machines, racks, apps, jobs and tasks ([`ids`]),
//! * the cluster topology — machines with a number of GPUs grouped into
//!   NVLink slots, machines grouped into racks ([`topology`]),
//! * GPU allocation vectors and free-resource vectors used as the goods in
//!   Themis auctions ([`alloc`]),
//! * locality levels and placement scoring ([`placement`]),
//! * GPU leases, the mechanism by which Themis reclaims resources
//!   ([`lease`]),
//! * the mutable [`Cluster`] state that tracks which GPU is held by
//!   which job under which lease in a dense assignment arena ([`cluster`]),
//! * and borrowed per-round scheduling views — the [`view::ClusterState`]
//!   trait plus the allocation-free [`view::ClusterView`] shadow policies
//!   use instead of cloning the cluster every round ([`view`]).
//!
//! The types here are deliberately free of any scheduling policy; the
//! policies live in `themis-core` (Themis itself) and `themis-baselines`.
//!
//! ## Example
//!
//! ```
//! use themis_cluster::prelude::*;
//!
//! // A small heterogeneous cluster: 2 racks of 4-GPU and 2-GPU machines.
//! let spec = ClusterSpec::builder()
//!     .rack(|r| r.machines(4, 4).machines(4, 2))
//!     .rack(|r| r.machines(4, 4).machines(4, 1))
//!     .build();
//! let cluster = Cluster::new(spec);
//! assert_eq!(cluster.total_gpus(), 4 * 4 + 4 * 2 + 4 * 4 + 4 * 1);
//! assert_eq!(cluster.free_gpus().len(), cluster.total_gpus());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod cluster;
pub mod error;
pub mod ids;
pub mod lease;
pub mod placement;
pub mod time;
pub mod topology;
pub mod view;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::alloc::{DenseBitSet, FreeVector, GpuAlloc};
    pub use crate::cluster::Cluster;
    pub use crate::error::ClusterError;
    pub use crate::ids::{AppId, GpuId, JobId, MachineId, RackId, TaskId};
    pub use crate::lease::{Lease, LeaseTable};
    pub use crate::placement::{Locality, PlacementScorer};
    pub use crate::time::Time;
    pub use crate::topology::{ClusterSpec, GpuModel, MachineSpec, RackSpec};
    pub use crate::view::{ClusterState, ClusterView};
}

pub use prelude::*;

//! Offline stub of `criterion`.
//!
//! Keeps the `criterion` 0.5 API shape the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`) but
//! replaces the statistical machinery with a simple calibrated wall-clock
//! loop that reports median and p95 per benchmark. Good enough to compare
//! hot-path changes within this repository; not a substitute for real
//! criterion statistics.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs the timed loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that takes ~2ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Formats a per-iteration duration as an integer nanosecond count with
/// thousands separators, e.g. `1,234,567 ns/iter`.
fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    let digits = ns.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let p95 = samples[(samples.len() * 95 / 100).min(samples.len() - 1)];
    println!(
        "bench: {group}/{id}: {} ns/iter (median of {} batches; p95 {} ns/iter)",
        format_ns(median),
        samples.len(),
        format_ns(p95),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    /// Per-group override; like real criterion, a `sample_size` set on one
    /// group must not leak into later groups of the same `Criterion`.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark of this
    /// group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Ignored in the stub; kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
        };
        f(&mut bencher);
        report(&self.name, &id, &mut bencher.samples);
    }

    /// Finishes the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies CLI configuration. The stub accepts and ignores all flags
    /// (including the `--bench` cargo passes to bench binaries).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report("bench", id, &mut bencher.samples);
        self
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-binary `main` that runs each group, mirroring
/// `criterion`'s macro. Requires `harness = false` on the bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

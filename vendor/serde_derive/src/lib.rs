//! Offline stub of `serde_derive`.
//!
//! The companion `serde` stub blanket-implements its marker traits for every
//! type, so these derives only need to exist for `#[derive(Serialize,
//! Deserialize)]` to parse — they expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stub of `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses — `RngCore`,
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] and [`seq::SliceRandom::choose`] — on top of a
//! deterministic xoshiro256** generator seeded through SplitMix64 (the same
//! construction the real `SmallRng` uses on 64-bit targets). Identical seeds
//! always produce identical streams, which is the property the simulator's
//! reproducibility tests rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: the low-level word generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, bound)` by widening multiply (unbiased enough for
/// simulation purposes; matches Lemire's multiply-shift reduction).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an rng deterministically derived from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced rng implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic rng: xoshiro256** seeded via SplitMix64.
    ///
    /// Not cryptographically secure — like the real `SmallRng`, it is meant
    /// for simulation and testing.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stub of `parking_lot`: the same `Mutex` API (non-poisoning
//! `lock()` that never returns a `Result`), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, panics while holding the lock do not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

//! Offline stub of `serde`.
//!
//! Workspace types tag themselves `#[derive(Serialize, Deserialize)]` so the
//! protocol messages are wire-ready the moment the real `serde` is available,
//! but nothing in-tree serializes yet. These marker traits are therefore
//! blanket-implemented for all types, and the derives (re-exported from the
//! `serde_derive` stub) expand to nothing.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

//! The record/replay contract of the actor transport, pinned as tests:
//!
//! * **recording is free of behavior**: a run with a transcript attached
//!   produces the same `SimReport` as the same run without one,
//! * **replay is byte-identical**: re-executing a run from its
//!   `MessageLog` alone — the RNG never consulted — reproduces the
//!   recorded run's canonical report byte for byte, across randomized
//!   fault configurations (drops, delay, jitter, bandwidth, crashes,
//!   partitions, Arbiter failover),
//! * **bad logs fail loudly**: a truncated log panics with a
//!   record-index diagnostic, a corrupted log panics with a divergence
//!   diagnostic, and the text form rejects tampering at parse time —
//!   never a silently wrong replay.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use themis_bench::policies::Policy;
use themis_bench::report::{CellMetrics, CellReport, SweepReport};
use themis_bench::scenarios::{ClusterKind, Matrix, Scenario};
use themis_cluster::cluster::Cluster;
use themis_cluster::time::Time;
use themis_protocol::log::{LogRecord, MessageLog, SendFate};
use themis_protocol::network::LogMode;
use themis_protocol::transport::FaultConfig;
use themis_sim::engine::Engine;
use themis_sim::metrics::SimReport;

/// Renders one distributed-mode run as the canonical single-cell sweep
/// document — the same bytes the CI replay gate diffs.
fn canonical_cell(scenario: &Scenario, report: &SimReport) -> String {
    SweepReport {
        matrix: "replay".into(),
        cells: vec![CellReport {
            id: format!("{}/themis-dist", scenario.id()),
            policy: "themis-dist".into(),
            scenario: scenario.clone(),
            metrics: CellMetrics::from_report(report),
            wall_clock_ms: 0.0,
        }],
        total_wall_clock_ms: 0.0,
    }
    .to_canonical_string()
}

/// Runs distributed-mode Themis on `scenario` with an explicit log mode
/// and a tight horizon: heavy fault draws may strand apps forever, and
/// the replay contract is about transport decisions, not completion, so
/// a truncated-but-deterministic prefix is just as binding (and keeps the
/// randomized suite fast in debug CI).
fn run_capped(scenario: &Scenario, mode: LogMode) -> SimReport {
    let config = scenario
        .sim_config()
        .with_max_sim_time(Time::minutes(2_000.0));
    Engine::new(
        Cluster::new(scenario.cluster_spec()),
        scenario.trace(),
        scenario
            .instantiate(Policy::themis_dist_default())
            .build_with_log(&config, mode),
        config,
    )
    .run()
}

/// Records a capped run, returning the report and the transcript.
fn record_capped(scenario: &Scenario) -> (SimReport, MessageLog) {
    let log = std::sync::Arc::new(parking_lot::Mutex::new(MessageLog::new()));
    let report = run_capped(scenario, LogMode::record(std::sync::Arc::clone(&log)));
    let log = std::sync::Arc::try_unwrap(log)
        .expect("engine dropped its log handle")
        .into_inner();
    (report, log)
}

/// A moderately faulty scenario known to finish: the combined cell of the
/// `faults` matrix (drop + delay + crashes).
fn combined_fault_scenario() -> Scenario {
    Scenario::new(ClusterKind::Rack16, 6, 42)
        .with_contention(2.0)
        .with_fault(
            FaultConfig::reliable()
                .with_drop_probability(0.3)
                .with_delay(Time::seconds(5.0))
                .with_crash(5, 2),
        )
}

/// Recording must not perturb the run, and `Scenario::run_recorded` /
/// `run_replayed` must round-trip byte-identically end to end.
#[test]
fn recorded_run_matches_plain_run_and_replays_exactly() {
    let scenario = combined_fault_scenario();
    let plain = scenario.run(Policy::themis_dist_default());
    let (recorded, log) = scenario.run_recorded(Policy::themis_dist_default());
    assert_eq!(
        recorded, plain,
        "attaching a transcript changed the run itself"
    );
    assert!(
        !log.is_empty(),
        "a faulty distributed run must transcribe transport decisions"
    );
    // The transcript names every fate class this scenario injects.
    let has_drop = log.records().iter().any(|r| {
        matches!(
            r,
            LogRecord::Send {
                fate: SendFate::DropFault,
                ..
            }
        )
    });
    assert!(has_drop, "drop probability 0.3 never dropped a message?");

    let replayed = scenario.run_replayed(Policy::themis_dist_default(), log);
    assert_eq!(
        canonical_cell(&scenario, &replayed),
        canonical_cell(&scenario, &recorded),
        "replay must reproduce the recorded canonical report byte for byte"
    );
}

/// A reliable run still transcribes (sends, deliveries, timers all have
/// decided fates) and replays byte-identically.
#[test]
fn reliable_runs_record_and_replay_too() {
    let scenario = Scenario::new(ClusterKind::Rack16, 4, 7);
    let (recorded, log) = scenario.run_recorded(Policy::themis_dist_default());
    assert!(!log.is_empty());
    assert!(log.records().iter().all(|r| !matches!(
        r,
        LogRecord::Send {
            fate: SendFate::DropFault,
            ..
        }
    )));
    let replayed = scenario.run_replayed(Policy::themis_dist_default(), log);
    assert_eq!(replayed, recorded);
}

/// A non-distributed policy has no transport: its log comes back empty.
#[test]
fn in_process_policies_record_nothing() {
    let scenario = Scenario::new(ClusterKind::Rack16, 3, 7);
    let (_, log) = scenario.run_recorded(Policy::themis_default());
    assert!(log.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized fault configurations across the smoke-matrix scenario
    /// pool: whatever the transport decides — drops, jittered reordering,
    /// bandwidth queueing, crashed agents, partitions, failover — the
    /// recorded log re-executes to the byte-identical canonical report.
    #[test]
    fn randomized_fault_configs_replay_byte_identically(
        index in 0usize..5000,
        drop_tenths in 0u32..=4,
        delay_s in 0u32..=5,
        jitter_s in 0u32..=3,
        bw_sel in 0u32..=2,
        crash_sel in 0u32..=1,
        partition_sel in 0u32..=1,
        failover_sel in 0u32..=1,
        fault_seed in 0u64..1000,
    ) {
        let mut fault = FaultConfig::reliable()
            .with_drop_probability(f64::from(drop_tenths) / 10.0)
            .with_delay(Time::seconds(f64::from(delay_s)))
            .with_jitter(Time::seconds(f64::from(jitter_s)))
            .with_seed(fault_seed);
        if bw_sel > 0 {
            fault = fault.with_bandwidth([120.0, 600.0][bw_sel as usize - 1]);
        }
        if crash_sel == 1 {
            fault = fault.with_crash(4, 2);
        }
        if partition_sel == 1 {
            fault = fault.with_partition(5, 2);
        }
        if failover_sel == 1 {
            fault = fault.with_failover(7);
        }
        let scenarios = Matrix::smoke().expand();
        let scenario = scenarios[index % scenarios.len()].clone().with_fault(fault);

        let (recorded, log) = record_capped(&scenario);
        prop_assert!(!log.is_empty(), "no transport decisions on {}", scenario.id());
        let replayed = run_capped(&scenario, LogMode::replay(std::sync::Arc::new(log)));
        prop_assert_eq!(
            canonical_cell(&scenario, &replayed),
            canonical_cell(&scenario, &recorded),
            "replay diverged on {}", scenario.id()
        );
    }
}

/// A truncated log must abort the replay with a record-index diagnostic,
/// never limp to a silently different result.
#[test]
fn truncated_log_panics_with_diagnostic() {
    let scenario = combined_fault_scenario();
    let (_, log) = scenario.run_recorded(Policy::themis_dist_default());
    let mut truncated = MessageLog::new();
    for record in &log.records()[..log.len() / 2] {
        truncated.push(record.clone());
    }
    let panic = catch_unwind(AssertUnwindSafe(|| {
        scenario.run_replayed(Policy::themis_dist_default(), truncated)
    }))
    .expect_err("truncated replay must panic");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("replay log exhausted at record"),
        "diagnostic must name the exhausted position, got: {message}"
    );
}

/// A corrupted record — here a delivery rewritten into a fault-drop —
/// must abort the replay naming the diverging record.
#[test]
fn corrupted_log_panics_with_divergence_diagnostic() {
    let scenario = combined_fault_scenario();
    let (_, log) = scenario.run_recorded(Policy::themis_dist_default());
    let mut corrupted = MessageLog::new();
    let mut flipped = false;
    for record in log.records() {
        let mut record = record.clone();
        if !flipped {
            if let LogRecord::Send {
                fate: fate @ SendFate::Deliver { .. },
                ..
            } = &mut record
            {
                *fate = SendFate::DropFault;
                flipped = true;
            }
        }
        corrupted.push(record);
    }
    assert!(flipped, "recorded log has no delivered send to corrupt");
    let panic = catch_unwind(AssertUnwindSafe(|| {
        scenario.run_replayed(Policy::themis_dist_default(), corrupted)
    }))
    .expect_err("corrupted replay must panic");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("replay divergence at record"),
        "diagnostic must name the diverging record, got: {message}"
    );
}

/// The textual transcript of a real run round-trips exactly, and both
/// tampering and truncation are parse errors naming the offending line.
#[test]
fn log_text_form_round_trips_and_rejects_damage() {
    let scenario = combined_fault_scenario();
    let (_, log) = scenario.run_recorded(Policy::themis_dist_default());
    let text = log.to_text();
    assert_eq!(MessageLog::parse(&text).expect("faithful text parses"), log);

    let truncated: String = text
        .lines()
        .take(text.lines().count() - 1)
        .collect::<Vec<_>>()
        .join("\n");
    let err = MessageLog::parse(&truncated).expect_err("truncation rejected");
    assert!(err.to_string().contains("truncated"), "{err}");

    let tampered = text.replacen("deliver", "detonate", 1);
    assert!(MessageLog::parse(&tampered).is_err());
}

//! The sweep engine's CI contract, pinned as tests:
//!
//! * the parallel batch runner produces **byte-identical** canonical JSON
//!   to the serial runner on the smoke matrix (`--jobs 4` vs `--jobs 1`),
//! * the canonical JSON round-trips through the parser,
//! * the smoke sweep matches the committed `BENCH_BASELINE.json` — the
//!   same gate the `scenario-matrix` CI job enforces, so a behavior change
//!   that forgets to regenerate the baseline fails here first.

use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::Matrix;
use themis_bench::sweep::run_sweep;

/// Serial and parallel runs of the smoke matrix must render to the same
/// bytes; re-running must be a fixed point (full determinism).
#[test]
fn parallel_smoke_sweep_is_byte_identical_to_serial() {
    let matrix = Matrix::smoke();
    let serial = run_sweep(&matrix, 1);
    let parallel = run_sweep(&matrix, 4);
    let serial_text = serial.to_canonical_string();
    let parallel_text = parallel.to_canonical_string();
    assert_eq!(
        serial_text, parallel_text,
        "--jobs 4 must emit the same canonical JSON as --jobs 1"
    );

    // Canonical JSON round-trips losslessly.
    let back = SweepReport::parse_str(&serial_text).expect("canonical JSON parses");
    assert_eq!(back.to_canonical_string(), serial_text);
    assert_eq!(back.cells.len(), matrix.cells().len());

    // And the run matches the committed baseline — the CI regression gate.
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_BASELINE.json"
    ))
    .expect("BENCH_BASELINE.json is committed at the repo root");
    let baseline = SweepReport::parse_str(&baseline_text).expect("baseline parses");
    let diffs = compare_reports(&serial, &baseline, 1e-9);
    assert!(
        diffs.is_empty(),
        "smoke sweep diverged from BENCH_BASELINE.json — if the behavior change is intentional, \
         regenerate it (see README 'Running scenario sweeps'):\n{}",
        diffs.join("\n")
    );
    // Stronger than the metric diff: the canonical rendering must be
    // *byte-identical* to the committed file. The dense-core refactor is
    // observationally pure — every iteration order stays ascending-by-id —
    // and this pin is what holds that contract for future refactors.
    assert_eq!(
        serial_text, baseline_text,
        "smoke sweep canonical JSON is not byte-identical to BENCH_BASELINE.json"
    );
    // The committed baseline must itself be canonical (regenerated via
    // `sweep --out`, not hand-edited).
    assert_eq!(
        baseline.to_canonical_string(),
        baseline_text,
        "BENCH_BASELINE.json is not in canonical form"
    );
}

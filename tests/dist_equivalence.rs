//! The distributed-mode contract, pinned as tests:
//!
//! * with a **reliable** transport, the actor-runtime `themis-dist`
//!   reproduces the in-process Themis policy's `SimReport` exactly
//!   (modulo the scheduler name) on every scenario of the smoke matrix —
//!   the message flow adds faults, never behavior,
//! * under zero-latency reliable links the **actor runtime and the legacy
//!   instant-round path agree decision for decision** — the two
//!   implementations of the §3.1 exchange are interchangeable exactly
//!   when the network is invisible,
//! * under **faults** (drops + delay + agent crashes) the auction degrades
//!   gracefully: every app still finishes, max-ρ inflation stays bounded,
//!   and the engine terminates,
//! * with delays **beyond the bid deadline** every round is missed, yet
//!   nothing wedges: the retry event keeps re-attempting rounds and the
//!   run ends at the time cap,
//! * the `faults` matrix matches the committed
//!   `BENCH_FAULTS_BASELINE.json` — the same gate the `scenario-matrix`
//!   CI job enforces for control-plane regressions.

use themis_bench::policies::Policy;
use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::{ClusterKind, Matrix, Scenario};
use themis_bench::sweep::run_sweep;
use themis_cluster::cluster::Cluster;
use themis_cluster::time::Time;
use themis_core::runtime::InstantDistributedScheduler;
use themis_protocol::transport::FaultConfig;
use themis_sim::engine::Engine;

/// With zero faults the full five-step message exchange must be
/// behavior-invisible: same decisions every round, hence the same report.
#[test]
fn reliable_dist_matches_in_process_on_smoke_matrix() {
    for scenario in Matrix::smoke().expand() {
        let trace = scenario.trace();
        let themis = scenario.run_on_trace(Policy::themis_default(), trace.clone());
        let mut dist = scenario.run_on_trace(Policy::themis_dist_default(), trace);
        assert_eq!(dist.scheduler, "themis-dist");
        // The distributed mode additionally reports control-plane round
        // accounting (the in-process policy has no control plane); on a
        // reliable transport every started round must have completed.
        let control = dist.control.take().expect("dist reports control stats");
        assert_eq!(
            control.completed_rounds,
            control.rounds,
            "reliable transport must complete every round on {}",
            scenario.id()
        );
        assert_eq!(control.missed_rho_reports + control.missed_bids, 0);
        dist.scheduler = themis.scheduler.clone();
        assert_eq!(
            dist,
            themis,
            "themis-dist must reproduce in-process Themis on {}",
            scenario.id()
        );
    }
}

/// Under zero-latency reliable links the event-driven actor runtime and
/// the legacy instant-round path must agree on every metric: the actor
/// cascade collapses into a single engine event, which is exactly the
/// instant path's shape. Pinned seeds across contention levels.
#[test]
fn actor_and_instant_paths_agree_on_reliable_links() {
    for (contention, seed) in [(1.0, 7), (2.0, 42), (4.0, 13)] {
        let scenario = Scenario::new(ClusterKind::Rack16, 5, seed).with_contention(contention);
        let config = scenario.sim_config();
        let themis_config = match scenario.instantiate(Policy::themis_dist_default()) {
            Policy::ThemisDist(cfg) => cfg,
            other => panic!("expected ThemisDist, got {other:?}"),
        };
        let mut actor = scenario.run_on_trace(Policy::themis_dist_default(), scenario.trace());
        let mut instant = Engine::new(
            Cluster::new(scenario.cluster_spec()),
            scenario.trace(),
            InstantDistributedScheduler::new(themis_config, config.fault),
            config,
        )
        .run();
        assert_eq!(actor.scheduler, "themis-dist");
        assert_eq!(instant.scheduler, "themis-dist-instant");
        actor.scheduler.clear();
        instant.scheduler.clear();
        assert_eq!(
            actor, instant,
            "actor and instant paths diverged on x{contention} s{seed}"
        );
    }
}

/// Drops, delays and agent crashes slow apps down but must not starve
/// them: every app finishes, every round terminates by its deadline, and
/// the worst finish-time fairness stays within a small factor of the
/// fault-free run.
#[test]
fn faulty_transport_degrades_gracefully() {
    let clean = Scenario::new(ClusterKind::Rack16, 6, 42).with_contention(2.0);
    let faulty = clean.clone().with_fault(
        FaultConfig::reliable()
            .with_drop_probability(0.3)
            .with_delay(Time::seconds(5.0))
            .with_crash(5, 2),
    );
    let clean_report = clean.run(Policy::themis_dist_default());
    let faulty_report = faulty.run(Policy::themis_dist_default());

    assert_eq!(
        faulty_report.unfinished_apps(),
        0,
        "a lossy control plane must delay apps, not strand them"
    );
    let clean_rho = clean_report.max_fairness().expect("apps finished");
    let faulty_rho = faulty_report.max_fairness().expect("apps finished");
    assert!(
        faulty_rho <= clean_rho * 4.0 + 1.0,
        "max-rho inflation unbounded: {faulty_rho} vs fault-free {clean_rho}"
    );
    // Missed rounds are retried, so the faulty run schedules at least as
    // often as the clean one.
    assert!(faulty_report.scheduling_rounds >= clean_report.scheduling_rounds);
    // Determinism: the same faulty scenario reproduces byte-for-byte.
    assert_eq!(faulty.run(Policy::themis_dist_default()), faulty_report);
}

/// A one-way delay beyond the bid deadline makes every Agent miss every
/// round. The run must still terminate (no wedged event queue): the
/// engine's retry event keeps attempting rounds until the time cap.
#[test]
fn delay_beyond_deadline_never_wedges_the_engine() {
    let scenario = Scenario::new(ClusterKind::Rack16, 3, 7)
        .with_fault(FaultConfig::reliable().with_delay(Time::minutes(1.0)));
    let config = scenario
        .sim_config()
        .with_max_sim_time(Time::minutes(2_000.0));
    let report = Engine::new(
        Cluster::new(scenario.cluster_spec()),
        scenario.trace(),
        scenario
            .instantiate(Policy::themis_dist_default())
            .build_with(&config),
        config,
    )
    .run();
    assert_eq!(report.finished_apps(), 0, "no round can complete");
    assert!(
        report.scheduling_rounds > 3,
        "rounds must keep being attempted, got {}",
        report.scheduling_rounds
    );
    assert!(report.end_time <= Time::minutes(2_000.0) + Time::minutes(1e-6));
}

/// The `faults` matrix is gated exactly against its committed baseline,
/// mirroring the smoke-matrix gate: a protocol or fault-injection change
/// that alters any cell fails here (and in CI) until the baseline is
/// regenerated intentionally.
#[test]
fn faults_sweep_matches_committed_baseline() {
    let report = run_sweep(&Matrix::faults(), 2);
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_FAULTS_BASELINE.json"
    ))
    .expect("BENCH_FAULTS_BASELINE.json is committed at the repo root");
    let baseline = SweepReport::parse_str(&baseline_text).expect("baseline parses");
    let diffs = compare_reports(&report, &baseline, 1e-9);
    assert!(
        diffs.is_empty(),
        "faults sweep diverged from BENCH_FAULTS_BASELINE.json — if intentional, regenerate it \
         (see README 'Running scenario sweeps'):\n{}",
        diffs.join("\n")
    );
    assert_eq!(
        baseline.to_canonical_string(),
        baseline_text,
        "BENCH_FAULTS_BASELINE.json is not in canonical form"
    );
    // The reliable-fault cells of the two Themis modes must agree on every
    // metric — the equivalence, visible in the committed baseline itself.
    let reliable: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.scenario.fault.is_reliable())
        .collect();
    let themis = reliable
        .iter()
        .find(|c| c.policy == "themis")
        .expect("in-process cell");
    let dist = reliable
        .iter()
        .find(|c| c.policy == "themis-dist")
        .expect("distributed cell");
    // Equal on every shared metric; the control block exists only on the
    // distributed side.
    let mut dist_metrics = dist.metrics.clone();
    assert!(dist_metrics.control.is_some());
    dist_metrics.control = None;
    assert_eq!(themis.metrics, dist_metrics);
}

//! The open-system service mode's CI contract:
//!
//! * **closed-system equivalence** — replaying a fully materialized trace
//!   through the service engine (with the incremental hot path ON)
//!   produces a [`SimReport`] identical to the batch engine's (with the
//!   hot path OFF), for every policy: the skip is observationally pure,
//! * the incremental hot path **actually skips** — a low-utilization
//!   service cell short-circuits at least half of its rounds,
//! * **steady-state detection** fires within bounded simulated time on
//!   stationary arrivals and never inside a flash-crowd storm,
//! * the **service matrix** is deterministic (`--jobs 4` ≡ `--jobs 1`,
//!   byte for byte) and matches the committed
//!   `BENCH_SERVICE_BASELINE.json` — the gate the `service-matrix` CI job
//!   enforces.

use proptest::prelude::*;
use themis_bench::policies::Policy;
use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::{ClusterKind, Matrix, Scenario, ServiceAxis, ServiceShape};
use themis_bench::sweep::run_sweep;
use themis_cluster::cluster::Cluster;
use themis_cluster::time::Time;
use themis_sim::service::{ReplaySource, ServiceConfig, ServiceEngine, ServiceReport};
use themis_sim::window::SteadyConfig;

/// Replays `scenario`'s materialized trace through the service engine with
/// incremental rounds enabled. No heartbeat ticks and an unbounded horizon,
/// so the only differences from a batch run are the admission path and the
/// auction-skipping hot path — exactly what the equivalence test isolates.
fn run_replayed_service(scenario: &Scenario, policy: Policy) -> ServiceReport {
    let cluster = Cluster::new(scenario.cluster_spec());
    let sim = scenario.sim_config().with_incremental(true);
    let scheduler = scenario.instantiate(policy).build_with(&sim);
    let config = ServiceConfig {
        horizon: Time::INFINITY,
        tick_interval: None,
        window: Time::minutes(1_000.0),
        steady: SteadyConfig::default(),
    };
    ServiceEngine::new(
        cluster,
        scheduler,
        sim,
        config,
        ReplaySource::new(scenario.trace()),
    )
    .run()
}

/// The in-process policies the equivalence property quantifies over (the
/// distributed mode opts out of incremental rounds and has its own
/// batch-equivalence suite in `dist_equivalence.rs`).
const POLICIES: [fn() -> Policy; 5] = [
    Policy::themis_default,
    || Policy::Gandiva,
    || Policy::Slaq,
    || Policy::Tiresias,
    || Policy::Drf,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Service mode with the incremental hot path ON reproduces the batch
    /// engine (hot path OFF) report for report: same outcomes, same end
    /// time, same GPU accounting, same round count.
    #[test]
    fn replayed_service_run_equals_batch_run(
        seed in 0u64..500,
        apps in 2usize..7,
        contention_idx in 0usize..2,
        policy_idx in 0usize..5,
    ) {
        let scenario = Scenario::new(ClusterKind::Rack16, apps, seed)
            .with_contention([1.0, 2.0][contention_idx]);
        let policy = POLICIES[policy_idx]();
        let batch = scenario.run(policy);
        let service = run_replayed_service(&scenario, policy);
        prop_assert_eq!(
            &service.sim, &batch,
            "service replay diverged from batch for {} on {}",
            policy.name(), scenario.id()
        );
        prop_assert_eq!(service.admitted as usize, apps);
        prop_assert_eq!(
            service.auctions_run + service.auctions_skipped,
            batch.scheduling_rounds,
            "every batch round is either run or skipped in service mode"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On stationary (Poisson) arrivals at a clearly subcritical rate the
    /// steady-state detector declares convergence well before the horizon.
    /// (At rate 1.0 the 16-GPU rack sits near its critical load, where
    /// convergence is legitimately seed-dependent — stationarity of the
    /// arrival process only implies a steady state when the queue is
    /// stable, so the property is stated at 0.5.)
    #[test]
    fn steady_state_fires_on_stationary_arrivals(seed in 0u64..100) {
        let scenario = Scenario::new(ClusterKind::Rack16, 6, seed)
            .with_service(ServiceAxis::new(ServiceShape::Poisson, 0.5, 3_000.0));
        let report = scenario.run_service(Policy::themis_default());
        let at = report.steady_state_at;
        prop_assert!(
            at.is_some(),
            "stationary service run never converged (seed {seed})"
        );
        prop_assert!(at.expect("checked") < Time::minutes(3_000.0));
    }

    /// A flash crowd must never read as steady state while the storm is
    /// raging: the backlog guard holds the detector back even when the
    /// windowed ρ percentiles look flat.
    ///
    /// The forbidden zone starts one detection latency *after* storm
    /// onset, not at onset: the detector is causal, so a convergence
    /// declared just after the storm begins can legitimately rest on
    /// `consecutive` checks of pre-storm data. Only once it has had
    /// `consecutive × check_interval` minutes of storm to look at is a
    /// steady-state declaration genuinely wrong.
    #[test]
    fn steady_state_never_fires_inside_a_flash_crowd(seed in 0u64..100) {
        let horizon = 3_000.0;
        let scenario = Scenario::new(ClusterKind::Rack16, 6, seed)
            .with_service(ServiceAxis::new(ServiceShape::Flash, 0.5, horizon));
        let steady = scenario.service_config().steady;
        let report = scenario.run_service(Policy::themis_default());
        if let Some(at) = report.steady_state_at {
            // The storm occupies [horizon/4, horizon/4 + horizon/8) — see
            // ServiceShape::arrival_shape.
            let storm_start = Time::minutes(horizon / 4.0);
            let storm_end = Time::minutes(horizon / 4.0 + horizon / 8.0);
            let detection_latency = steady.check_interval * steady.consecutive as f64;
            let forbidden_from = storm_start + detection_latency;
            prop_assert!(
                at < forbidden_from || at >= storm_end,
                "steady state declared at {at:?} with {detection_latency:?} of \
                 storm-only history (storm [{storm_start:?}, {storm_end:?}), \
                 seed {seed})"
            );
        }
    }
}

/// The incremental hot path earns its keep: on a mostly-idle service cell
/// (quarter-rate arrivals, heartbeat ticks every half lease) at least half
/// of all scheduling rounds skip the policy call outright.
#[test]
fn low_utilization_cell_skips_at_least_half_its_auctions() {
    let scenario = Scenario::new(ClusterKind::Rack16, 6, 42).with_service(ServiceAxis::new(
        ServiceShape::Poisson,
        0.25,
        Matrix::SERVICE_HORIZON_MINUTES,
    ));
    let report = scenario.run_service(Policy::themis_default());
    let total = report.auctions_run + report.auctions_skipped;
    assert!(total > 0, "the run must process rounds");
    assert!(
        report.auctions_skipped >= report.auctions_run,
        "expected >=50% of rounds skipped on a low-utilization cell, got {} skipped of {}",
        report.auctions_skipped,
        total
    );
    assert_eq!(total, report.sim.scheduling_rounds);
}

/// Serial and parallel runs of the service matrix render the same bytes,
/// round-trip through the parser, and match the committed baseline — the
/// `service-matrix` CI gate, pinned as a test so a behavior change that
/// forgets to regenerate the baseline fails here first.
#[test]
fn parallel_service_sweep_is_byte_identical_to_serial() {
    let matrix = Matrix::service();
    let serial = run_sweep(&matrix, 1);
    let parallel = run_sweep(&matrix, 4);
    let serial_text = serial.to_canonical_string();
    assert_eq!(
        serial_text,
        parallel.to_canonical_string(),
        "--jobs 4 must emit the same canonical JSON as --jobs 1"
    );

    let back = SweepReport::parse_str(&serial_text).expect("canonical JSON parses");
    assert_eq!(back.to_canonical_string(), serial_text);
    assert_eq!(back.cells.len(), matrix.cells().len());
    // Every cell is a service cell carrying the windowed metric block.
    for cell in &back.cells {
        assert!(cell.scenario.service.is_some(), "{} lost its axis", cell.id);
        assert!(
            cell.metrics.service.is_some(),
            "{} lost its windowed metrics",
            cell.id
        );
    }

    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_SERVICE_BASELINE.json"
    ))
    .expect("BENCH_SERVICE_BASELINE.json is committed at the repo root");
    let baseline = SweepReport::parse_str(&baseline_text).expect("baseline parses");
    let diffs = compare_reports(&serial, &baseline, 1e-9);
    assert!(
        diffs.is_empty(),
        "service sweep diverged from BENCH_SERVICE_BASELINE.json — if the behavior change is \
         intentional, regenerate it (see README 'Running scenario sweeps'):\n{}",
        diffs.join("\n")
    );
    assert_eq!(
        serial_text, baseline_text,
        "service sweep canonical JSON is not byte-identical to BENCH_SERVICE_BASELINE.json"
    );
    assert_eq!(
        baseline.to_canonical_string(),
        baseline_text,
        "BENCH_SERVICE_BASELINE.json is not in canonical form"
    );
}

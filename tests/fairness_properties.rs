//! Property-based tests (proptest) on the core invariants of the Themis
//! mechanism and its substrates:
//!
//! * the partial-allocation auction never over-allocates and its hidden
//!   payments always lie in (0, 1],
//! * ρ estimation is monotone (more GPUs never hurt) and bounded below by 1
//!   at arrival time with ideal placement,
//! * the trace generator always produces apps within the paper's bounds,
//! * placement scoring and free-vector arithmetic behave like proper
//!   set/vector operations.

use proptest::prelude::*;
use std::collections::BTreeMap;
use themis_cluster::alloc::FreeVector;
use themis_cluster::ids::{AppId, JobId, MachineId};
use themis_cluster::placement::{spread, Locality, PlacementScorer};
use themis_cluster::time::Time;
use themis_cluster::topology::ClusterSpec;
use themis_core::auction::partial_allocation;
use themis_core::rho::{estimate_rho_for_aggregate, ideal_running_time};
use themis_hpo::api::JobEstimate;
use themis_protocol::bid::BidTable;
use themis_workload::models::ModelArch;
use themis_workload::trace::{TraceConfig, TraceGenerator, TraceStats};

// ---------------------------------------------------------------------------
// Auction invariants
// ---------------------------------------------------------------------------

/// Strategy: an offer over up to 6 machines with 1..=4 GPUs each.
fn offer_strategy() -> impl Strategy<Value = FreeVector> {
    prop::collection::vec(1usize..=4, 1..=6).prop_map(|counts| {
        FreeVector::from_counts(
            counts
                .into_iter()
                .enumerate()
                .map(|(m, c)| (MachineId(m as u32), c)),
        )
    })
}

/// Strategy: bids from up to 5 apps. Each app bids for 1..=k GPUs on a
/// subset of the offered machines with the homogeneous rho/k valuation.
fn bids_strategy() -> impl Strategy<Value = (FreeVector, Vec<BidTable>)> {
    (offer_strategy(), 1usize..=5, 2.0f64..200.0).prop_map(|(offer, napps, base_rho)| {
        let machines: Vec<MachineId> = offer.machines().collect();
        let bids = (0..napps)
            .map(|i| {
                let mut table = BidTable::empty(AppId(i as u32), base_rho * (i as f64 + 1.0));
                let max_k = offer.total().min(4 + i);
                for k in 1..=max_k {
                    // Round-robin the k GPUs over the app's machine subset.
                    let subset: Vec<MachineId> = machines
                        .iter()
                        .copied()
                        .skip(i % machines.len())
                        .chain(machines.iter().copied())
                        .take(machines.len())
                        .collect();
                    let mut counts: BTreeMap<MachineId, usize> = BTreeMap::new();
                    for j in 0..k {
                        let m = subset[j % subset.len()];
                        let entry = counts.entry(m).or_insert(0);
                        if *entry < offer.on_machine(m) {
                            *entry += 1;
                        }
                    }
                    let fv = FreeVector::from_counts(counts);
                    if fv.total() > 0 {
                        let rho = base_rho * (i as f64 + 1.0) / fv.total() as f64;
                        table.push(fv, rho);
                    }
                }
                table
            })
            .collect();
        (offer, bids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auction_never_overallocates((offer, bids) in bids_strategy()) {
        let result = partial_allocation(&bids, &offer);
        let mut used = FreeVector::empty();
        for award in &result.awards {
            used = used.add(&award.awarded);
            prop_assert!(award.payment_factor > 0.0 && award.payment_factor <= 1.0 + 1e-9,
                "payment factor {}", award.payment_factor);
            prop_assert!(offer.contains_vector(&award.proportional_fair));
        }
        prop_assert!(offer.contains_vector(&used), "awards exceed the offer");
        // Awarded + leftover exactly partitions the offer.
        prop_assert_eq!(used.total() + result.leftover.total(), offer.total());
    }

    #[test]
    fn auction_is_deterministic((offer, bids) in bids_strategy()) {
        let a = partial_allocation(&bids, &offer);
        let b = partial_allocation(&bids, &offer);
        prop_assert_eq!(a, b);
    }

    /// §5.1 truthfulness: the hidden payments make truthful reporting the
    /// dominant strategy, so an app that misreports the ρ values in its
    /// bid table (claiming allocations help it more or less than they
    /// truly do, by a factor λ) must never end up with a better
    /// allocation than it gets by bidding truthfully. The tables follow
    /// the paper's homogeneous `ρ/k` shape, so the app's true value is
    /// monotone in the number of GPUs awarded; the +1 slack absorbs the
    /// whole-GPU rounding of the payment factor (the paper's mechanism is
    /// exactly truthful only for divisible resources).
    #[test]
    fn misreporting_never_improves_own_allocation(
        (offer, bids) in bids_strategy(),
        liar_index in 0usize..5,
        lie_factor in 0.2f64..5.0,
    ) {
        let liar = bids[liar_index % bids.len()].app;
        let truthful_total = partial_allocation(&bids, &offer)
            .award_for(liar)
            .map(|a| a.awarded.total())
            .unwrap_or(0);

        // The lie: scale every table entry's reported ρ by λ while keeping
        // the truthful baseline (current_rho), i.e. over- or under-state
        // how much each candidate subset would help.
        let mut lying_bids = bids.clone();
        let table = lying_bids
            .iter_mut()
            .find(|t| t.app == liar)
            .expect("liar has a bid");
        for entry in &mut table.entries {
            entry.rho *= lie_factor;
        }
        let lying_total = partial_allocation(&lying_bids, &offer)
            .award_for(liar)
            .map(|a| a.awarded.total())
            .unwrap_or(0);

        prop_assert!(
            lying_total <= truthful_total + 1,
            "app {:?} gained by lying (factor {}): {} GPUs vs {} truthful",
            liar, lie_factor, lying_total, truthful_total
        );
    }
}

// ---------------------------------------------------------------------------
// Rho estimation invariants
// ---------------------------------------------------------------------------

fn estimates_strategy() -> impl Strategy<Value = Vec<JobEstimate>> {
    prop::collection::vec((10.0f64..500.0, 1usize..=8), 1..=6).prop_map(|jobs| {
        jobs.into_iter()
            .enumerate()
            .map(|(i, (work, par))| JobEstimate {
                job: JobId(i as u32),
                total_work: Time::minutes(work),
                work_left: Time::minutes(work * 0.7),
                max_parallelism: par,
                sensitivity: ModelArch::Vgg16.sensitivity(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn more_gpus_never_increase_rho(estimates in estimates_strategy(), extra in 1usize..=8) {
        let spec = ClusterSpec::homogeneous(2, 4, 4);
        let small: BTreeMap<MachineId, usize> = [(MachineId(0), 2)].into();
        let mut large = small.clone();
        *large.entry(MachineId(0)).or_insert(0) += extra.min(2);
        if extra > 2 {
            large.insert(MachineId(1), extra - 2);
        }
        let elapsed = Time::minutes(5.0);
        let rho_small = estimate_rho_for_aggregate(&estimates, elapsed, &small, &spec);
        let rho_large = estimate_rho_for_aggregate(&estimates, elapsed, &large, &spec);
        prop_assert!(rho_large.rho <= rho_small.rho + 1e-9,
            "more GPUs should never hurt: {} vs {}", rho_large.rho, rho_small.rho);
    }

    #[test]
    fn rho_is_at_least_one_at_arrival_with_ideal_allocation(estimates in estimates_strategy()) {
        let spec = ClusterSpec::homogeneous(1, 8, 8);
        // Give every job its full parallelism on one machine each.
        let aggregate: BTreeMap<MachineId, usize> = estimates
            .iter()
            .enumerate()
            .map(|(i, e)| (MachineId(i as u32), e.max_parallelism))
            .collect();
        let rho = estimate_rho_for_aggregate(&estimates, Time::ZERO, &aggregate, &spec);
        // T_sh is estimated on the 70% of work that is left, so at arrival
        // it can be at most T_id and never negative; with placement
        // penalties it is >= 0.7.
        prop_assert!(rho.rho >= 0.0);
        prop_assert!(rho.t_id >= Time::ZERO);
        prop_assert!(rho.t_sh <= rho.t_id * 1.0 + Time::minutes(1e-6) || rho.rho >= 0.7);
        prop_assert_eq!(rho.t_id, ideal_running_time(&estimates));
    }
}

// ---------------------------------------------------------------------------
// Trace generator invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_traces_respect_paper_bounds(seed in 0u64..1000, napps in 1usize..40) {
        let apps = TraceGenerator::new(
            TraceConfig::default().with_num_apps(napps).with_seed(seed),
        )
        .generate();
        prop_assert_eq!(apps.len(), napps);
        let mut prev_arrival = Time::ZERO;
        for app in &apps {
            prop_assert!(app.num_jobs() >= 1 && app.num_jobs() <= 98);
            prop_assert!(app.arrival >= prev_arrival);
            prev_arrival = app.arrival;
            for job in &app.jobs {
                prop_assert!(job.max_parallelism == 2 || job.max_parallelism == 4);
                prop_assert!(job.total_iterations >= 10.0);
                prop_assert!(job.serial_iter_time > Time::ZERO);
                prop_assert!(job.loss_curve.can_reach(job.target_loss));
            }
        }
        let stats = TraceStats::compute(&apps);
        prop_assert!(stats.median_job_duration > 0.0);
    }
}

// ---------------------------------------------------------------------------
// Placement / free-vector invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_score_is_monotone_in_spread(gpu_indices in prop::collection::btree_set(0u32..32, 1..=8)) {
        let spec = ClusterSpec::homogeneous(2, 4, 4);
        let alloc: themis_cluster::alloc::GpuAlloc =
            gpu_indices.iter().map(|g| themis_cluster::ids::GpuId(*g)).collect();
        let scorer = PlacementScorer::default();
        let score = scorer.score(&alloc, &spec);
        prop_assert!((0.0..=1.0).contains(&score));
        // Spread level and score agree.
        let level = spread(&alloc, &spec);
        prop_assert_eq!(score, scorer.score_for(level));
        if alloc.len() <= 1 {
            prop_assert_eq!(level, Locality::Slot);
        }
    }

    #[test]
    fn free_vector_add_sub_roundtrip(counts in prop::collection::vec(0usize..5, 1..6)) {
        let a = FreeVector::from_counts(
            counts.iter().enumerate().map(|(m, c)| (MachineId(m as u32), *c)),
        );
        let b = FreeVector::from_counts(
            counts.iter().enumerate().map(|(m, c)| (MachineId(m as u32), c / 2)),
        );
        let sum = a.add(&b);
        prop_assert_eq!(sum.total(), a.total() + b.total());
        let back = sum.saturating_sub(&b);
        prop_assert_eq!(back, a.clone());
        prop_assert!(sum.contains_vector(&a));
        // Scaling by 1.0 is the identity, by 0.0 empties the vector.
        prop_assert_eq!(a.scale_floor(1.0), a.clone());
        prop_assert!(a.scale_floor(0.0).is_empty());
    }
}
